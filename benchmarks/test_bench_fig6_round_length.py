"""Fig. 6: round length Tr for different network diameters and slots
per round (payload l = 10 B, N = 2).

The paper spotlights "a minimum message latency of 50 ms in a 4-hop
network using 5-slot rounds"; the printed grid is the full figure.
"""

import pytest

from repro.analysis import FIG6_PAYLOAD, fig6_round_length, format_table


def test_bench_fig6(benchmark, capsys):
    data = benchmark(fig6_round_length)

    headers = ["H \\ B"] + [str(b) for b in data.slots]
    rows = []
    for h in data.diameters:
        rows.append([h] + [data.grid[h][b] for b in data.slots])
    with capsys.disabled():
        print(f"\n=== Fig. 6: Tr [ms] (payload {FIG6_PAYLOAD} B, N=2) ===")
        print(format_table(headers, rows, float_fmt="{:.1f}"))

    # Paper's spotlighted point: ~50 ms at H=4, B=5.
    assert data.grid[4][5] == pytest.approx(50.0, rel=0.02)
    # Monotone in both axes (shape of the figure).
    for h in data.diameters:
        series = data.series(h)
        assert series == sorted(series)
