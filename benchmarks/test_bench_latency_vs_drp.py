"""Headline claim: TTW reduces communication latency by ~2x compared to
the closest related work [16] (DRP's loose task/message coupling).

Prints, for several applications, TTW's achieved/minimum latency
(eq. 13), DRP's guarantee (~2*Tr per message), and the speedup — and
validates the claim on *synthesized* schedules, not just the analytic
bound.
"""

import pytest

from repro.analysis import format_table, latency_vs_drp
from repro.baselines import LooselyCoupledExecutor
from repro.core import Mode, SchedulingConfig, synthesize
from repro.timing import round_length_ms
from repro.workloads import closed_loop_pipeline, fig3_control_app

TR = round_length_ms(payload_bytes=10, diameter=4, num_slots=5)  # ~50 ms

APPS = [
    ("fig3-control", lambda: fig3_control_app(period=800, deadline=800,
                                              sense_wcet=2, control_wcet=5,
                                              act_wcet=1)),
    ("1-hop-loop", lambda: closed_loop_pipeline("h1", period=400, deadline=400,
                                                num_hops=1, wcet=1.0)),
    ("2-hop-loop", lambda: closed_loop_pipeline("h2", period=800, deadline=800,
                                                num_hops=2, wcet=1.0)),
    ("4-hop-loop", lambda: closed_loop_pipeline("h4", period=1600, deadline=1600,
                                                num_hops=4, wcet=1.0)),
]


def test_bench_latency_vs_drp(benchmark, capsys):
    def run():
        rows = []
        for name, factory in APPS:
            app = factory()
            cmp = latency_vs_drp(app, TR)
            # Synthesize to confirm the bound is achieved.
            mode = Mode(f"m_{name}", [app])
            config = SchedulingConfig(round_length=TR, slots_per_round=5,
                                      max_round_gap=None)
            sched = synthesize(mode, config)
            achieved = sched.app_latencies[app.name]
            measured_drp = LooselyCoupledExecutor(TR).worst_case_latency(
                app, phase_samples=32
            )
            rows.append(
                (name, cmp.ttw_bound, achieved, cmp.drp_guarantee,
                 measured_drp, cmp.drp_guarantee / achieved)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\n=== TTW vs DRP end-to-end latency [ms], Tr = {TR:.1f} ms ===")
        print(format_table(
            ["application", "TTW bound", "TTW achieved", "DRP guarantee",
             "DRP measured", "speedup"],
            rows,
        ))

    for name, bound, achieved, guarantee, measured, speedup in rows:
        # Synthesis reaches the eq. (13) bound on these workloads.
        assert achieved == pytest.approx(bound, abs=1e-3)
        # The paper's 2x claim: communication-dominated chains approach
        # a factor 2; every workload improves by at least ~1.8x here.
        assert speedup >= 1.8
        # DRP's measured worst case is consistent with its guarantee.
        assert measured <= guarantee + 1e-6
