"""Fig. 7: relative radio-on time benefit of rounds vs. per-message
beacons (H = 4, N = 2), as a function of slots per round and payload.

Asserts the paper's headline band: 33% saving at B = 5 and l = 10 B,
33-40% across B = 5..30 — and cross-checks the closed form against the
flood-level Glossy simulation.
"""

import pytest

from repro.analysis import fig7_energy_savings, format_series
from repro.baselines import compare_energy, simulate_energy
from repro.net import diameter_line


def test_bench_fig7_model(benchmark, capsys):
    data = benchmark(fig7_energy_savings)

    with capsys.disabled():
        print("\n=== Fig. 7: energy saving E of rounds (H=4, N=2) ===")
        for payload in data.payloads:
            print(format_series(
                f"l={payload:3d}B",
                list(data.slots),
                data.series[payload],
            ))

    ten_byte = fig7_energy_savings(payloads=(10,)).series[10]
    assert ten_byte[4] == pytest.approx(0.33, abs=0.015)  # B = 5
    assert all(0.32 <= s <= 0.40 for s in ten_byte[4:])  # B = 5..30
    # Savings shrink with payload (figure's color gradient).
    at_b10 = [data.series[l][9] for l in data.payloads]
    assert at_b10 == sorted(at_b10, reverse=True)


def test_bench_fig7_simulation_crosscheck(benchmark, capsys):
    """Simulated floods must reproduce the analytic series."""
    topo = diameter_line(4)

    def run():
        return [
            (b, simulate_energy(topo, payload_bytes=10, num_messages=b).saving)
            for b in (2, 5, 10, 20, 30)
        ]

    simulated = benchmark(run)
    with capsys.disabled():
        print("\n--- Fig. 7 cross-check: simulated vs closed-form (l=10B) ---")
        for b, saving in simulated:
            model = compare_energy(10, 4, b).saving
            print(f"B={b:3d}  simulated={saving:.3f}  model={model:.3f}")
    for b, saving in simulated:
        assert saving == pytest.approx(compare_energy(10, 4, b).saving, abs=0.02)
