"""Ablation: delivery and safety vs. beacon/data loss rate.

TTW's design trades availability for safety: a node missing a beacon
skips the round (losing that instance) but can never collide.  This
bench sweeps the loss rate and reports delivery, on-time rate, chain
success, and the collision count — the latter must be zero at every
loss level.
"""

import pytest

from repro.analysis import format_table
from repro.core import Mode, SchedulingConfig, synthesize
from repro.runtime import BernoulliLoss, RuntimeSimulator, build_deployment
from repro.workloads import closed_loop_pipeline

LOSS_RATES = (0.0, 0.01, 0.05, 0.10, 0.20, 0.40)


def build():
    config = SchedulingConfig(round_length=1.0, slots_per_round=5,
                              max_round_gap=None)
    mode = Mode(
        "m",
        [
            closed_loop_pipeline("a", period=20, deadline=20, num_hops=1),
            closed_loop_pipeline("b", period=40, deadline=40, num_hops=2),
        ],
        mode_id=0,
    )
    deployment = build_deployment(mode, synthesize(mode, config), 0)
    return mode, deployment


def sweep():
    mode, deployment = build()
    rows = []
    for loss in LOSS_RATES:
        sim = RuntimeSimulator(
            {0: mode},
            {0: deployment},
            initial_mode=0,
            loss=BernoulliLoss(beacon_loss=loss, data_loss=loss, seed=101),
        )
        trace = sim.run(4000.0, host_node="b_node2")
        rows.append(
            (f"{loss:.2f}",
             round(trace.delivery_rate(), 3),
             round(trace.on_time_rate(), 3),
             round(trace.chain_success_rate(), 3),
             len(trace.collisions()))
        )
    return rows


def test_bench_ablation_loss_sweep(benchmark, capsys):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Ablation: loss rate vs delivery & safety (4 s runs) ===")
        print(format_table(
            ["loss rate", "delivery", "on-time", "chain ok", "collisions"],
            rows,
        ))
    # Safety invariant at every loss level.
    assert all(r[4] == 0 for r in rows)
    # Delivery degrades monotonically-ish: endpoint checks.
    assert rows[0][1] == pytest.approx(1.0)
    assert rows[-1][1] < rows[0][1]
