"""Fig. 2: the two-phase mode-change protocol in execution.

Reproduces the figure's timeline — steady-state rounds, the transition
phase announced by beacons, the trigger round (SB=1), and the new mode
starting directly afterwards — and reports the request-to-switch delay
with and without beacon loss.
"""

import pytest

from repro.analysis import format_table
from repro.core import Mode, SchedulingConfig, synthesize
from repro.runtime import (
    BernoulliLoss,
    ModeRequest,
    RuntimeSimulator,
    build_deployment,
)
from repro.workloads import closed_loop_pipeline


def build_system():
    config = SchedulingConfig(round_length=1.0, slots_per_round=5,
                              max_round_gap=None)
    normal = Mode(
        "normal",
        [closed_loop_pipeline("a", period=20, deadline=20, num_hops=1)],
        mode_id=0,
    )
    emergency = Mode(
        "emergency",
        [closed_loop_pipeline("b", period=10, deadline=10, num_hops=1)],
        mode_id=1,
    )
    deployments = {
        0: build_deployment(normal, synthesize(normal, config), 0),
        1: build_deployment(emergency, synthesize(emergency, config), 1),
    }
    return {0: normal, 1: emergency}, deployments


def test_bench_mode_change(benchmark, capsys):
    modes, deployments = build_system()

    def run():
        rows = []
        for label, loss in [
            ("no loss", None),
            ("10% beacon loss", BernoulliLoss(beacon_loss=0.10, seed=7)),
            ("30% beacon loss", BernoulliLoss(beacon_loss=0.30, seed=7)),
        ]:
            sim = RuntimeSimulator(
                modes, deployments, initial_mode=0, loss=loss
            )
            trace = sim.run(400.0, mode_requests=[ModeRequest(33.0, 1)])
            switch = trace.mode_switches[0]
            rows.append(
                (label, switch.announced_at, switch.trigger_round_time,
                 switch.new_mode_start, switch.switch_delay,
                 len(trace.collisions()))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Fig. 2: mode change Mi -> Mk (request at t=33 ms) ===")
        print(format_table(
            ["scenario", "announced", "SB round", "new mode start",
             "switch delay", "collisions"],
            rows,
        ))

    for label, announced, trigger, start, delay, collisions in rows:
        assert collisions == 0  # safety under loss
        assert announced >= 33.0
        assert trigger >= announced
        assert start == pytest.approx(trigger + 1.0)  # directly after SB round
        # Drain bound: last pre-announcement release + deadline + a round.
        assert delay <= 20.0 + 20.0 + 1.0 + 1e-6
