"""Algorithm 1 behaviour: round-minimal synthesis and solve-time scaling.

The paper argues the co-scheduling ILP cannot be solved online and is
synthesized offline; this bench quantifies that claim on growing
problem sizes (apps x tasks) and reports rounds used, latency, ILP
size, and solve time per Algorithm 1 run.
"""

import pytest

from repro.analysis import format_table
from repro.core import InfeasibleError, SchedulingConfig, synthesize, verify_schedule
from repro.workloads import GeneratorConfig, WorkloadGenerator

SIZES = [
    ("1 app x 3 tasks", 1, 3),
    ("2 apps x 3 tasks", 2, 3),
    ("2 apps x 4 tasks", 2, 4),
    ("3 apps x 4 tasks", 3, 4),
]


def synthesize_suite():
    rows = []
    config = SchedulingConfig(round_length=1.0, slots_per_round=5,
                              max_round_gap=None)
    for label, num_apps, num_tasks in SIZES:
        generator = WorkloadGenerator(
            GeneratorConfig(num_tasks=num_tasks, num_nodes=8,
                            period_choices=(20.0, 40.0)),
            seed=7,
        )
        mode = generator.mode(f"s{num_apps}x{num_tasks}", num_apps)
        try:
            sched = synthesize(mode, config)
        except InfeasibleError:
            rows.append((label, "-", "-", "-", "-", "infeasible"))
            continue
        assert verify_schedule(mode, sched).ok
        stats = sched.solve_stats
        final = stats.iterations[-1]
        rows.append(
            (
                label,
                sched.num_rounds,
                round(sched.total_latency, 2),
                final.num_vars,
                final.num_constraints,
                round(stats.total_time, 3),
            )
        )
    return rows


def test_bench_synthesis_scaling(benchmark, capsys):
    rows = benchmark.pedantic(synthesize_suite, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Algorithm 1 scaling (Tr=1, B=5) ===")
        print(format_table(
            ["workload", "rounds", "sum latency", "ILP vars",
             "ILP constrs", "synth time [s]"],
            rows,
        ))
    solved = [r for r in rows if r[1] != "-"]
    assert solved, "at least one size must be solvable"
