"""Ablation: bursty vs. i.i.d. interference at equal average loss.

The paper motivates TTW with high-interference environments (EWSN
dependability competition).  Interference there is bursty; this bench
compares delivery and chain success under a Gilbert-Elliott channel
against an i.i.d. Bernoulli channel with the *same average* loss rate.
Burstiness concentrates losses in time: per-message delivery is nearly
identical, but *chain* success is higher under bursts because the
losses of a multi-message chain correlate within the same application
instance instead of spreading across many instances.  The safety
invariant (no collisions) holds under both channels.
"""

import pytest

from repro.analysis import format_table
from repro.core import Mode, SchedulingConfig, synthesize
from repro.runtime import (
    BernoulliLoss,
    GilbertElliottLoss,
    RuntimeSimulator,
    build_deployment,
)
from repro.workloads import closed_loop_pipeline


def build():
    config = SchedulingConfig(round_length=1.0, slots_per_round=5,
                              max_round_gap=None)
    mode = Mode("m", [
        closed_loop_pipeline("a", period=20, deadline=20, num_hops=2),
    ], mode_id=0)
    return mode, build_deployment(mode, synthesize(mode, config), 0)


def run_comparison():
    mode, deployment = build()
    bursty = GilbertElliottLoss(
        p_good_to_bad=0.05, p_bad_to_good=0.25,
        loss_good=0.01, loss_bad=0.8, seed=23,
    )
    rate = bursty.average_loss_rate()
    iid = BernoulliLoss(beacon_loss=rate, data_loss=rate, seed=23)

    rows = []
    for label, loss in [("bursty (GE)", bursty), ("iid (Bernoulli)", iid)]:
        sim = RuntimeSimulator({0: mode}, {0: deployment}, initial_mode=0,
                               loss=loss)
        trace = sim.run(8000.0, host_node="a_node2")
        rows.append(
            (label, f"{rate:.3f}",
             round(trace.delivery_rate(), 3),
             round(trace.chain_success_rate(), 3),
             len(trace.collisions()))
        )
    return rows


def test_bench_ablation_bursty(benchmark, capsys):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Ablation: bursty vs iid interference (equal avg loss) ===")
        print(format_table(
            ["channel", "avg loss", "delivery", "chain ok", "collisions"],
            rows,
        ))
    # Safety under both channels.
    assert all(r[4] == 0 for r in rows)
    # Both degrade availability.
    assert all(r[2] < 1.0 for r in rows)
