"""Exploration throughput: store-backed incremental Pareto search.

The design-space explorer's performance claim is not trials/sec (PR 4
owns that) but *work avoidance*: the result store makes repeated
explorations incremental, so the second pass over a space — the common
case while a designer iterates on objectives or grows an axis — costs
no campaign at all.  This bench explores a (payload, B) space twice
against one store and records candidates/sec plus the reuse counters.

Two further passes track the sharded/surrogate claims (ISSUE 9): the
model-guided ``surrogate`` sampler must reproduce the exhaustive grid
front from at most half the campaigns (``campaigns_saved``), and a
2-shard work-stealing pool explores a fresh space concurrently
(``shards`` / ``shard_speedup``).  The shard speedup is *asserted*
only with >= 4 cores — on smaller runners two shards time-slice one
core and the ratio measures scheduling noise, so it is recorded for
the trajectory but not gated.

``EXPLORE_BENCH_TRIALS`` scales the MC depth (default 20; CI smokes at
2).  The emitted ``BENCH_explore.json`` intentionally carries **no**
``speedup`` field — it is the live regression test that heterogeneous
benchmark documents render in one ``bench_table`` (see
``repro.analysis.bench``).
"""

import os
import time

from repro.analysis import bench_table
from repro.api import LossSpec, RadioSpec, Scenario, SimulationSpec
from repro.core import Mode, SchedulingConfig
from repro.dse import Axis, Space, explore, explore_sharded
from repro.workloads import closed_loop_pipeline

TRIALS = int(os.environ.get("EXPLORE_BENCH_TRIALS", "20"))
SHARDS = 2


def _space() -> Space:
    base = Scenario(
        name="bench-explore",
        modes=[Mode("normal", [closed_loop_pipeline(
            "loop", period=2000.0, deadline=2000.0, num_hops=2, wcet=1.0)])],
        config=SchedulingConfig(round_length=50.0, slots_per_round=5,
                                max_round_gap=None, backend="greedy"),
        radio=RadioSpec(payload_bytes=10, diameter=4),
        loss=LossSpec("bernoulli", {"beacon_loss": 0.02, "data_loss": 0.02,
                                    "seed": 1}),
        simulation=SimulationSpec(duration=6000.0, trials=TRIALS, seed=42),
    )
    return Space(
        base=base,
        axes=[
            Axis("payload", "payload", [10, 32]),
            Axis("B", "slots", [1, 2, 5]),
        ],
        derive="glossy_timing",
    )


def test_bench_explore(tmp_path, capsys, bench_record):
    space = _space()
    store = tmp_path / "explore.jsonl"
    objectives = ("energy_saving", "latency", "miss")

    started = time.monotonic()
    first = explore(space, sampler="grid", objectives=objectives,
                    store=store, engine="fast")
    t_first = time.monotonic() - started

    started = time.monotonic()
    second = explore(space, sampler="grid", objectives=objectives,
                     store=store, engine="fast")
    t_second = time.monotonic() - started

    # The store's headline property: the rerun executes zero campaigns
    # and reproduces the exact same front.
    assert first.executed == space.size and first.reused == 0
    assert second.executed == 0 and second.reused == space.size
    assert [c.name for c in second.front] == [c.name for c in first.front]

    # Surrogate pass: the model-guided sampler must find the same
    # Pareto front from at most half the campaigns.  Only the two
    # analytically-bounded objectives — `miss` carries no bound, so
    # including it would (correctly) degrade the seed round to the
    # full grid.  The grid reference reuses the first pass's store, so
    # this comparison costs zero extra campaigns.
    guided = ("energy_saving", "latency")
    grid_ref = explore(space, sampler="grid", objectives=guided,
                       store=store, engine="fast")
    assert grid_ref.executed == 0

    started = time.monotonic()
    surrogate = explore(space, sampler="surrogate", objectives=guided,
                        store=tmp_path / "surrogate.jsonl", engine="fast")
    t_surrogate = time.monotonic() - started
    campaigns_saved = grid_ref.reused - surrogate.executed
    assert surrogate.executed <= space.size // 2
    assert sorted(c.key for c in surrogate.front) == \
        sorted(c.key for c in grid_ref.front)

    # Sharded pass: the same fresh exploration fanned out over a
    # work-stealing pool of SHARDS processes.
    started = time.monotonic()
    sharded = explore_sharded(
        space, shards=SHARDS, sampler="grid", objectives=objectives,
        store=tmp_path / "sharded.jsonl", engine="fast",
    )
    t_sharded = time.monotonic() - started
    assert sharded.executed == space.size
    assert [c.name for c in sharded.front] == [c.name for c in first.front]
    shard_speedup = t_first / t_sharded if t_sharded else None

    bench_record(
        "explore",
        candidates=space.size,
        trials=TRIALS,
        first_pass_seconds=t_first,
        resumed_pass_seconds=t_second,
        candidates_per_sec=space.size / t_first if t_first else None,
        executed=first.executed,
        reused_on_rerun=second.reused,
        surrogate_seconds=t_surrogate,
        surrogate_executed=surrogate.executed,
        campaigns_saved=campaigns_saved,
        shards=SHARDS,
        sharded_seconds=t_sharded,
        # Meaningless when shards time-slice too few cores: see gate.
        shard_speedup=shard_speedup if (os.cpu_count() or 1) >= 4 else None,
        effective_workers=SHARDS,
    )

    with capsys.disabled():
        print(f"\n=== Exploration store reuse ({space.size} candidates x "
              f"{TRIALS} trials) ===")
        print(f"first pass: {t_first:.2f}s   resumed pass: {t_second:.2f}s")
        print(f"surrogate: {surrogate.executed}/{space.size} campaigns "
              f"({campaigns_saved} saved) in {t_surrogate:.2f}s")
        print(f"sharded (x{SHARDS}): {t_sharded:.2f}s"
              + (f"   speedup {shard_speedup:.2f}x" if shard_speedup
                 else ""))
        print(first.front_table())

    if (os.cpu_count() or 1) >= 4 and TRIALS >= 20:
        # The acceptance bar: two shards on real cores must beat one
        # process by >= 1.7x on a fresh space.  Below 4 cores the
        # shards contend with each other (and the parent) for the same
        # core, so the ratio is recorded but not asserted.
        assert shard_speedup >= 1.7, (
            f"2-shard exploration only {shard_speedup:.2f}x faster "
            f"({t_first:.2f}s -> {t_sharded:.2f}s)"
        )

    # Heterogeneous documents (this one has no 'speedup') must render
    # in one table without KeyErrors.
    document = {
        "schema": "repro-bench/1", "benchmark": "explore",
        "candidates": space.size, "first_pass_seconds": t_first,
    }
    pr4_document = {
        "schema": "repro-bench/1", "benchmark": "parallel_synthesis",
        "speedup": None, "engine_seconds": 1.0,
    }
    table = bench_table([document, pr4_document])
    assert "explore" in table and "-" in table
