"""Exploration throughput: store-backed incremental Pareto search.

The design-space explorer's performance claim is not trials/sec (PR 4
owns that) but *work avoidance*: the result store makes repeated
explorations incremental, so the second pass over a space — the common
case while a designer iterates on objectives or grows an axis — costs
no campaign at all.  This bench explores a (payload, B) space twice
against one store and records candidates/sec plus the reuse counters.

``EXPLORE_BENCH_TRIALS`` scales the MC depth (default 20; CI smokes at
2).  The emitted ``BENCH_explore.json`` intentionally carries **no**
``speedup`` field — it is the live regression test that heterogeneous
benchmark documents render in one ``bench_table`` (see
``repro.analysis.bench``).
"""

import os
import time

from repro.analysis import bench_table
from repro.api import LossSpec, RadioSpec, Scenario, SimulationSpec
from repro.core import Mode, SchedulingConfig
from repro.dse import Axis, Space, explore
from repro.workloads import closed_loop_pipeline

TRIALS = int(os.environ.get("EXPLORE_BENCH_TRIALS", "20"))


def _space() -> Space:
    base = Scenario(
        name="bench-explore",
        modes=[Mode("normal", [closed_loop_pipeline(
            "loop", period=2000.0, deadline=2000.0, num_hops=2, wcet=1.0)])],
        config=SchedulingConfig(round_length=50.0, slots_per_round=5,
                                max_round_gap=None, backend="greedy"),
        radio=RadioSpec(payload_bytes=10, diameter=4),
        loss=LossSpec("bernoulli", {"beacon_loss": 0.02, "data_loss": 0.02,
                                    "seed": 1}),
        simulation=SimulationSpec(duration=6000.0, trials=TRIALS, seed=42),
    )
    return Space(
        base=base,
        axes=[
            Axis("payload", "payload", [10, 32]),
            Axis("B", "slots", [1, 2, 5]),
        ],
        derive="glossy_timing",
    )


def test_bench_explore(tmp_path, capsys, bench_record):
    space = _space()
    store = tmp_path / "explore.jsonl"
    objectives = ("energy_saving", "latency", "miss")

    started = time.monotonic()
    first = explore(space, sampler="grid", objectives=objectives,
                    store=store, engine="fast")
    t_first = time.monotonic() - started

    started = time.monotonic()
    second = explore(space, sampler="grid", objectives=objectives,
                     store=store, engine="fast")
    t_second = time.monotonic() - started

    # The store's headline property: the rerun executes zero campaigns
    # and reproduces the exact same front.
    assert first.executed == space.size and first.reused == 0
    assert second.executed == 0 and second.reused == space.size
    assert [c.name for c in second.front] == [c.name for c in first.front]

    bench_record(
        "explore",
        candidates=space.size,
        trials=TRIALS,
        first_pass_seconds=t_first,
        resumed_pass_seconds=t_second,
        candidates_per_sec=space.size / t_first if t_first else None,
        executed=first.executed,
        reused_on_rerun=second.reused,
    )

    with capsys.disabled():
        print(f"\n=== Exploration store reuse ({space.size} candidates x "
              f"{TRIALS} trials) ===")
        print(f"first pass: {t_first:.2f}s   resumed pass: {t_second:.2f}s")
        print(first.front_table())

    # Heterogeneous documents (this one has no 'speedup') must render
    # in one table without KeyErrors.
    document = {
        "schema": "repro-bench/1", "benchmark": "explore",
        "candidates": space.size, "first_pass_seconds": t_first,
    }
    pr4_document = {
        "schema": "repro-bench/1", "benchmark": "parallel_synthesis",
        "speedup": None, "engine_seconds": 1.0,
    }
    table = bench_table([document, pr4_document])
    assert "explore" in table and "-" in table
