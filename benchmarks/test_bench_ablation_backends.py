"""Ablation: MILP backend comparison (HiGHS vs. from-scratch B&B).

The paper uses Gurobi; this repo ships scipy/HiGHS and its own
branch-and-bound.  Both must return the same round counts and
objectives — this bench quantifies the (large) speed gap, justifying
the default choice while validating the independent implementation.
"""

import pytest

from repro.analysis import format_table
from repro.core import Mode, SchedulingConfig, synthesize
from repro.workloads import closed_loop_pipeline, fig3_control_app

WORKLOADS = [
    ("1-hop-loop", lambda: closed_loop_pipeline("h1", period=20, deadline=20,
                                                num_hops=1)),
    ("2-hop-loop", lambda: closed_loop_pipeline("h2", period=20, deadline=20,
                                                num_hops=2)),
    ("fig3", lambda: fig3_control_app(period=20, deadline=20, sense_wcet=1,
                                      control_wcet=2, act_wcet=1)),
]


def run_backends():
    rows = []
    for name, factory in WORKLOADS:
        results = {}
        for backend in ("highs", "bnb"):
            mode = Mode(f"m_{name}_{backend}", [factory()])
            config = SchedulingConfig(round_length=1.0, slots_per_round=5,
                                      max_round_gap=None, backend=backend)
            sched = synthesize(mode, config)
            results[backend] = sched
        h, b = results["highs"], results["bnb"]
        bnb_nodes = sum(i.nodes for i in b.solve_stats.iterations)
        rows.append(
            (name, h.num_rounds, b.num_rounds,
             round(h.total_latency, 3), round(b.total_latency, 3),
             round(h.solve_stats.total_time, 3),
             round(b.solve_stats.total_time, 3), bnb_nodes)
        )
    return rows


def test_bench_ablation_backends(benchmark, capsys):
    rows = benchmark.pedantic(run_backends, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Ablation: HiGHS vs own branch-and-bound ===")
        print(format_table(
            ["workload", "R(highs)", "R(bnb)", "lat(highs)", "lat(bnb)",
             "t(highs) [s]", "t(bnb) [s]", "bnb nodes"],
            rows,
        ))
    for name, rh, rb, lh, lb, *_ in rows:
        assert rh == rb, f"{name}: backends disagree on round count"
        assert lh == pytest.approx(lb, abs=1e-3), f"{name}: objective differs"
