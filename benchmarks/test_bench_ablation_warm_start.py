"""Ablation: Algorithm 1 cold start vs. demand-bound warm start.

The paper's Algorithm 1 starts at R_M = 0 and increments; the demand
bound ceil(instances / B) is a provably-safe starting point.  This
bench measures how many ILP iterations and how much wall-clock the
warm start saves on message-heavy modes, while asserting identical
results.
"""

import pytest

from repro.analysis import format_table
from repro.core import Mode, SchedulingConfig, demand_round_bound, synthesize
from repro.workloads import closed_loop_pipeline

SIZES = (2, 4, 6)


def build_mode(num_apps):
    return Mode(
        f"m{num_apps}",
        [
            closed_loop_pipeline(f"p{i}", period=40, deadline=40, num_hops=2)
            for i in range(num_apps)
        ],
    )


def compare():
    config = SchedulingConfig(round_length=1.0, slots_per_round=2,
                              max_round_gap=None)
    rows = []
    for num_apps in SIZES:
        mode = build_mode(num_apps)
        cold = synthesize(mode, config)
        warm = synthesize(mode, config, warm_start=True)
        assert cold.num_rounds == warm.num_rounds
        rows.append(
            (f"{num_apps} apps ({2 * num_apps} msgs)",
             demand_round_bound(mode, config),
             cold.num_rounds,
             len(cold.solve_stats.iterations),
             len(warm.solve_stats.iterations),
             round(cold.solve_stats.total_time, 3),
             round(warm.solve_stats.total_time, 3))
        )
    return rows


def test_bench_ablation_warm_start(benchmark, capsys):
    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Ablation: Algorithm 1 cold vs warm start (B=2) ===")
        print(format_table(
            ["workload", "demand bound", "final R", "iters cold",
             "iters warm", "t cold [s]", "t warm [s]"],
            rows,
        ))
    for row in rows:
        assert row[4] <= row[3]  # warm start never iterates more
