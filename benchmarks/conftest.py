"""Benchmark harness configuration.

Each benchmark module regenerates one table or figure of the paper and
prints the rows/series in paper-comparable form; ``pytest-benchmark``
additionally times the underlying computation.  Run with::

    pytest benchmarks/ --benchmark-only
"""
