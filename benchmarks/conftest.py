"""Benchmark harness configuration.

Each benchmark module regenerates one table or figure of the paper and
prints the rows/series in paper-comparable form; ``pytest-benchmark``
additionally times the underlying computation.  Run with::

    pytest benchmarks/ --benchmark-only

Machine-readable trajectories
-----------------------------

Benchmarks that track a performance claim record their headline
numbers through the ``bench_record`` fixture::

    def test_bench_something(bench_record):
        ...
        bench_record("mc_campaign", trials_per_sec=123.4, speedup=5.6)

At session end every record is written to ``BENCH_<name>.json`` (in
``$BENCH_JSON_DIR``, default the current working directory), one JSON
document per benchmark with a stable ``schema`` tag plus whatever
fields the benchmark chose.  CI uploads these files as artifacts, so
the perf curve of the repository is a downloadable time series — see
``docs/PERFORMANCE.md`` for how to read them.
"""

import json
import os
import platform
from pathlib import Path

import pytest

#: Records accumulated over the session: name -> fields.
_RECORDS = {}

#: Format tag written into every BENCH_*.json document.
BENCH_SCHEMA = "repro-bench/1"


@pytest.fixture
def bench_record():
    """Record one benchmark's machine-readable result.

    Call as ``bench_record(name, **fields)``; fields must be
    JSON-serializable.  Calling twice with the same name overwrites
    (re-runs within one session supersede themselves).
    """

    def record(name: str, **fields):
        json.dumps(fields)  # fail fast on non-serializable fields
        _RECORDS[name] = fields

    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RECORDS:
        return
    out_dir = Path(os.environ.get("BENCH_JSON_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, fields in sorted(_RECORDS.items()):
        document = {
            "schema": BENCH_SCHEMA,
            "benchmark": name,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        }
        document.update(fields)
        # Every document states how many workers actually ran, so a
        # reader comparing trajectories across machines can tell a
        # real regression from a smaller runner.  Benchmarks that pool
        # record their own count; everything else is single-process.
        document.setdefault("effective_workers", 1)
        path = out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
