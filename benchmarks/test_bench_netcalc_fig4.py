"""Fig. 4/8: arrival, demand, and service functions of a message.

Prints the step functions for the figure's scenario (message allocated
to rounds r1, r2, r4 of five rounds, with a leftover instance) and
asserts the validity relation df <= sf <= af at every step point.
"""

import pytest

from repro.analysis import format_table
from repro.core import arrival_count, demand_count
from repro.core.netcalc import ServiceCurve, check_message_service

# Concretization of Fig. 4: hyperperiod 30, period 10, o+d > p.
HP, PERIOD, TR = 30.0, 10.0, 1.0
OFFSET, DEADLINE = 6.0, 6.0
ROUND_STARTS = {1: 1.0, 2: 8.0, 3: 12.0, 4: 18.0, 5: 27.0}
ALLOCATED = [1.0, 8.0, 18.0]  # r1, r2, r4
LEFTOVER = 1


def sample_functions():
    curve = ServiceCurve(
        round_ends=tuple(s + TR for s in ALLOCATED), leftover=LEFTOVER
    )
    rows = []
    for t in [0, 2, 5, 6, 9, 13, 16, 19, 23, 26, 29]:
        rows.append(
            (
                t,
                arrival_count(t, OFFSET, PERIOD),
                demand_count(t, OFFSET, DEADLINE, PERIOD),
                curve.served(t),
            )
        )
    return rows


def test_bench_fig4_functions(benchmark, capsys):
    rows = benchmark(sample_functions)
    with capsys.disabled():
        print("\n=== Fig. 4: af / df / sf for m_i (o=6, d=6, p=10) ===")
        print(format_table(["t", "af(t)", "df(t)", "sf(t)"], rows))

    # Validity: df <= sf <= af everywhere (paper eq. 1).
    for t, af, df, sf in rows:
        assert df <= sf <= af

    # The depicted allocation is valid...
    assert check_message_service(
        OFFSET, DEADLINE, PERIOD, HP, ALLOCATED, TR, leftover=LEFTOVER
    ) == []
    # ... replacing r2 by r3 violates (C2), as the caption says.
    problems = check_message_service(
        OFFSET, DEADLINE, PERIOD, HP,
        [ROUND_STARTS[1], ROUND_STARTS[3], ROUND_STARTS[4]], TR,
        leftover=LEFTOVER,
    )
    assert any("(C2)" in p for p in problems)
    # ... and serving the wrapped instance by r5 instead of r1 makes
    # the leftover accounting r0.Bi = 0, still valid.
    assert check_message_service(
        OFFSET, DEADLINE, PERIOD, HP,
        [ROUND_STARTS[2], ROUND_STARTS[4], ROUND_STARTS[5]], TR,
        leftover=0,
    ) == []
