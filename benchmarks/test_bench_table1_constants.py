"""Table I: constants of the Glossy implementation, plus the derived
per-slot quantities the rest of the evaluation builds on."""

from repro.analysis import format_table, table1_rows
from repro.timing import (
    DEFAULT_CONSTANTS,
    hop_time,
    slot_off_time,
    slot_on_time,
    slot_time,
)


def test_bench_table1(benchmark, capsys):
    rows = benchmark(table1_rows)

    derived = [
        ("T_hop(l=10B)", f"{hop_time(10) * 1e3:.3f} ms"),
        ("T_on(l=10B, H=4)", f"{slot_on_time(10, 4) * 1e3:.3f} ms"),
        ("T_off", f"{slot_off_time() * 1e3:.3f} ms"),
        ("T_slot(l=10B, H=4)", f"{slot_time(10, 4) * 1e3:.3f} ms"),
        ("T_slot(beacon, H=4)", f"{slot_time(DEFAULT_CONSTANTS.l_beacon, 4) * 1e3:.3f} ms"),
    ]
    with capsys.disabled():
        print("\n=== Table I: Glossy implementation constants ===")
        print(format_table(["constant", "value"], rows))
        print("\n--- derived slot quantities (H=4, N=2) ---")
        print(format_table(["quantity", "value"], derived))

    values = dict(rows)
    assert values["T_wake-up"] == "750 us"
    assert values["R_bit"] == "250 kbps"
