"""Monte-Carlo campaign throughput: vectorized vs fast vs reference.

Three performance claims, all *mechanism, not results*:

* **Engine**: the compiled round-program fast path (``engine="fast"``,
  see ``repro.runtime.compiled`` / ``repro.mc.fastpath``) must deliver
  **>= 5x trials/sec** over the reference object-level simulator on
  the same campaign — while producing **bit-identical** aggregated
  statistics (the fast path shares the reference's random stream, so
  this is an equality of numbers, not a statistical comparison).
* **Vectorized kernel**: the tensor engine (``engine="vectorized"``,
  see ``repro.mc.vectorized``) must deliver **>= 3x trials/sec** over
  the *fast* engine on the same campaign — while staying
  *distribution-equivalent* (it draws from numpy streams, so the
  comparison is the statistical harness of ``repro.mc.equivalence``,
  not equality).
* **Pooling**: running the same campaign over the trial pool must not
  change a single number, synthesis must happen once per distinct
  config however many trials execute, and on machines with >= 6
  workers the pooled fast campaign must beat the sequential one by
  >= 4x (smaller machines print the speedup but cannot meaningfully
  assert it).

The headline numbers land in ``BENCH_mc_campaign.json`` (via the
``bench_record`` fixture) so the repository's perf trajectory is
machine-readable.  CI smokes this path with ``MC_BENCH_TRIALS=2`` so
it cannot rot; the 5x and 3x bars are asserted at
``MC_BENCH_TRIALS >= 100`` (the default 200).
"""

import os
import time

import pytest

from repro.analysis import format_table
from repro.api import LossSpec, Scenario, SimulationSpec
from repro.core import SchedulingConfig
from repro.mc import assert_distribution_equivalent, run_campaign
from repro.workloads import industrial_mode

TRIALS = int(os.environ.get("MC_BENCH_TRIALS", "200"))
JOBS = min(8, os.cpu_count() or 1)


def make_scenario() -> Scenario:
    return Scenario(
        name="mc-bench",
        modes=[industrial_mode(num_loops=2, base_period=100.0)],
        config=SchedulingConfig(round_length=1.0, slots_per_round=5,
                                max_round_gap=None),
        backend="greedy",
        loss=LossSpec("bernoulli", {"beacon_loss": 0.03, "data_loss": 0.05}),
        simulation=SimulationSpec(duration=40000.0, trials=TRIALS, seed=42),
    )


def test_bench_mc_campaign(benchmark, tmp_path, capsys, bench_record):
    cache_dir = tmp_path / "cache"
    scenario = make_scenario()

    # Warm the schedule cache so every timed pass measures pure trial
    # throughput (synthesis cost is the other bench's story).
    warmup = run_campaign(scenario, trials=1, jobs=1, cache_dir=cache_dir)
    assert warmup.stats.modes_synthesized == 1

    started = time.monotonic()
    reference = run_campaign(scenario, jobs=1, cache_dir=cache_dir,
                             engine="reference")
    t_reference = time.monotonic() - started

    started = time.monotonic()
    ref_pooled = run_campaign(scenario, jobs=JOBS, cache_dir=cache_dir,
                              engine="reference")
    t_ref_pooled = time.monotonic() - started

    def fast_campaign():
        started = time.monotonic()
        result = run_campaign(scenario, jobs=1, cache_dir=cache_dir,
                              engine="fast")
        return result, time.monotonic() - started

    fast, t_fast = benchmark.pedantic(fast_campaign, rounds=1, iterations=1)

    started = time.monotonic()
    fast_pooled = run_campaign(scenario, jobs=JOBS, cache_dir=cache_dir,
                               engine="fast")
    t_fast_pooled = time.monotonic() - started

    started = time.monotonic()
    vectorized = run_campaign(scenario, jobs=1, cache_dir=cache_dir,
                              engine="vectorized")
    t_vectorized = time.monotonic() - started

    # The same vectorized campaign with a run log attached.  Events are
    # batch-granular, so the difference bounds the observability tax.
    from repro.obs import RunLog, set_run_log

    log = RunLog(tmp_path / "obs-logs", run_id="bench")
    previous = set_run_log(log)
    try:
        started = time.monotonic()
        logged = run_campaign(scenario, jobs=1, cache_dir=cache_dir,
                              engine="vectorized")
        t_logged = time.monotonic() - started
    finally:
        set_run_log(previous)
        log.close()

    # The scalar engines must agree on every number, and pooling must
    # not change a single one either.
    assert fast.points[0].trials == reference.points[0].trials
    reference_stats = reference.points[0].stats.to_dict()
    for result in (fast, ref_pooled, fast_pooled):
        assert result.points[0].stats.to_dict() == reference_stats
    assert reference.ok and fast.ok

    # The vectorized engine draws from numpy streams — its contract is
    # distribution equivalence against the exact engines, checked with
    # the same harness the equivalence suite gates on.
    assert vectorized.engines == {scenario.name: "vectorized"}
    assert vectorized.ok
    # Logging must not perturb the campaign — same engine, same numbers.
    assert logged.engines == vectorized.engines
    assert logged.points[0].stats.to_dict() == \
        vectorized.points[0].stats.to_dict()
    if TRIALS >= 20:  # below that the Wilson intervals span everything
        assert_distribution_equivalent(
            vectorized.points[0], fast.points[0], label="bench"
        )

    # Synthesis once per distinct config: the warm-up solved the one
    # distinct problem; every timed pass did zero solver work, despite
    # executing TRIALS trials each.
    for result in (reference, fast, ref_pooled, fast_pooled, vectorized):
        assert result.stats.modes_synthesized == 0
        assert result.stats.cache_hits == 1

    obs_overhead_pct = (
        100.0 * (t_logged - t_vectorized) / t_vectorized
        if t_vectorized else 0.0
    )
    engine_speedup = t_reference / t_fast if t_fast else float("inf")
    pool_speedup = t_reference / t_ref_pooled if t_ref_pooled else float("inf")
    vectorized_speedup = t_fast / t_vectorized if t_vectorized \
        else float("inf")
    stats = fast.points[0].stats
    bench_record(
        "mc_campaign",
        trials=TRIALS,
        jobs=JOBS,
        effective_workers=JOBS,
        reference_seconds=t_reference,
        fast_seconds=t_fast,
        vectorized_seconds=t_vectorized,
        reference_pooled_seconds=t_ref_pooled,
        fast_pooled_seconds=t_fast_pooled,
        reference_trials_per_sec=TRIALS / t_reference if t_reference else None,
        fast_trials_per_sec=TRIALS / t_fast if t_fast else None,
        vectorized_trials_per_sec=(
            TRIALS / t_vectorized if t_vectorized else None
        ),
        engine_speedup=engine_speedup,
        vectorized_speedup=vectorized_speedup,
        logged_vectorized_seconds=t_logged,
        obs_overhead_pct=obs_overhead_pct,
        # A single-worker "pool" measures process overhead, not
        # parallelism — record None so trend dashboards on 1-core CI
        # runners don't chart a meaningless ~1x as a regression.
        pool_speedup=pool_speedup if JOBS >= 2 else None,
        bit_identical=True,
    )

    with capsys.disabled():
        print(f"\n=== Monte-Carlo campaign throughput "
              f"({TRIALS} trials, jobs={JOBS}) ===")
        rows = [
            ("reference (j=1)", round(t_reference, 2),
             round(TRIALS / t_reference, 1) if t_reference else float("inf")),
            (f"reference (j={JOBS})", round(t_ref_pooled, 2),
             round(TRIALS / t_ref_pooled, 1) if t_ref_pooled
             else float("inf")),
            ("fast (j=1)", round(t_fast, 2),
             round(TRIALS / t_fast, 1) if t_fast else float("inf")),
            (f"fast (j={JOBS})", round(t_fast_pooled, 2),
             round(TRIALS / t_fast_pooled, 1) if t_fast_pooled
             else float("inf")),
            ("vectorized (j=1)", round(t_vectorized, 2),
             round(TRIALS / t_vectorized, 1) if t_vectorized
             else float("inf")),
            ("vectorized+log", round(t_logged, 2),
             round(TRIALS / t_logged, 1) if t_logged else float("inf")),
        ]
        print(format_table(["engine", "time [s]", "trials/s"], rows))
        print(f"engine speedup: {engine_speedup:.2f}x   "
              f"vectorized speedup: {vectorized_speedup:.2f}x   "
              f"pool speedup: {pool_speedup:.2f}x   "
              f"obs overhead: {obs_overhead_pct:+.1f}%   "
              f"miss {stats.miss}   collisions {stats.collisions}")

    if TRIALS >= 100:
        # The acceptance bar: the compiled fast path must hold >= 5x
        # trials/sec over the reference simulator (same machine, same
        # campaign, sequential vs. sequential).  Below 100 trials the
        # per-campaign fixed costs dominate and the ratio is noise.
        assert engine_speedup >= 5.0, (
            f"fast engine only {engine_speedup:.2f}x faster than the "
            f"reference ({t_reference:.2f}s -> {t_fast:.2f}s, "
            f"{TRIALS} trials)"
        )
        # The vectorized kernel's bar: >= 3x over the *fast* engine
        # (the ISSUE's floor; the design target is 10x, which the
        # recorded vectorized_speedup tracks).  Like the 5x bar, only
        # meaningful once trial work dominates fixed costs.
        assert vectorized_speedup >= 3.0, (
            f"vectorized engine only {vectorized_speedup:.2f}x faster "
            f"than fast ({t_fast:.2f}s -> {t_vectorized:.2f}s, "
            f"{TRIALS} trials)"
        )
        # The observability bar: batch-granular logging must cost under
        # 5% of the vectorized campaign (with a small absolute floor so
        # a sub-50ms jitter on an already-fast run cannot fail it).
        assert obs_overhead_pct < 5.0 or (t_logged - t_vectorized) < 0.05, (
            f"run-log overhead {obs_overhead_pct:.1f}% "
            f"({t_vectorized:.3f}s -> {t_logged:.3f}s, {TRIALS} trials)"
        )

    if JOBS >= 6 and TRIALS >= 200:
        # Pooling bar: >= 4x pooled vs. sequential for the reference
        # engine (whose per-trial cost dwarfs pool overhead; the fast
        # engine's sequential pass is already so cheap that process
        # startup dominates it — its pooled time is reported, not
        # asserted).  Asserted only with >= 6 workers — on a 4-core
        # box the theoretical ceiling is 4x, which pool overhead
        # necessarily undercuts.
        assert pool_speedup >= 4.0, (
            f"pooled campaign only {pool_speedup:.2f}x faster "
            f"({t_reference:.2f}s -> {t_ref_pooled:.2f}s, jobs={JOBS})"
        )


def test_bench_mc_sweep_reuses_synthesis(tmp_path, capsys):
    """A 3-point sweep multiplies trials, never synthesis."""
    trials = max(2, TRIALS // 20)
    result = run_campaign(
        make_scenario(), trials=trials, jobs=1,
        cache_dir=tmp_path / "cache",
        sweep={"data_loss": [0.0, 0.05, 0.1]},
    )
    assert len(result.points) == 3
    assert result.stats.modes_synthesized == 1  # one distinct config
    with capsys.disabled():
        misses = [str(point.stats.miss) for point in result.points]
        print(f"\nsweep misses ({trials} trials/point): {misses}")


def test_bench_engines_agree_across_sweep(tmp_path):
    """Fast and reference engines agree point by point on a sweep grid
    (the bench-level restatement of the equivalence suite)."""
    trials = max(2, min(10, TRIALS))
    kwargs = dict(trials=trials, jobs=1, cache_dir=tmp_path / "cache",
                  sweep={"beacon_loss": [0.0, 0.1]})
    fast = run_campaign(make_scenario(), engine="fast", **kwargs)
    reference = run_campaign(make_scenario(), engine="reference", **kwargs)
    for fast_point, reference_point in zip(fast.points, reference.points):
        assert fast_point.stats.to_dict() == reference_point.stats.to_dict()
