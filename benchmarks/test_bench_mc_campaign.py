"""Monte-Carlo campaign throughput: single-process vs. pooled trials.

The campaign layer's performance claim mirrors the synthesis engine's:
*mechanism, not results*.  A campaign over ``MC_BENCH_TRIALS`` seeded
trials (default 200) of a preset industrial-control scenario runs once
sequentially (``jobs=1``) and once over the trial pool, and the bench
asserts:

* the aggregated statistics are **bit-identical** — pooling only
  changes wall-clock;
* **synthesis runs once per distinct config**: the sequential pass
  populates the schedule cache (1 miss), the pooled pass is pure cache
  hits and does zero solver work, however many trials execute;
* on machines with >= 6 workers, the pooled campaign must be at least
  4x faster than the sequential one (on smaller machines the speedup
  is printed but not asserted — a 1-core CI box cannot parallelize,
  and a 4-core box has a theoretical ceiling of exactly 4x).

CI smokes this path with ``MC_BENCH_TRIALS=2`` so it cannot rot.
"""

import os
import time

import pytest

from repro.analysis import format_table
from repro.api import LossSpec, Scenario, SimulationSpec
from repro.core import SchedulingConfig
from repro.mc import run_campaign
from repro.workloads import industrial_mode

TRIALS = int(os.environ.get("MC_BENCH_TRIALS", "200"))
JOBS = min(8, os.cpu_count() or 1)


def make_scenario() -> Scenario:
    return Scenario(
        name="mc-bench",
        modes=[industrial_mode(num_loops=2, base_period=100.0)],
        config=SchedulingConfig(round_length=1.0, slots_per_round=5,
                                max_round_gap=None),
        backend="greedy",
        loss=LossSpec("bernoulli", {"beacon_loss": 0.03, "data_loss": 0.05}),
        simulation=SimulationSpec(duration=40000.0, trials=TRIALS, seed=42),
    )


def test_bench_mc_campaign(benchmark, tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    scenario = make_scenario()

    # Warm the schedule cache so both timed passes measure pure trial
    # throughput (synthesis cost is the other bench's story).
    warmup = run_campaign(scenario, trials=1, jobs=1, cache_dir=cache_dir)
    assert warmup.stats.modes_synthesized == 1

    started = time.monotonic()
    sequential = run_campaign(scenario, jobs=1, cache_dir=cache_dir)
    t_seq = time.monotonic() - started

    def pooled_campaign():
        started = time.monotonic()
        result = run_campaign(scenario, jobs=JOBS, cache_dir=cache_dir)
        return result, time.monotonic() - started

    pooled, t_pool = benchmark.pedantic(pooled_campaign, rounds=1,
                                        iterations=1)

    # Pooling must not change a single number.
    assert pooled.points[0].trials == sequential.points[0].trials
    assert pooled.points[0].stats.to_dict() == \
        sequential.points[0].stats.to_dict()
    assert sequential.ok and pooled.ok

    # Synthesis once per distinct config: the warm-up solved the one
    # distinct problem; both timed passes did zero solver work, despite
    # executing TRIALS trials each.
    for result in (sequential, pooled):
        assert result.stats.modes_synthesized == 0
        assert result.stats.cache_hits == 1

    stats = sequential.points[0].stats
    with capsys.disabled():
        print(f"\n=== Monte-Carlo campaign throughput "
              f"({TRIALS} trials, jobs={JOBS}) ===")
        rows = [
            ("sequential", round(t_seq, 2),
             round(TRIALS / t_seq, 1) if t_seq else float("inf")),
            (f"pooled (j={JOBS})", round(t_pool, 2),
             round(TRIALS / t_pool, 1) if t_pool else float("inf")),
        ]
        print(format_table(["mode", "time [s]", "trials/s"], rows))
        print(f"speedup: {t_seq / t_pool:.2f}x   "
              f"miss {stats.miss}   collisions {stats.collisions}")

    if JOBS >= 6 and TRIALS >= 200:
        # The acceptance bar: >= 4x pooled vs. sequential.  Asserted
        # only with >= 6 workers — on a 4-core box the theoretical
        # ceiling is 4x, which pool overhead necessarily undercuts.
        assert t_seq / t_pool >= 4.0, (
            f"pooled campaign only {t_seq / t_pool:.2f}x faster "
            f"({t_seq:.2f}s -> {t_pool:.2f}s, jobs={JOBS})"
        )


def test_bench_mc_sweep_reuses_synthesis(tmp_path, capsys):
    """A 3-point sweep multiplies trials, never synthesis."""
    trials = max(2, TRIALS // 20)
    result = run_campaign(
        make_scenario(), trials=trials, jobs=1,
        cache_dir=tmp_path / "cache",
        sweep={"data_loss": [0.0, 0.05, 0.1]},
    )
    assert len(result.points) == 3
    assert result.stats.modes_synthesized == 1  # one distinct config
    with capsys.disabled():
        misses = [str(point.stats.miss) for point in result.points]
        print(f"\nsweep misses ({trials} trials/point): {misses}")
