"""Runtime energy: radio duty cycle of an executing TTW deployment.

Complements the closed-form Fig. 7 comparison with an end-to-end
number: the average radio duty cycle of nodes executing a synthesized
schedule, as a function of traffic (rounds per second) — the "energy
efficiency" requirement the paper's design targets.
"""

import pytest

from repro.analysis import format_table
from repro.core import Mode, SchedulingConfig, synthesize
from repro.runtime import RadioTiming, RuntimeSimulator, build_deployment
from repro.timing import round_length_ms
from repro.workloads import closed_loop_pipeline

PERIODS = (200.0, 500.0, 1000.0, 2000.0)


def run_duty_cycles():
    tr = round_length_ms(payload_bytes=10, diameter=4, num_slots=5)
    rows = []
    for period in PERIODS:
        mode = Mode(
            f"m{period:.0f}",
            [closed_loop_pipeline("a", period=period, deadline=period,
                                  num_hops=2)],
            mode_id=0,
        )
        config = SchedulingConfig(round_length=tr, slots_per_round=5,
                                  max_round_gap=None)
        sched = synthesize(mode, config)
        deployment = build_deployment(mode, sched, 0)
        sim = RuntimeSimulator(
            {0: mode},
            {0: deployment},
            initial_mode=0,
            radio=RadioTiming(payload_bytes=10, diameter=4),
        )
        horizon = 20_000.0
        trace = sim.run(horizon)
        num_nodes = len(trace.radio_on)
        duty = trace.total_radio_on() / (num_nodes * horizon)
        rows.append(
            (f"{period:.0f}", sched.num_rounds,
             round(len(trace.rounds) / (horizon / 1000.0), 2),
             f"{duty * 100:.3f}")
        )
    return rows


def test_bench_runtime_energy(benchmark, capsys):
    rows = benchmark.pedantic(run_duty_cycles, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Runtime radio duty cycle (2-hop loop, H=4, B=5) ===")
        print(format_table(
            ["loop period [ms]", "rounds/HP", "rounds per s",
             "duty cycle [%]"],
            rows,
        ))
    duties = [float(r[3]) for r in rows]
    # Longer periods -> fewer rounds -> lower duty cycle.
    assert duties == sorted(duties, reverse=True)
    # Low-power regime: even the fastest loop stays in single digits.
    assert duties[0] < 25.0
