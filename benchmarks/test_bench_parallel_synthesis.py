"""Engine vs. paper baseline: batch synthesis wall-clock on a mode set.

The paper's Algorithm 1 probes round counts one at a time from
``R_M = 0`` and re-solves every mode of every sweep from scratch.  The
synthesis engine attacks the same workload three ways: demand-bound
warm starts skip the provably-infeasible prefix, speculative parallel
iteration overlaps the remaining ILPs across worker processes, and the
persistent cache makes repeat visits (the common case in parameter
sweeps and mode-graph studies) free.

This bench models one two-pass sweep over a multi-mode workload — the
second pass re-synthesizes the same modes, as a sweep revisiting a
configuration would — and compares the sequential baseline against the
engine.  The engine's results are asserted identical (round count and
total latency) to the sequential ones, and the two-pass engine time must
beat the two-pass baseline.
"""

import os

import pytest

from repro.analysis import format_table
from repro.core import SchedulingConfig, synthesize
from repro.engine import SynthesisEngine
from repro.workloads import GeneratorConfig, WorkloadGenerator

NUM_MODES = 3
SWEEP_PASSES = 2


def _make_modes():
    generator = WorkloadGenerator(
        GeneratorConfig(num_tasks=4, num_nodes=6, period_choices=(20.0, 40.0)),
        seed=3,
    )
    return [generator.mode(f"m{i}", 2) for i in range(NUM_MODES)]


def test_bench_parallel_synthesis(benchmark, tmp_path, capsys, bench_record):
    config = SchedulingConfig(round_length=1.0, slots_per_round=5,
                              max_round_gap=None)
    modes = _make_modes()
    jobs = min(4, os.cpu_count() or 1)

    import time

    def sequential_sweep():
        started = time.monotonic()
        results = {}
        for _ in range(SWEEP_PASSES):
            results = {m.name: synthesize(m, config) for m in modes}
        return results, time.monotonic() - started

    def engine_sweep():
        started = time.monotonic()
        engine = SynthesisEngine(config, jobs=jobs,
                                 cache_dir=tmp_path / "cache")
        results = {}
        for _ in range(SWEEP_PASSES):
            results = engine.synthesize_many(modes)
        return results, engine.stats, time.monotonic() - started

    sequential, t_seq = sequential_sweep()
    (engine_results, stats, t_engine) = benchmark.pedantic(
        engine_sweep, rounds=1, iterations=1
    )

    rows = []
    for mode in modes:
        seq, eng = sequential[mode.name], engine_results[mode.name]
        assert eng.num_rounds == seq.num_rounds
        assert eng.total_latency == pytest.approx(seq.total_latency)
        rows.append((mode.name, seq.num_rounds,
                     round(seq.total_latency, 2)))

    bench_record(
        "parallel_synthesis",
        modes=NUM_MODES,
        sweep_passes=SWEEP_PASSES,
        jobs=jobs,
        effective_workers=jobs,
        sequential_seconds=t_seq,
        engine_seconds=t_engine,
        speedup=t_seq / t_engine if t_engine else None,
    )

    with capsys.disabled():
        print(f"\n=== Engine vs. sequential Algorithm 1 "
              f"({NUM_MODES} modes x {SWEEP_PASSES} sweep passes, "
              f"jobs={jobs}) ===")
        print(format_table(["mode", "rounds", "sum latency"], rows))
        print(f"sequential: {t_seq:.2f}s   engine: {t_engine:.2f}s   "
              f"speedup: {t_seq / t_engine:.2f}x")
        print(f"engine {stats}")

    # The second sweep pass is served from the cache: no solver runs.
    assert stats.cache_hits == NUM_MODES
    assert stats.cache_misses == NUM_MODES
    # Wall-clock: caching + warm starts must beat re-solving everything.
    assert t_engine < t_seq
