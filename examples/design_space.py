#!/usr/bin/env python3
"""Design-space exploration: choosing B and the payload size.

Reproduces the trade-off at the heart of the paper's evaluation: more
slots per round amortize the beacon (energy win, Fig. 7) but lengthen
the round and therefore the minimum end-to-end latency (Fig. 6).  For
a 4-hop network this prints, per configuration, the round length, the
energy saving vs. a no-rounds design, and the resulting latency bound
for a 2-hop control loop — the table a system designer would use to
pick the deployment parameters.

Run:  python examples/design_space.py
"""

from repro.analysis import format_table
from repro.core import latency_lower_bound
from repro.timing import energy_saving, round_length_ms
from repro.workloads import closed_loop_pipeline

DIAMETER = 4
PAYLOADS = (10, 32, 64)
SLOTS = (1, 2, 5, 10, 20)


def main() -> None:
    app = closed_loop_pipeline("loop", period=2000.0, deadline=2000.0,
                               num_hops=2, wcet=1.0)
    print("Workload: 2-hop control loop (sense -> process -> actuate), "
          f"H = {DIAMETER}\n")

    rows = []
    for payload in PAYLOADS:
        for slots in SLOTS:
            tr = round_length_ms(payload, DIAMETER, slots)
            saving = energy_saving(payload, DIAMETER, slots)
            latency = latency_lower_bound(app, tr)
            rows.append((payload, slots, tr, saving * 100, latency))

    print(format_table(
        ["payload [B]", "B", "Tr [ms]", "energy saving [%]",
         "min latency [ms]"],
        rows,
        float_fmt="{:.1f}",
    ))

    print(
        "\nReading: larger rounds save energy (one beacon amortized over\n"
        "more slots) but push the minimum achievable end-to-end latency\n"
        "up, since each message hop costs one full round (eq. 13).  The\n"
        "paper's reference point H=4, B=5, l=10 B gives Tr ~ 50 ms and\n"
        "~33% energy saving."
    )


if __name__ == "__main__":
    main()
