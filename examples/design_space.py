#!/usr/bin/env python3
"""Design-space exploration: choosing B and the payload size.

Reproduces the trade-off at the heart of the paper's evaluation: more
slots per round amortize the beacon (energy win, Fig. 7) but lengthen
the round and therefore the end-to-end latency (Fig. 6).  Where this
example used to print a hand-rolled analytic table, it now drives the
``repro.dse`` subsystem end to end: declare the (B, payload) space over
a real scenario, evaluate every candidate through synthesis plus a
Monte-Carlo campaign on the fast engine, and print the exact Pareto
front — the table a system designer would pick the deployment
parameters from.

Run:  python examples/design_space.py
"""

from repro.api import LossSpec, RadioSpec, Scenario, SimulationSpec
from repro.core import Mode, SchedulingConfig
from repro.dse import Axis, Space, explore
from repro.workloads import closed_loop_pipeline

DIAMETER = 4
PAYLOADS = (10, 32, 64)
SLOTS = (1, 2, 5, 10, 20)


def build_space() -> Space:
    """The paper's H=4 reference deployment as an explorable space."""
    app = closed_loop_pipeline("loop", period=2000.0, deadline=2000.0,
                               num_hops=2, wcet=1.0)
    base = Scenario(
        name="design-space",
        modes=[Mode("normal", [app])],
        # Tr is recomputed per candidate by the glossy_timing deriver;
        # greedy keeps the example fast (every backend yields verified
        # schedules, see docs/API.md).
        config=SchedulingConfig(round_length=50.0, slots_per_round=5,
                                max_round_gap=None, backend="greedy"),
        radio=RadioSpec(payload_bytes=10, diameter=DIAMETER),
        loss=LossSpec("bernoulli", {"beacon_loss": 0.02, "data_loss": 0.02,
                                    "seed": 1}),
        simulation=SimulationSpec(duration=6000.0, trials=3, seed=42),
    )
    return Space(
        base=base,
        axes=[
            Axis("payload", "payload", list(PAYLOADS)),
            Axis("B", "slots", list(SLOTS)),
        ],
        derive="glossy_timing",
    )


def main() -> None:
    space = build_space()
    print("Workload: 2-hop control loop (sense -> process -> actuate), "
          f"H = {DIAMETER}")
    print(f"Space: payload x B = {space.size} candidates, "
          f"Tr derived per candidate (Fig. 6)\n")

    result = explore(
        space,
        sampler="grid",
        objectives=("energy_saving", "latency", "miss"),
    )
    print(result.table())

    print(f"\n-- Pareto front ({len(result.front)} of "
          f"{len(result.candidates)} candidates) --")
    print(result.front_table())

    print(
        "\nReading: larger rounds save energy (one beacon amortized over\n"
        "more slots) but push the end-to-end latency up, since each\n"
        "message hop costs one full round (eq. 13).  Every payload=10\n"
        "point trades saving against latency along B; heavier payloads\n"
        "are dominated (same B, less saving, longer rounds).  The\n"
        "paper's reference point H=4, B=5, l=10 B sits mid-front at\n"
        "Tr ~ 50 ms and ~33% energy saving."
    )


if __name__ == "__main__":
    main()
