#!/usr/bin/env python3
"""Industrial control scenario: several concurrent closed-loop
applications with harmonic periods, executed over a lossy multi-hop
network — written against the declarative ``repro.api`` surface.

The whole experiment is one :class:`repro.api.Scenario`: the workload
(three control loops with periods 200/400/800 ms), the scheduling
config, the loss model, and the 10 s simulation phase.  The scenario
serializes to JSON, so the same experiment also runs from the command
line:

    python -m repro.cli scenario run industrial.scenario.json

The run reports delivery statistics, end-to-end latencies, the
collision-freedom safety property, and per-node radio-on time.

Run:  python examples/industrial_control.py
"""

from repro.analysis import format_table
from repro.api import LossSpec, RadioSpec, Scenario, SimulationSpec, run_scenario
from repro.core import SchedulingConfig
from repro.timing import round_length_ms
from repro.workloads import industrial_mode


def main() -> None:
    # Dimension the round for a 3-hop plant network.
    tr = round_length_ms(payload_bytes=16, diameter=3, num_slots=5)
    print(f"Round length Tr (H=3, B=5, l=16 B): {tr:.1f} ms")

    # Periods 200/400/800 ms: with Tr ~ 52 ms, a 2-hop loop needs
    # >= 2*Tr + WCETs ~ 107 ms end-to-end, so 100 ms loops would be
    # infeasible by eq. (13) — the paper's design-space reality.
    mode = industrial_mode(num_loops=3, base_period=200.0)
    print(f"Mode {mode.name!r}: {len(mode.applications)} loops, "
          f"hyperperiod {mode.hyperperiod:.0f} ms")

    # The full experiment, declaratively.
    scenario = Scenario(
        name="industrial",
        modes=[mode],
        config=SchedulingConfig(round_length=tr, slots_per_round=5,
                                max_round_gap=None),
        loss=LossSpec("bernoulli", {"beacon_loss": 0.05, "data_loss": 0.05,
                                    "seed": 42}),
        radio=RadioSpec(payload_bytes=16, diameter=3),
        simulation=SimulationSpec(duration=10_000.0),
    )
    result = run_scenario(scenario)
    schedule = result.schedules[mode.name]
    assert result.verified
    print(f"Synthesized {schedule.num_rounds} rounds per hyperperiod")

    rows = [
        (app.name, f"{app.period:.0f}",
         f"{schedule.app_latencies[app.name]:.1f}")
        for app in mode.applications
    ]
    print(format_table(["loop", "period [ms]", "latency [ms]"], rows))

    trace = result.trace
    print(f"\nExecuted {len(trace.rounds)} rounds over 10 s with 5% loss:")
    print(f"  collision-free:        {trace.collision_free}")
    print(f"  message delivery rate: {trace.delivery_rate():.3f}")
    print(f"  on-time delivery rate: {trace.on_time_rate():.3f}")
    print(f"  chain success rate:    {trace.chain_success_rate():.3f}")

    print("\nPer-node radio-on time [ms] (10 s horizon):")
    rows = [(node, f"{on:.1f}")
            for node, on in sorted(trace.radio_on.items())]
    print(format_table(["node", "radio-on"], rows))
    duty = trace.total_radio_on() / (len(trace.radio_on) * 10_000.0)
    print(f"\nAverage radio duty cycle: {duty * 100:.2f}%")

    print("\nResults row:", result.metrics)


if __name__ == "__main__":
    main()
