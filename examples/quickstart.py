#!/usr/bin/env python3
"""Quickstart: dimension a round, synthesize a schedule, verify it.

This walks the complete TTW workflow on the paper's Fig. 3 control
application:

1. compute the round length ``Tr`` from the radio model (Table I) for
   a 4-hop network with 5 slots per round;
2. co-schedule tasks, messages, and rounds with Algorithm 1;
3. independently verify the schedule;
4. compare the achieved end-to-end latency against the analytic
   lower bound (eq. 13) and the DRP baseline (~2x Tr per message).

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.baselines import application_guarantee
from repro.core import (
    Mode,
    SchedulingConfig,
    latency_lower_bound,
    synthesize,
    verify_schedule,
)
from repro.timing import round_length_ms
from repro.workloads import fig3_control_app


def main() -> None:
    # 1. Radio model -> round length (paper Fig. 6: ~50 ms).
    tr = round_length_ms(payload_bytes=10, diameter=4, num_slots=5)
    print(f"Round length Tr (H=4, B=5, l=10 B): {tr:.1f} ms")

    # 2. The Fig. 3 application: 2 sensors -> controller -> 2 actuators.
    app = fig3_control_app(period=400.0, deadline=300.0,
                           sense_wcet=2.0, control_wcet=5.0, act_wcet=1.0)
    mode = Mode("normal", [app])
    config = SchedulingConfig(round_length=tr, slots_per_round=5,
                              max_round_gap=None)
    schedule = synthesize(mode, config)
    print(f"\nSynthesized {schedule.num_rounds} rounds "
          f"(hyperperiod {schedule.hyperperiod:.0f} ms)")

    print("\nRound table:")
    rows = [(f"{start:.1f}", ", ".join(msgs))
            for start, msgs in schedule.slot_table()]
    print(format_table(["start [ms]", "slots"], rows))

    print("\nTask offsets [ms]:")
    rows = sorted(schedule.task_offsets.items())
    print(format_table(["task", "offset"], rows))

    # 3. Independent verification (all paper constraints).
    report = verify_schedule(mode, schedule)
    print(f"\nVerification: {'OK' if report.ok else report.violations}")

    # 4. Latency vs. bounds.
    achieved = schedule.app_latencies[app.name]
    bound = latency_lower_bound(app, tr)
    drp = application_guarantee(app, tr)
    print(f"\nEnd-to-end latency: achieved {achieved:.1f} ms, "
          f"eq.(13) bound {bound:.1f} ms, DRP guarantee {drp:.1f} ms "
          f"({drp / achieved:.2f}x slower)")


if __name__ == "__main__":
    main()
