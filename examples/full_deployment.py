#!/usr/bin/env python3
"""Full deployment workflow with the declarative ``repro.api`` surface.

Covers the life cycle a real deployment would follow:

1. dimension the round from the radio model and check the (C2.2) round
   spacing against the node's clock-drift guard time;
2. describe the whole experiment — two modes, the allowed transition,
   a lossy 20 s run with a runtime mode change — as one serializable
   :class:`repro.api.Scenario`;
3. run it (synthesize → verify → simulate) through
   :func:`repro.api.run_scenario`, then inspect the schedules: ASCII
   Gantt charts, per-round slot assignment, WCET sensitivity;
4. persist both artifacts: the scenario (the experiment description)
   and the system image (what nodes store at deployment);
5. show the reloaded system image is simulated identically.

Run:  python examples/full_deployment.py
"""

import tempfile
from pathlib import Path

from repro.analysis import render_gantt, render_round_table
from repro.api import LossSpec, Scenario, SimulationSpec, run_scenario
from repro.core import Mode, SchedulingConfig, analyze_sensitivity, assign_slots
from repro.runtime import analyze_sync
from repro.system import TTWSystem
from repro.timing import DEFAULT_CONSTANTS, round_length_ms
from repro.workloads import closed_loop_pipeline, fig3_control_app


def main() -> None:
    # 1. Radio model -> Tr; drift analysis -> Tmax sanity.
    tr = round_length_ms(payload_bytes=10, diameter=4, num_slots=5)
    t_max = 2000.0  # rounds at most 2 s apart
    guard_ms = DEFAULT_CONSTANTS.t_wakeup * 1e3
    sync = analyze_sync(t_max, guard_time_ms=guard_ms)
    print(f"Tr = {tr:.1f} ms; Tmax = {t_max:.0f} ms -> worst drift "
          f"{sync.worst_offset * 1e3:.1f} us vs guard {guard_ms * 1e3:.0f} us "
          f"({'OK' if sync.safe else 'UNSAFE'}, tolerates "
          f"{sync.missed_beacons_tolerated} missed beacons)")

    # 2. The whole experiment as one declarative scenario.
    scenario = Scenario(
        name="deployment",
        modes=[
            Mode("normal", [
                fig3_control_app(period=1000, deadline=800, sense_wcet=2,
                                 control_wcet=5, act_wcet=1),
                closed_loop_pipeline("aux", period=2000, deadline=2000,
                                     num_hops=1),
            ]),
            Mode("emergency", [
                closed_loop_pipeline("stop", period=500, deadline=500,
                                     num_hops=1),
            ]),
        ],
        config=SchedulingConfig(round_length=tr, slots_per_round=5,
                                max_round_gap=t_max),
        transitions=[("normal", "emergency")],
        loss=LossSpec("bernoulli", {"beacon_loss": 0.03, "data_loss": 0.03,
                                    "seed": 11}),
        simulation=SimulationSpec(duration=20_000.0,
                                  mode_requests=((6_000.0, "emergency"),)),
    )

    # 3. Synthesize + verify + simulate in one call (warm-started).
    result = run_scenario(scenario, warm_start=True)
    assert result.verified
    for name, schedule in sorted(result.schedules.items()):
        print(f"\n--- mode {name!r}: {schedule.num_rounds} rounds, "
              f"latencies {{"
              + ", ".join(f"{a}: {l:.0f} ms"
                          for a, l in sorted(schedule.app_latencies.items()))
              + "} ---")
        print(render_round_table(schedule))
        mode = next(m for m in scenario.modes if m.name == name)
        print(render_gantt(mode, schedule, width=64))
        plans = assign_slots(mode, schedule)
        free = sum(p.free_slots for p in plans)
        print(f"slot plans: {sum(len(p.slots) for p in plans)} slots used, "
              f"{free} free (early sleep)")
        sensitivity = analyze_sensitivity(mode, schedule)
        bottleneck = sensitivity.bottleneck_task
        print(f"sensitivity: bottleneck task {bottleneck!r} tolerates "
              f"+{sensitivity.task_wcet_slack[bottleneck]:.1f} ms WCET growth "
              f"without re-synthesis")

    # 4/5. Persist both artifacts, reload the image, execute.
    with tempfile.TemporaryDirectory() as tmp:
        scenario_path = Path(tmp) / "deployment.scenario.json"
        scenario.save(scenario_path)
        print(f"\nsaved scenario description: "
              f"{scenario_path.stat().st_size} bytes "
              f"(re-run with: python -m repro.cli scenario run "
              f"{scenario_path.name})")

        system_path = Path(tmp) / "deployment.json"
        result.system().save(system_path)
        print(f"saved deployment image: {system_path.stat().st_size} bytes")
        reloaded = TTWSystem.load(system_path)
        trace = reloaded.simulate(
            duration=20_000.0,
            mode_requests=[reloaded.request(6_000.0, "emergency")],
            loss=scenario.build_loss(),
        )
    print(f"\n20 s lossy run: {len(trace.rounds)} rounds, "
          f"delivery {trace.delivery_rate():.3f}, "
          f"chains {trace.chain_success_rate():.3f}, "
          f"collision-free={trace.collision_free}, "
          f"switches={len(trace.mode_switches)}")
    switch = trace.mode_switches[0]
    print(f"mode switch: requested {switch.requested_at:.0f} ms -> "
          f"emergency live at {switch.new_mode_start:.0f} ms "
          f"(delay {switch.switch_delay:.0f} ms)")


if __name__ == "__main__":
    main()
