#!/usr/bin/env python3
"""Full deployment workflow with the high-level :class:`TTWSystem` API.

Covers the life cycle a real deployment would follow:

1. dimension the round from the radio model and check the (C2.2) round
   spacing against the node's clock-drift guard time;
2. register two modes and the allowed transition;
3. synthesize all schedules (warm-started Algorithm 1), render them as
   ASCII Gantt charts, and derive the per-round slot assignment;
4. persist the system image to JSON (what nodes store at deployment);
5. reload it and execute a lossy run with a mode change.

Run:  python examples/full_deployment.py
"""

import tempfile
from pathlib import Path

from repro.analysis import render_gantt, render_round_table
from repro.core import Mode, SchedulingConfig, analyze_sensitivity, assign_slots
from repro.runtime import BernoulliLoss, analyze_sync
from repro.system import TTWSystem
from repro.timing import DEFAULT_CONSTANTS, round_length_ms
from repro.workloads import closed_loop_pipeline, fig3_control_app


def main() -> None:
    # 1. Radio model -> Tr; drift analysis -> Tmax sanity.
    tr = round_length_ms(payload_bytes=10, diameter=4, num_slots=5)
    t_max = 2000.0  # rounds at most 2 s apart
    guard_ms = DEFAULT_CONSTANTS.t_wakeup * 1e3
    sync = analyze_sync(t_max, guard_time_ms=guard_ms)
    print(f"Tr = {tr:.1f} ms; Tmax = {t_max:.0f} ms -> worst drift "
          f"{sync.worst_offset * 1e3:.1f} us vs guard {guard_ms * 1e3:.0f} us "
          f"({'OK' if sync.safe else 'UNSAFE'}, tolerates "
          f"{sync.missed_beacons_tolerated} missed beacons)")

    # 2. Modes.
    config = SchedulingConfig(round_length=tr, slots_per_round=5,
                              max_round_gap=t_max)
    system = TTWSystem(config, warm_start=True)
    system.add_mode(Mode("normal", [
        fig3_control_app(period=1000, deadline=800, sense_wcet=2,
                         control_wcet=5, act_wcet=1),
        closed_loop_pipeline("aux", period=2000, deadline=2000, num_hops=1),
    ]))
    system.add_mode(Mode("emergency", [
        closed_loop_pipeline("stop", period=500, deadline=500, num_hops=1),
    ]))
    system.allow_transition("normal", "emergency")

    # 3. Synthesis + inspection.
    schedules = system.synthesize_all()
    for name, schedule in sorted(schedules.items()):
        print(f"\n--- mode {name!r}: {schedule.num_rounds} rounds, "
              f"latencies {{"
              + ", ".join(f"{a}: {l:.0f} ms"
                          for a, l in sorted(schedule.app_latencies.items()))
              + "} ---")
        print(render_round_table(schedule))
        mode = system.mode_graph.modes[name]
        print(render_gantt(mode, schedule, width=64))
        plans = assign_slots(mode, schedule)
        free = sum(p.free_slots for p in plans)
        print(f"slot plans: {sum(len(p.slots) for p in plans)} slots used, "
              f"{free} free (early sleep)")
        sensitivity = analyze_sensitivity(mode, schedule)
        bottleneck = sensitivity.bottleneck_task
        print(f"sensitivity: bottleneck task {bottleneck!r} tolerates "
              f"+{sensitivity.task_wcet_slack[bottleneck]:.1f} ms WCET growth "
              f"without re-synthesis")

    # 4/5. Persist, reload, execute.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "deployment.json"
        system.save(path)
        print(f"\nsaved deployment image: {path.stat().st_size} bytes")
        reloaded = TTWSystem.load(path)
        trace = reloaded.simulate(
            duration=20_000.0,
            mode_requests=[reloaded.request(6_000.0, "emergency")],
            loss=BernoulliLoss(beacon_loss=0.03, data_loss=0.03, seed=11),
        )
    print(f"\n20 s lossy run: {len(trace.rounds)} rounds, "
          f"delivery {trace.delivery_rate():.3f}, "
          f"chains {trace.chain_success_rate():.3f}, "
          f"collision-free={trace.collision_free}, "
          f"switches={len(trace.mode_switches)}")
    switch = trace.mode_switches[0]
    print(f"mode switch: requested {switch.requested_at:.0f} ms -> "
          f"emergency live at {switch.new_mode_start:.0f} ms "
          f"(delay {switch.switch_delay:.0f} ms)")


if __name__ == "__main__":
    main()
