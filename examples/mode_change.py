#!/usr/bin/env python3
"""Mode change walkthrough (paper Fig. 2).

Builds a two-mode system (a normal monitoring mode and a fast
emergency mode), requests a switch at runtime, and prints the beacon
timeline of the two-phase protocol: the announcement phase (beacons
carry the new mode id, applications drain), the trigger round
(SB = 1), and the new mode starting directly afterwards.

Also demonstrates the safety argument: with targeted beacon loss, a
node that misses the trigger simply stays silent until the next beacon
(no collisions), whereas a hypothetical design without beacon gating
collides.

Run:  python examples/mode_change.py
"""

from repro.core import Mode, SchedulingConfig, synthesize
from repro.runtime import (
    ModeRequest,
    NodePolicy,
    RuntimeSimulator,
    build_deployment,
)
from repro.runtime.loss import ScriptedBeaconLoss
from repro.workloads import closed_loop_pipeline


def build_system():
    config = SchedulingConfig(round_length=1.0, slots_per_round=5,
                              max_round_gap=None)
    normal = Mode(
        "normal",
        [
            closed_loop_pipeline("mon", period=20.0, deadline=20.0, num_hops=1),
            closed_loop_pipeline("aux", period=20.0, deadline=20.0, num_hops=1),
        ],
        mode_id=0,
    )
    emergency = Mode(
        "emergency",
        [closed_loop_pipeline("stop", period=10.0, deadline=10.0, num_hops=1)],
        mode_id=1,
    )
    deployments = {
        0: build_deployment(normal, synthesize(normal, config), 0),
        1: build_deployment(emergency, synthesize(emergency, config), 1),
    }
    return {0: normal, 1: emergency}, deployments


def print_timeline(trace, limit=14):
    print(f"  {'t [ms]':>7}  {'mode':>4}  {'round':>5}  {'beacon':>16}")
    for rnd in trace.rounds[:limit]:
        beacon = f"(id={rnd.round_id}, mode={rnd.beacon_mode_id}, SB={int(rnd.trigger)})"
        marker = "  <- trigger" if rnd.trigger else ""
        print(f"  {rnd.time:7.1f}  {rnd.mode_id:>4}  {rnd.round_id:>5}  "
              f"{beacon:>16}{marker}")


def main() -> None:
    modes, deployments = build_system()

    print("=== Mode change, no loss (request at t=33 ms) ===")
    sim = RuntimeSimulator(modes, deployments, initial_mode=0)
    trace = sim.run(120.0, mode_requests=[ModeRequest(33.0, 1)],
                    host_node="mon_node1")
    print_timeline(trace)
    switch = trace.mode_switches[0]
    print(f"\n  announced at {switch.announced_at:.1f} ms, trigger round at "
          f"{switch.trigger_round_time:.1f} ms,")
    print(f"  emergency mode starts at {switch.new_mode_start:.1f} ms "
          f"(switch delay {switch.switch_delay:.1f} ms)")
    print(f"  collisions: {len(trace.collisions())}")

    # Targeted loss: the node owning slot 0 of the normal round misses
    # the trigger beacon and the first emergency beacon.
    sb_index = next(
        i for i, rnd in enumerate(trace.rounds) if rnd.trigger
    )
    drops = {sb_index: {"aux_node0"}, sb_index + 1: {"aux_node0"}}
    print("\n=== Same switch, 'aux_node0' misses the SB beacon ===")
    for label, policy in [
        ("TTW (beacon-gated)", NodePolicy.BEACON_GATED),
        ("naive (local belief)", NodePolicy.LOCAL_BELIEF),
    ]:
        sim = RuntimeSimulator(
            modes,
            deployments,
            initial_mode=0,
            loss=ScriptedBeaconLoss(dict(drops)),
            policy=policy,
        )
        trace2 = sim.run(120.0, mode_requests=[ModeRequest(33.0, 1)],
                         host_node="mon_node1")
        collisions = trace2.collisions()
        print(f"  {label:22s}: {len(collisions)} collision(s)")
        for rnd, slot in collisions:
            print(f"      at t={rnd.time:.1f} slot {slot.slot_index}: "
                  f"{slot.transmitters} transmitted simultaneously")


if __name__ == "__main__":
    main()
