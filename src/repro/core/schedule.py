"""Schedule containers produced by the TTW synthesis (paper's ``Sched(M)``).

A :class:`ModeSchedule` bundles everything the paper distributes to the
nodes at deployment time: task offsets, message offsets/deadlines, the
round starting times, and the per-round slot allocation, together with
the configuration they were synthesized for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SchedulingConfig:
    """Parameters of the scheduling problem (paper Table II constants).

    Attributes:
        round_length: ``Tr`` — time one communication round occupies.
        slots_per_round: ``B`` — data slots per round (the beacon slot
            is accounted inside ``Tr``).
        max_round_gap: ``Tmax`` — upper bound on the time between two
            consecutive round starts (keeps clocks synchronized).  Use
            ``None`` to disable (no bound).
        mm: The paper's small constant for strict inequalities.
        big_m: The paper's big-M; defaults to ``10 * hyperperiod`` when
            ``None``.
        backend: MILP backend, ``"highs"`` or ``"bnb"``.
        time_limit: Per-ILP wall-clock limit in seconds.
        minimize_latency: When True (paper's setting), minimize the sum
            of application latencies; otherwise any feasible schedule.
    """

    round_length: float = 1.0
    slots_per_round: int = 5
    max_round_gap: Optional[float] = 30.0
    mm: float = 1e-4
    big_m: Optional[float] = None
    backend: str = "highs"
    time_limit: Optional[float] = None
    minimize_latency: bool = True

    def __post_init__(self) -> None:
        if self.round_length <= 0:
            raise ValueError("round_length must be > 0")
        if self.slots_per_round < 1:
            raise ValueError("slots_per_round must be >= 1")
        if self.max_round_gap is not None and self.max_round_gap < self.round_length:
            raise ValueError("max_round_gap must be >= round_length")


@dataclass
class RoundSchedule:
    """One synthesized communication round.

    Attributes:
        start: ``r.t`` — start relative to the hyperperiod origin.
        messages: Names of the messages allocated to the round's slots
            (the paper's allocation vector ``r.[B]``, with empty slots
            omitted; slot order within a round is interchangeable).
    """

    start: float
    messages: List[str] = field(default_factory=list)

    @property
    def num_allocated(self) -> int:
        return len(self.messages)


@dataclass
class ModeSchedule:
    """Complete schedule of one mode — the paper's ``Sched(M)``.

    Attributes:
        mode_name: Name of the scheduled mode.
        hyperperiod: Mode hyperperiod (schedule repeats after this).
        config: The :class:`SchedulingConfig` used.
        task_offsets: ``tau.o`` per task name.
        message_offsets: ``m.o`` per message name.
        message_deadlines: ``m.d`` per message name (relative to offset).
        rounds: Synthesized rounds, ordered by start time.
        sigma: Solver-chosen period-wrap binaries per precedence edge
            ``(source, target)``; 1 means the successor starts in the
            next application period.
        leftover: The ``r0.B_i`` leftover-instance indicator per message.
        app_latencies: End-to-end latency achieved per application.
        total_latency: Objective value (sum of application latencies).
        solve_stats: Per-iteration statistics from Algorithm 1.
    """

    mode_name: str
    hyperperiod: float
    config: SchedulingConfig
    task_offsets: Dict[str, float] = field(default_factory=dict)
    message_offsets: Dict[str, float] = field(default_factory=dict)
    message_deadlines: Dict[str, float] = field(default_factory=dict)
    rounds: List[RoundSchedule] = field(default_factory=list)
    sigma: Dict[Tuple[str, str], int] = field(default_factory=dict)
    leftover: Dict[str, int] = field(default_factory=dict)
    app_latencies: Dict[str, float] = field(default_factory=dict)
    total_latency: float = 0.0
    solve_stats: "SynthesisStats | None" = None

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def rounds_for_message(self, message: str) -> List[float]:
        """Start times of the rounds serving ``message``."""
        return [r.start for r in self.rounds if message in r.messages]

    def slot_table(self) -> List[Tuple[float, Tuple[str, ...]]]:
        """(start, allocated messages) per round — deployment-time table."""
        return [(r.start, tuple(r.messages)) for r in self.rounds]


@dataclass
class SynthesisStats:
    """Statistics of one Algorithm 1 run."""

    mode_name: str
    iterations: List["IterationStats"] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def final_rounds(self) -> Optional[int]:
        for it in self.iterations:
            if it.feasible:
                return it.num_rounds
        return None


@dataclass
class IterationStats:
    """One ILP solve inside Algorithm 1 (a fixed round count ``R_M``)."""

    num_rounds: int
    feasible: bool
    solve_time: float
    num_vars: int
    num_constraints: int
    objective: Optional[float] = None
    nodes: int = 0
