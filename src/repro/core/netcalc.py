"""Network-calculus arrival/demand/service functions (paper Sec. IV, Fig. 4).

The coupling between message offsets/deadlines and round allocation is
expressed with three counting functions per message ``m_i``:

* arrival  ``af_i(t) = floor((t - o_i) / p_i) + 1``  (eq. 2) — instances
  released by time ``t``;
* demand   ``df_i(t) = ceil((t - o_i - d_i) / p_i)`` (eq. 3) — instances
  whose deadline has passed by ``t``;
* service  ``sf_i(t)`` (eq. 10) — instances served by completed rounds,
  minus the leftover count ``r0.B_i``.

A schedule is valid iff ``df_i(t) <= sf_i(t) <= af_i(t)`` for all ``t``
(eq. 1).  Because ``sf`` only changes at round boundaries, validity
reduces to the per-round checks (C1)/(C2) — eqs. (4) and (5) — which is
exactly what :func:`check_message_service` evaluates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Numeric slack when comparing times.  Must absorb the MILP solver's
#: feasibility slack while staying below the formulation's
#: strict-inequality constant ``mm`` (1e-4), so boundary solutions
#: verify but real violations are still caught.  HiGHS applies its
#: 1e-7 tolerance to the *scaled* problem; with big-M ~10x the
#: hyperperiod against mm, unscaled constraint violations of ~1e-5
#: come back on message offsets/deadlines sitting on a window
#: boundary (hypothesis found a workload whose solution carried
#: d = 1 - 1.08e-5, flipping the verifier's demand count at the round
#: edge).  mm/4 clears that with margin; violations below mm are not
#: expressible by the formulation, so nothing real is masked.
TIME_EPS = 2.5e-5


def arrival_count(t: float, offset: float, period: float) -> int:
    """Paper eq. (2): instances of the message released by time ``t``.

    Clamped below at 0 — before the first release nothing has arrived.
    (The raw formula goes negative for ``t < offset - period``; the
    paper only ever evaluates it inside the hyperperiod where the clamp
    is equivalent.)
    """
    raw = math.floor((t - offset + TIME_EPS) / period) + 1
    return max(0, raw)


def demand_count(t: float, offset: float, deadline: float, period: float) -> int:
    """Paper eq. (3): instances whose absolute deadline passed by ``t``.

    May legitimately evaluate to -1 at ``t = 0`` when
    ``offset + deadline > period`` — the "leftover instance" case the
    paper handles with ``r0.B_i``.
    """
    return math.ceil((t - offset - deadline - TIME_EPS) / period)


@dataclass(frozen=True)
class ServiceCurve:
    """Service function of one message given its allocated rounds.

    Attributes:
        round_ends: Sorted completion times (``r.t + Tr``) of the rounds
            in which the message holds a slot, within one hyperperiod.
        leftover: The paper's ``r0.B_i`` — number of instances released
            in the previous hyperperiod but served in this one (0 or 1).
    """

    round_ends: Tuple[float, ...]
    leftover: int = 0

    def served(self, t: float) -> int:
        """Instances served strictly by time ``t`` (eq. 10)."""
        count = sum(1 for end in self.round_ends if end <= t + TIME_EPS)
        return count - self.leftover


def check_message_service(
    offset: float,
    deadline: float,
    period: float,
    hyperperiod: float,
    allocated_round_starts: Sequence[float],
    round_length: float,
    leftover: int = 0,
) -> List[str]:
    """Validate one message's allocation against (C1), (C2), (C4.4).

    Args:
        offset: ``m.o`` — release relative to the hyperperiod start.
        deadline: ``m.d`` — relative deadline from the offset.
        period: ``m.p``.
        hyperperiod: Mode hyperperiod (must be a multiple of ``period``).
        allocated_round_starts: Start times ``r.t`` of rounds where the
            message is allocated a slot.
        round_length: ``Tr``.
        leftover: ``r0.B_i``.

    Returns:
        A list of human-readable violations; empty when the allocation
        is valid.  Checks, per allocated round ``r_j``:

        * (C1) ``sf(r_j.t + Tr) <= af(r_j.t)`` — the message instance
          the round serves was released before the round starts;
        * (C2) ``sf(r_j.t) >= df(r_j.t + Tr)`` — no instance's deadline
          elapses before a round serving it completes;

        plus (C4.4): instances served per hyperperiod equals
        ``hyperperiod / period``.
    """
    problems: List[str] = []
    starts = sorted(allocated_round_starts)
    curve = ServiceCurve(tuple(s + round_length for s in starts), leftover)

    expected = hyperperiod / period
    if abs(expected - round(expected)) > 1e-6:
        problems.append(
            f"hyperperiod {hyperperiod} is not a multiple of period {period}"
        )
    elif len(starts) != round(expected):
        problems.append(
            f"(C4.4) message allocated {len(starts)} slots per hyperperiod, "
            f"expected {round(expected)}"
        )

    # The service function only changes at round completions, so it
    # suffices to check at every allocated round boundary (paper eqs. 4-5)
    # and additionally at the hyperperiod end for the demand side.
    for start in starts:
        end = start + round_length
        sf_after = curve.served(end)
        af_at_start = arrival_count(start, offset, period)
        if sf_after > af_at_start:
            problems.append(
                f"(C1) round at t={start:g} serves instance "
                f"#{sf_after} but only {af_at_start} released by its start"
            )
        sf_before = curve.served(start)
        df_after = demand_count(end, offset, deadline, period)
        if sf_before < df_after:
            problems.append(
                f"(C2) by round at t={start:g}: {sf_before} served but "
                f"{df_after} deadlines pass before the round completes"
            )
    # Deadlines falling after the last round of the hyperperiod must be
    # covered too (wrap-around instance served next hyperperiod iff
    # leftover accounting matches).
    df_end = demand_count(hyperperiod, offset, deadline, period)
    sf_end = curve.served(hyperperiod)
    if sf_end < df_end:
        problems.append(
            f"(C2) at hyperperiod end: served {sf_end} < due {df_end}"
        )
    return problems


def leftover_instances(offset: float, deadline: float, period: float) -> int:
    """Maximum possible value of the paper's ``r0.B_i``: 1 iff ``o+d > p``.

    A message with ``offset + deadline > period`` released at the end
    of one hyperperiod has its deadline in the next hyperperiod, so at
    most one instance can be "in flight" across the boundary (the
    appendix proves 0 or 1 are the only possibilities given ``d <= p``
    and ``o <= p``).  Whether the leftover is *used* is an allocation
    choice: the scheduler may instead serve the late instance within
    the same hyperperiod and have ``r0.B_i = 0`` (paper Fig. 4).
    """
    return 1 if offset + deadline > period + TIME_EPS else 0
