"""Uniform random-source handling for every stochastic component.

Loss models, the Glossy flood simulator, and the workload generator all
draw from a pseudo-random stream.  Historically each of them accepted
only an integer ``seed`` and built a private :class:`random.Random`;
:func:`make_rng` generalizes that contract so **one rule holds
everywhere**:

* ``None`` — a fresh, OS-seeded stream (non-reproducible; fine for
  exploration, never used by the Monte-Carlo campaign layer);
* ``int`` — a deterministic stream.  Equal seeds produce equal draws on
  every platform and Python version (``random.Random`` guarantees
  this), which is what makes traces replayable and campaigns
  resumable;
* :class:`random.Random` — used as-is, so several components can share
  one stream when an experiment wants coupled randomness;
* :class:`numpy.random.Generator` — wrapped in a thin adapter exposing
  the ``random()`` method the consumers call, so numpy-centric
  experiment code can hand its generator straight in.

Anything else (floats, strings, bools) is rejected eagerly with the
same validation style as the other API boundaries — name the
parameter, show the offending value, list what is accepted — instead
of failing later inside a simulation loop.
"""

from __future__ import annotations

import random
from typing import Optional, Union

try:  # numpy is a hard dependency of the solver, but keep this module
    import numpy as _np  # importable in stripped-down environments.
except ImportError:  # pragma: no cover
    _np = None

#: Everything :func:`make_rng` accepts (numpy Generators included).
SeedLike = Union[None, int, random.Random, object]


class _NumpyAdapter:
    """Adapts :class:`numpy.random.Generator` to the ``random.Random``
    duck type — exactly the methods the repository's stochastic
    components call (loss models, Glossy floods, workload generation)."""

    __slots__ = ("generator",)

    def __init__(self, generator) -> None:
        self.generator = generator

    def random(self) -> float:
        return float(self.generator.random())

    def uniform(self, a: float, b: float) -> float:
        return a + (b - a) * float(self.generator.random())

    def randrange(self, n: int) -> int:
        return int(self.generator.integers(n))

    def randint(self, a: int, b: int) -> int:
        return int(self.generator.integers(a, b + 1))

    def choice(self, seq):
        return seq[int(self.generator.integers(len(seq)))]

    def sample(self, population, k: int):
        indices = self.generator.choice(len(population), size=k, replace=False)
        return [population[int(i)] for i in indices]


def make_rng(seed: SeedLike, param: str = "seed") -> "random.Random | _NumpyAdapter":
    """Coerce ``seed`` into an object with a ``random() -> float`` method.

    Args:
        seed: ``None``, an integer, a :class:`random.Random`, or a
            :class:`numpy.random.Generator`.
        param: Parameter name used in the error message.

    Raises:
        ValueError: for any other type, in the repository's boundary
            style (parameter name, offending value, accepted options).
    """
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, int) and not isinstance(seed, bool):
        return random.Random(seed)
    if seed is None:
        return random.Random()
    if _np is not None and isinstance(seed, _np.random.Generator):
        return _NumpyAdapter(seed)
    raise ValueError(
        f"{param} must be an integer, a random.Random, a "
        f"numpy.random.Generator, or None, got {seed!r}"
    )


def derive_seed(master: Optional[int], *labels: object) -> int:
    """Derive a stable child seed from ``master`` and a label path.

    The Monte-Carlo campaign layer gives every trial its own
    deterministic seed: ``derive_seed(campaign_seed, trial_index)``.
    The derivation is a SHA-256 hash, so it is stable across platforms,
    Python versions, and processes — unlike ``hash()`` — and children
    with different labels are statistically independent.

    Args:
        master: The campaign-level seed (``None`` counts as 0).
        labels: Any JSON-representable path components (trial index,
            grid-point index, ...).

    Returns:
        A non-negative 63-bit integer seed.
    """
    import hashlib

    text = ":".join([str(0 if master is None else master)]
                    + [str(label) for label in labels])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1
