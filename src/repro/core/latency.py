"""End-to-end latency analysis (paper Sec. V, eqs. 13 and 47-48).

Provides:

* :func:`chain_latency` / :func:`application_latency` — exact latency
  of a synthesized schedule (eq. 47/48);
* :func:`latency_lower_bound` — the analytic minimum of eq. (13):
  every message costs at least one round ``Tr`` plus the chain's WCETs;
* :func:`drp_latency_bound` — the baseline guarantee of [16], where the
  loose task/message coupling costs (at least) ``2 * Tr`` per message,
  giving TTW its headline 2x improvement.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from .app_model import Application, Chain
from .schedule import ModeSchedule


def chain_latency(
    app: Application,
    chain: Chain,
    task_offsets: Mapping[str, float],
    sigma: Mapping[Tuple[str, str], int],
) -> float:
    """Latency of one chain under a schedule (paper eq. 47).

    ``tau_last.o + tau_last.e - tau_first.o + sum(sigma * a.p)`` over
    the chain's edges.
    """
    first, last = chain.first_task, chain.last_task
    wraps = sum(
        sigma[(chain.elements[i], chain.elements[i + 1])]
        for i in range(len(chain.elements) - 1)
    )
    return (
        task_offsets[last]
        + app.tasks[last].wcet
        - task_offsets[first]
        + wraps * app.period
    )


def application_latency(
    app: Application,
    task_offsets: Mapping[str, float],
    sigma: Mapping[Tuple[str, str], int],
) -> float:
    """Latency of an application: max over its chains (paper eq. 48)."""
    return max(
        chain_latency(app, chain, task_offsets, sigma) for chain in app.chains()
    )


def schedule_latencies(
    schedule: ModeSchedule, applications
) -> Dict[str, float]:
    """Recompute exact per-application latencies from a schedule."""
    return {
        app.name: application_latency(app, schedule.task_offsets, schedule.sigma)
        for app in applications
    }


def latency_lower_bound(app: Application, round_length: float) -> float:
    """Paper eq. (13): minimum achievable latency of an application.

    Every chain needs at least the sum of its WCETs plus one full round
    ``Tr`` per message hop; the application bound is the max over
    chains.
    """
    best = 0.0
    for chain in app.chains():
        total = sum(app.tasks[t].wcet for t in chain.tasks)
        total += len(chain.messages) * round_length
        best = max(best, total)
    return best


def drp_latency_bound(app: Application, round_length: float) -> float:
    """Best-case latency guarantee of the DRP baseline [16].

    DRP couples task and message schedules loosely: the best possible
    end-to-end guarantee for a single message is of the order of
    ``2 * Tr`` (paper Sec. V), so each message hop costs ``2 * Tr``.
    """
    best = 0.0
    for chain in app.chains():
        total = sum(app.tasks[t].wcet for t in chain.tasks)
        total += len(chain.messages) * 2.0 * round_length
        best = max(best, total)
    return best


def ttw_vs_drp_speedup(app: Application, round_length: float) -> float:
    """Latency improvement factor of TTW's bound over DRP's (>= 1).

    Approaches 2.0 as communication dominates computation — the paper's
    headline "reduction of communication latency by a factor 2x".
    """
    ttw = latency_lower_bound(app, round_length)
    drp = drp_latency_bound(app, round_length)
    if ttw <= 0:
        raise ValueError("application has zero latency bound")
    return drp / ttw
