"""Operation modes and the mode graph (paper Sec. II-B and III).

A mode is a set of applications executed concurrently; its hyperperiod
is the least common multiple of the application periods.  TTW switches
between modes at runtime with the two-phase beacon protocol simulated
in :mod:`repro.runtime`.  The paper assumes modes are disjoint
(``Mi ∩ Mj = ∅``), which :class:`ModeGraph` enforces.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence

from .app_model import Application, ModelError


def _to_fraction(value: float) -> Fraction:
    """Convert a time value to an exact fraction for LCM arithmetic.

    Periods are user inputs like 20.0 or 12.5 ms; ``limit_denominator``
    keeps them exact for any sane decimal input.
    """
    return Fraction(value).limit_denominator(10**9)


def lcm_times(values: Iterable[float]) -> float:
    """Least common multiple of positive (possibly fractional) times.

    >>> lcm_times([10, 15])
    30.0
    >>> lcm_times([2.5, 10.0])
    10.0
    """
    fractions = [_to_fraction(v) for v in values]
    if not fractions:
        raise ValueError("lcm_times needs at least one value")
    if any(f <= 0 for f in fractions):
        raise ValueError("lcm_times requires positive values")
    result = fractions[0]
    for frac in fractions[1:]:
        result = Fraction(
            math.lcm(result.numerator, frac.numerator),
            math.gcd(result.denominator, frac.denominator),
        )
    return float(result)


class Mode:
    """A mode ``M = {a_i, a_j, ...}`` of concurrently executing applications.

    Attributes:
        name: Unique mode identifier.
        mode_id: Small integer carried in beacons (assigned by
            :class:`ModeGraph`, or explicitly).
        applications: The applications executed in this mode.
    """

    def __init__(
        self,
        name: str,
        applications: Sequence[Application],
        mode_id: Optional[int] = None,
    ) -> None:
        if not applications:
            raise ModelError(f"mode {name!r} has no applications")
        names = [a.name for a in applications]
        if len(set(names)) != len(names):
            raise ModelError(f"mode {name!r}: duplicate application names")
        self.name = name
        self.mode_id = mode_id
        self.applications: List[Application] = list(applications)
        self._validate_cross_app()

    def _validate_cross_app(self) -> None:
        """Tasks/messages shared across applications must share periods.

        The paper allows an element in two applications only when both
        applications have equal periods; since our applications own
        their elements, sharing is by name, and we enforce the period
        rule on name collisions.
        """
        periods: Dict[str, float] = {}
        for app in self.applications:
            for element in list(app.tasks) + list(app.messages):
                if element in periods and periods[element] != app.period:
                    raise ModelError(
                        f"mode {self.name!r}: element {element!r} shared by "
                        f"applications with different periods"
                    )
                periods[element] = app.period

    @property
    def hyperperiod(self) -> float:
        """LCM of the application periods."""
        return lcm_times(a.period for a in self.applications)

    def tasks(self):
        """Iterate ``(application, task)`` pairs over the whole mode."""
        for app in self.applications:
            for task in app.tasks.values():
                yield app, task

    def messages(self):
        """Iterate ``(application, message)`` pairs over the whole mode."""
        for app in self.applications:
            for message in app.messages.values():
                yield app, message

    def nodes(self) -> List[str]:
        """Sorted union of nodes used by any application of the mode."""
        found = set()
        for app in self.applications:
            found.update(app.nodes())
        return sorted(found)

    def validate(self) -> None:
        for app in self.applications:
            app.validate()
        self._validate_cross_app()

    def __repr__(self) -> str:
        return (
            f"Mode({self.name!r}, id={self.mode_id}, "
            f"apps={[a.name for a in self.applications]})"
        )


class ModeGraph:
    """The set of system modes plus allowed runtime transitions.

    Modes get consecutive integer ids (carried in beacons).  The paper
    assumes mode disjointness — no application may belong to two modes —
    which :meth:`add_mode` enforces.
    """

    def __init__(self) -> None:
        self.modes: Dict[str, Mode] = {}
        self._by_id: Dict[int, Mode] = {}
        self.transitions: Dict[str, List[str]] = {}

    def add_mode(self, mode: Mode) -> Mode:
        if mode.name in self.modes:
            raise ModelError(f"duplicate mode {mode.name!r}")
        owned = {
            a.name for existing in self.modes.values() for a in existing.applications
        }
        overlap = owned & {a.name for a in mode.applications}
        if overlap:
            raise ModelError(
                f"mode {mode.name!r} shares applications {sorted(overlap)} with "
                f"an existing mode; the paper assumes disjoint modes"
            )
        if mode.mode_id is None:
            mode.mode_id = len(self.modes)
        if mode.mode_id in self._by_id:
            raise ModelError(f"duplicate mode id {mode.mode_id}")
        self.modes[mode.name] = mode
        self._by_id[mode.mode_id] = mode
        self.transitions.setdefault(mode.name, [])
        return mode

    def add_transition(self, source: str, target: str) -> None:
        """Allow a runtime switch ``source -> target``."""
        if source not in self.modes or target not in self.modes:
            raise ModelError(f"unknown mode in transition {source!r} -> {target!r}")
        if target not in self.transitions[source]:
            self.transitions[source].append(target)

    def mode_by_id(self, mode_id: int) -> Mode:
        return self._by_id[mode_id]

    def can_switch(self, source: str, target: str) -> bool:
        return target in self.transitions.get(source, [])

    def __len__(self) -> int:
        return len(self.modes)
