"""ILP formulation of the TTW co-scheduling problem (paper appendix).

For a mode ``M`` and a fixed number of rounds ``R_M``, :func:`build_ilp`
constructs the mixed-integer program whose solution is ``Sched(M)``:

* **(C1.1)** precedence between tasks and messages (eqs. 21–22), with
  period-wrap binaries ``sigma``;
* **(C1.2)** end-to-end deadlines per chain (eq. 23);
* **(C2.1)** rounds do not overlap (eq. 24);
* **(C2.2)** bounded inter-round gap (eq. 25);
* **(C3)** node-exclusive, non-preemptive task execution via big-M
  disjunctions (eqs. 28–29);
* **(C4.1)/(C4.2)** valid message-to-round allocation through the
  linearized arrival/demand/service functions (eqs. 42–45), with
  counters ``ka_ij``, ``kd_ij`` and leftover indicators ``r0.B_i``;
* **(C4.3)** at most ``B`` messages per round;
* **(C4.4)** every instance is served once per hyperperiod (eq. 46);
* objective: minimize the summed application latencies (eqs. 47–49).

Deviations from the paper, for soundness (documented in DESIGN.md):

* we additionally constrain ``tau.o + tau.e <= tau.p`` so no task
  instance crosses its own period boundary, which makes the
  one-hyperperiod pairwise check (C3) complete under cyclic execution;
* the leftover indicator ``r0.B_i`` is *linked* to its definition
  (``r0 = 1  iff  m.o + m.d > m.p``) with two big-M constraints, rather
  than left free, so the service accounting is exact at the
  hyperperiod boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..milp import Model, ObjectiveSense, Var, quicksum
from .app_model import Application
from .modes import Mode
from .schedule import SchedulingConfig


@dataclass
class IlpHandles:
    """The model plus handles to every decision variable group.

    Attribute names follow the paper's notation; keys are element
    names (task/message) or ``(source, target)`` edge tuples.
    """

    model: Model
    task_offset: Dict[str, Var] = field(default_factory=dict)
    msg_offset: Dict[str, Var] = field(default_factory=dict)
    msg_deadline: Dict[str, Var] = field(default_factory=dict)
    sigma: Dict[Tuple[str, str], Var] = field(default_factory=dict)
    round_start: List[Var] = field(default_factory=list)
    alloc: Dict[Tuple[int, str], Var] = field(default_factory=dict)
    leftover: Dict[str, Var] = field(default_factory=dict)
    k_arrival: Dict[Tuple[str, int], Var] = field(default_factory=dict)
    k_demand: Dict[Tuple[str, int], Var] = field(default_factory=dict)
    app_latency: Dict[str, Var] = field(default_factory=dict)


def _unique_elements(mode: Mode) -> Tuple[Dict[str, Application], Dict[str, Application]]:
    """Map task/message names to their owning application.

    The ILP keys variables by element name, so names must be unique
    across the mode's applications.
    """
    tasks: Dict[str, Application] = {}
    messages: Dict[str, Application] = {}
    for app in mode.applications:
        for t in app.tasks:
            if t in tasks or t in messages:
                raise ValueError(
                    f"element name {t!r} appears in several applications of "
                    f"mode {mode.name!r}; names must be mode-unique"
                )
            tasks[t] = app
        for m in app.messages:
            if m in tasks or m in messages:
                raise ValueError(
                    f"element name {m!r} appears in several applications of "
                    f"mode {mode.name!r}; names must be mode-unique"
                )
            messages[m] = app
    return tasks, messages


def build_ilp(mode: Mode, num_rounds: int, config: SchedulingConfig) -> IlpHandles:
    """Build the ILP for mode ``mode`` with exactly ``num_rounds`` rounds.

    Args:
        mode: Validated mode (applications, mappings, WCETs given).
        num_rounds: The fixed ``R_M`` of this Algorithm 1 iteration.
        config: Round length ``Tr``, slots ``B``, gap bound ``Tmax``, …

    Returns:
        :class:`IlpHandles` with the fully-constrained model; call
        ``handles.model.solve()`` and read values back through the
        handle dictionaries.
    """
    mode.validate()
    task_owner, msg_owner = _unique_elements(mode)
    lcm = mode.hyperperiod
    t_r = config.round_length
    big_m = config.big_m if config.big_m is not None else 10.0 * lcm
    mm = config.mm

    model = Model(f"ttw[{mode.name}]x{num_rounds}")
    h = IlpHandles(model=model)

    # ---- variables (paper Table II) ---------------------------------
    for name, app in task_owner.items():
        task = app.tasks[name]
        # tau.o in [0, p - e]: the instance must not cross its own
        # period boundary (completeness of the cyclic C3 check).
        h.task_offset[name] = model.add_continuous(
            f"o[{name}]", 0.0, max(0.0, app.period - task.wcet)
        )
    for name, app in msg_owner.items():
        h.msg_offset[name] = model.add_continuous(f"mo[{name}]", 0.0, app.period)
        h.msg_deadline[name] = model.add_continuous(f"md[{name}]", 0.0, app.period)
        h.leftover[name] = model.add_binary(f"r0[{name}]")

    for j in range(num_rounds):
        h.round_start.append(
            model.add_continuous(f"rt[{j}]", 0.0, lcm - t_r)
        )
        for name in msg_owner:
            h.alloc[(j, name)] = model.add_binary(f"B[{j},{name}]")
    for name, app in msg_owner.items():
        n_inst = round(lcm / app.period)
        for j in range(num_rounds):
            h.k_arrival[(name, j)] = model.add_integer(f"ka[{name},{j}]", 0, n_inst)
            h.k_demand[(name, j)] = model.add_integer(f"kd[{name},{j}]", -1, n_inst)

    # ---- (C1.1) precedence: eqs. (21)-(22) ----------------------------
    for app in mode.applications:
        for msg_name, producers in app.msg_producers.items():
            for t_name in producers:
                sigma = model.add_binary(f"sig[{t_name}->{msg_name}]")
                h.sigma[(t_name, msg_name)] = sigma
                task = app.tasks[t_name]
                model.add_constr(
                    h.task_offset[t_name] + task.wcet
                    <= app.period * sigma + h.msg_offset[msg_name],
                    name=f"C1.1[{t_name}->{msg_name}]",
                )
        for t_name, preds in app.task_preds.items():
            for msg_name in preds:
                sigma = model.add_binary(f"sig[{msg_name}->{t_name}]")
                h.sigma[(msg_name, t_name)] = sigma
                model.add_constr(
                    h.msg_offset[msg_name] + h.msg_deadline[msg_name]
                    <= app.period * sigma + h.task_offset[t_name],
                    name=f"C1.1[{msg_name}->{t_name}]",
                )

    # ---- (C1.2) chain deadlines + latency variables: eqs. (23), (47)-(49)
    for app in mode.applications:
        latency = model.add_continuous(f"delta[{app.name}]", 0.0, app.period)
        h.app_latency[app.name] = latency
        for idx, chain in enumerate(app.chains()):
            first, last = chain.first_task, chain.last_task
            wraps = quicksum(
                h.sigma[(chain.elements[i], chain.elements[i + 1])] * app.period
                for i in range(len(chain.elements) - 1)
            )
            chain_latency = (
                h.task_offset[last]
                + app.tasks[last].wcet
                - h.task_offset[first]
                + wraps
            )
            model.add_constr(
                chain_latency <= app.deadline, name=f"C1.2[{app.name}#{idx}]"
            )
            model.add_constr(
                chain_latency <= latency, name=f"lat[{app.name}#{idx}]"
            )

    # ---- (C2) round ordering and spacing: eqs. (24)-(25) ---------------
    for j in range(num_rounds - 1):
        model.add_constr(
            h.round_start[j] + t_r <= h.round_start[j + 1], name=f"C2.1[{j}]"
        )
        if config.max_round_gap is not None:
            model.add_constr(
                h.round_start[j + 1] - h.round_start[j] <= config.max_round_gap,
                name=f"C2.2[{j}]",
            )

    # ---- (C3) node-exclusive task execution: eqs. (28)-(29) ------------
    tasks_by_node: Dict[str, List[Tuple[str, Application]]] = {}
    for name, app in task_owner.items():
        tasks_by_node.setdefault(app.tasks[name].node, []).append((name, app))
    for node, entries in tasks_by_node.items():
        for a_pos in range(len(entries)):
            for b_pos in range(a_pos + 1, len(entries)):
                name_i, app_i = entries[a_pos]
                name_j, app_j = entries[b_pos]
                task_i, task_j = app_i.tasks[name_i], app_j.tasks[name_j]
                n_i = round(lcm / app_i.period)
                n_j = round(lcm / app_j.period)
                for k_i in range(n_i):
                    for k_j in range(n_j):
                        lam = model.add_binary(
                            f"lam[{name_i}#{k_i},{name_j}#{k_j}]"
                        )
                        start_i = h.task_offset[name_i] + app_i.period * k_i
                        start_j = h.task_offset[name_j] + app_j.period * k_j
                        model.add_constr(
                            start_i + task_i.wcet
                            <= start_j + big_m * (1 - lam),
                            name=f"C3a[{name_i}#{k_i},{name_j}#{k_j}]",
                        )
                        model.add_constr(
                            start_j + task_j.wcet <= start_i + big_m * lam,
                            name=f"C3b[{name_i}#{k_i},{name_j}#{k_j}]",
                        )

    # ---- (C4) message-to-round allocation ------------------------------
    for name, app in msg_owner.items():
        period = app.period
        n_inst = round(lcm / period)
        offset = h.msg_offset[name]
        deadline = h.msg_deadline[name]
        r0 = h.leftover[name]

        # Leftover feasibility: r0 = 1 is only possible when the last
        # instance's deadline crosses the hyperperiod boundary
        # (o + d > p).  The reverse is NOT forced: even with o + d > p
        # the allocation may serve the late instance within the same
        # hyperperiod and have r0 = 0 (paper Fig. 4: "allocation of mi
        # to r5 instead of r1 would be valid and result in r0.Bi = 0").
        model.add_constr(
            offset + deadline - period >= mm - big_m * (1 - r0),
            name=f"r0[{name}]",
        )

        for j in range(num_rounds):
            rt = h.round_start[j]
            ka = h.k_arrival[(name, j)]
            kd = h.k_demand[(name, j)]
            # (C4.1) window pinning ka = af(r_j.t): eq. (42).
            model.add_constr(
                rt - offset - (ka - 1) * period >= 0, name=f"C4.1a[{name},{j}]"
            )
            model.add_constr(
                rt - offset - (ka - 1) * period <= period - mm,
                name=f"C4.1b[{name},{j}]",
            )
            # (C4.2) window pinning kd = df(r_j.t + Tr): eq. (44).
            model.add_constr(
                rt + t_r - offset - deadline - (kd - 1) * period >= mm,
                name=f"C4.2a[{name},{j}]",
            )
            model.add_constr(
                rt + t_r - offset - deadline - (kd - 1) * period <= period,
                name=f"C4.2b[{name},{j}]",
            )
            # Service vs arrival (eq. 11): instances served by the end of
            # round j were released before round j starts.
            served_through_j = quicksum(
                h.alloc[(k, name)] for k in range(j + 1)
            )
            model.add_constr(
                served_through_j - r0 <= ka, name=f"C1serv[{name},{j}]"
            )
            # Service vs demand (eq. 12): demand due by the end of round j
            # must be covered by rounds completed before it.
            served_before_j = quicksum(h.alloc[(k, name)] for k in range(j))
            model.add_constr(
                served_before_j - r0 >= kd, name=f"C2serv[{name},{j}]"
            )

        # (C4.4) all instances served once per hyperperiod: eq. (46).
        model.add_constr(
            quicksum(h.alloc[(j, name)] for j in range(num_rounds)) == n_inst,
            name=f"C4.4[{name}]",
        )

    # ---- (C4.3) round capacity -----------------------------------------
    for j in range(num_rounds):
        model.add_constr(
            quicksum(h.alloc[(j, name)] for name in msg_owner)
            <= config.slots_per_round,
            name=f"C4.3[{j}]",
        )

    # ---- objective: eq. (49) ---------------------------------------------
    if config.minimize_latency and h.app_latency:
        model.set_objective(
            quicksum(h.app_latency.values()), ObjectiveSense.MINIMIZE
        )
    return h
