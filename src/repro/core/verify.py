"""Independent schedule verifier — the repository's test oracle.

:func:`verify_schedule` re-checks a concrete :class:`ModeSchedule`
against every requirement of the paper *without* reusing the ILP
machinery: precedences are plain arithmetic, node exclusivity is an
interval sweep over the unrolled hyperperiod, and message service uses
the direct network-calculus formulas from :mod:`repro.core.netcalc`.

A correct synthesis must always produce an empty violation list; the
test suite and the runtime simulator both rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .app_model import Application
from .latency import chain_latency
from .modes import Mode
from .netcalc import check_message_service, leftover_instances
from .schedule import ModeSchedule

#: Tolerance for float comparisons throughout verification.  Every
#: verified quantity (offsets, round starts) is solver output, so the
#: tolerance must sit comfortably above the MILP solvers' feasibility
#: tolerance (HiGHS defaults to 1e-6): a solver may legitimately
#: return schedules violating a constraint by up to its own tolerance,
#: and the verifier must not reject that numerical slack as a real
#: overlap.  The flip side — a genuine sub-1e-5 violation also passes
#: — is physically irrelevant at the model's millisecond scale (1e-5
#: ms = 10 ns, far below radio constants) and indistinguishable from
#: solver slack in principle.
EPS = 1e-5


@dataclass
class VerificationReport:
    """Outcome of verifying one schedule."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"VerificationReport({status})"


def verify_schedule(mode: Mode, schedule: ModeSchedule) -> VerificationReport:
    """Check ``schedule`` against the full constraint set of the paper.

    Checks, in order: variable bounds, precedence constraints (C1.1),
    chain deadlines (C1.2), round ordering and spacing (C2.x), node
    exclusivity (C3), round capacity (C4.3), and message service
    validity (C1/C2/C4.4 via network calculus), plus leftover-indicator
    consistency.

    Returns:
        A :class:`VerificationReport`; ``report.ok`` is True iff the
        schedule satisfies everything.
    """
    report = VerificationReport()
    config = schedule.config
    lcm = schedule.hyperperiod
    t_r = config.round_length

    _check_bounds(mode, schedule, report)
    _check_precedence(mode, schedule, report)
    _check_chains(mode, schedule, report)
    _check_rounds(schedule, report, lcm, t_r)
    _check_node_exclusivity(mode, schedule, report, lcm)
    _check_message_service(mode, schedule, report, lcm, t_r)
    return report


# ---------------------------------------------------------------------------


def _check_bounds(mode: Mode, schedule: ModeSchedule, report: VerificationReport):
    for app in mode.applications:
        for name, task in app.tasks.items():
            if name not in schedule.task_offsets:
                report.add(f"missing offset for task {name!r}")
                continue
            o = schedule.task_offsets[name]
            if o < -EPS or o + task.wcet > app.period + EPS:
                report.add(
                    f"task {name!r}: offset {o:g} + wcet {task.wcet:g} outside "
                    f"[0, period={app.period:g}]"
                )
        for name in app.messages:
            if name not in schedule.message_offsets:
                report.add(f"missing offset for message {name!r}")
                continue
            mo = schedule.message_offsets[name]
            md = schedule.message_deadlines.get(name)
            if md is None:
                report.add(f"missing deadline for message {name!r}")
                continue
            if mo < -EPS or mo > app.period + EPS:
                report.add(f"message {name!r}: offset {mo:g} outside [0, p]")
            if md < -EPS or md > app.period + EPS:
                report.add(f"message {name!r}: deadline {md:g} outside [0, p]")


def _check_precedence(mode: Mode, schedule: ModeSchedule, report: VerificationReport):
    """(C1.1) with the solver's sigma wrap choices."""
    for app in mode.applications:
        for msg_name, producers in app.msg_producers.items():
            if msg_name not in schedule.message_offsets:
                continue
            mo = schedule.message_offsets[msg_name]
            for t_name in producers:
                if t_name not in schedule.task_offsets:
                    continue
                sigma = schedule.sigma.get((t_name, msg_name), 0)
                task = app.tasks[t_name]
                lhs = schedule.task_offsets[t_name] + task.wcet
                rhs = app.period * sigma + mo
                if lhs > rhs + EPS:
                    report.add(
                        f"(C1.1) {t_name!r} ends at {lhs:g} after message "
                        f"{msg_name!r} release {rhs:g} (sigma={sigma})"
                    )
        for t_name, preds in app.task_preds.items():
            if t_name not in schedule.task_offsets:
                continue
            for msg_name in preds:
                if msg_name not in schedule.message_offsets:
                    continue
                sigma = schedule.sigma.get((msg_name, t_name), 0)
                lhs = (
                    schedule.message_offsets[msg_name]
                    + schedule.message_deadlines[msg_name]
                )
                rhs = app.period * sigma + schedule.task_offsets[t_name]
                if lhs > rhs + EPS:
                    report.add(
                        f"(C1.1) message {msg_name!r} deadline {lhs:g} after "
                        f"task {t_name!r} start {rhs:g} (sigma={sigma})"
                    )


def _check_chains(mode: Mode, schedule: ModeSchedule, report: VerificationReport):
    """(C1.2) end-to-end deadlines, recomputed from offsets."""
    for app in mode.applications:
        for chain in app.chains():
            try:
                latency = chain_latency(
                    app, chain, schedule.task_offsets, schedule.sigma
                )
            except KeyError as missing:
                report.add(f"chain {chain.elements}: missing value {missing}")
                continue
            if latency > app.deadline + EPS:
                report.add(
                    f"(C1.2) chain {'->'.join(chain.elements)}: latency "
                    f"{latency:g} exceeds deadline {app.deadline:g}"
                )
            if latency < -EPS:
                report.add(
                    f"chain {'->'.join(chain.elements)}: negative latency "
                    f"{latency:g}"
                )


def _check_rounds(
    schedule: ModeSchedule, report: VerificationReport, lcm: float, t_r: float
):
    """(C2.1)/(C2.2) plus hyperperiod containment and capacity (C4.3)."""
    config = schedule.config
    rounds = schedule.rounds
    for j, rnd in enumerate(rounds):
        if rnd.start < -EPS or rnd.start + t_r > lcm + EPS:
            report.add(
                f"round {j} at {rnd.start:g} does not fit in the hyperperiod"
            )
        if rnd.num_allocated > config.slots_per_round:
            report.add(
                f"(C4.3) round {j} allocates {rnd.num_allocated} messages "
                f"> B={config.slots_per_round}"
            )
        if len(set(rnd.messages)) != len(rnd.messages):
            report.add(f"round {j} allocates the same message twice")
    for j in range(len(rounds) - 1):
        gap = rounds[j + 1].start - rounds[j].start
        if gap < t_r - EPS:
            report.add(
                f"(C2.1) rounds {j} and {j + 1} overlap (gap {gap:g} < Tr)"
            )
        if config.max_round_gap is not None and gap > config.max_round_gap + EPS:
            report.add(
                f"(C2.2) gap between rounds {j} and {j + 1} is {gap:g} "
                f"> Tmax={config.max_round_gap:g}"
            )


def _check_node_exclusivity(
    mode: Mode, schedule: ModeSchedule, report: VerificationReport, lcm: float
):
    """(C3) interval sweep over all task instances in one hyperperiod."""
    by_node = {}
    for app in mode.applications:
        for name, task in app.tasks.items():
            if name not in schedule.task_offsets:
                continue
            offset = schedule.task_offsets[name]
            count = round(lcm / app.period)
            for k in range(count):
                start = offset + k * app.period
                by_node.setdefault(task.node, []).append(
                    (start, start + task.wcet, name)
                )
    for node, intervals in by_node.items():
        intervals.sort()
        for (s1, e1, n1), (s2, e2, n2) in zip(intervals, intervals[1:]):
            if s2 < e1 - EPS:
                report.add(
                    f"(C3) node {node!r}: {n1!r} [{s1:g},{e1:g}) overlaps "
                    f"{n2!r} [{s2:g},{e2:g})"
                )


def _check_message_service(
    mode: Mode,
    schedule: ModeSchedule,
    report: VerificationReport,
    lcm: float,
    t_r: float,
):
    """(C1)/(C2)/(C4.4) per message via the network-calculus formulas."""
    for app in mode.applications:
        for name in app.messages:
            if name not in schedule.message_offsets:
                continue
            offset = schedule.message_offsets[name]
            deadline = schedule.message_deadlines[name]
            claimed = schedule.leftover.get(name, 0)
            # r0 = 1 is only possible when o + d > p (the last
            # instance's deadline crosses the hyperperiod boundary);
            # r0 = 0 is always admissible and judged by the service
            # checks below (paper Fig. 4: serving the late instance
            # within the same hyperperiod gives r0.Bi = 0).
            if claimed not in (0, 1):
                report.add(
                    f"message {name!r}: leftover {claimed} not in {{0, 1}}"
                )
            elif claimed == 1 and leftover_instances(
                offset, deadline, app.period
            ) == 0:
                report.add(f"message {name!r}: leftover claimed but o+d <= p")
            problems = check_message_service(
                offset=offset,
                deadline=deadline,
                period=app.period,
                hyperperiod=lcm,
                allocated_round_starts=schedule.rounds_for_message(name),
                round_length=t_r,
                leftover=claimed,
            )
            for problem in problems:
                report.add(f"message {name!r}: {problem}")
