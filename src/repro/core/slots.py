"""Slot-level ordering inside rounds (the paper's ``r.[B]`` vector).

The ILP allocates *which* messages go into each round; slot order
within a round is timing-neutral for the schedule (the round is atomic,
C2.1) but must be fixed and distributed so nodes know when exactly to
transmit.  This module assigns concrete slot indices with a
deadline-monotonic policy — messages closer to their deadline fly
first — and computes the per-node early-sleep saving the paper notes
("this enables to save energy if less than B slots are allocated").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .modes import Mode
from .schedule import ModeSchedule


@dataclass(frozen=True)
class SlotPlan:
    """Explicit slot assignment of one round.

    Attributes:
        round_index: Index of the round within the schedule.
        start: Round start time.
        slots: ``(slot index, message)`` pairs, contiguous from 0.
        free_slots: ``B - len(slots)`` — slots the round does not use;
            nodes sleep through them.
    """

    round_index: int
    start: float
    slots: Tuple[Tuple[int, str], ...]
    free_slots: int


def assign_slots(mode: Mode, schedule: ModeSchedule) -> List[SlotPlan]:
    """Assign concrete slot indices within each round.

    Messages are ordered deadline-monotonically (earliest absolute
    deadline first), breaking ties by name for determinism.  Returns
    one :class:`SlotPlan` per round.
    """
    deadlines: Dict[str, float] = {}
    for app in mode.applications:
        for name in app.messages:
            offset = schedule.message_offsets.get(name, 0.0)
            rel_deadline = schedule.message_deadlines.get(name, app.period)
            deadlines[name] = offset + rel_deadline

    plans: List[SlotPlan] = []
    capacity = schedule.config.slots_per_round
    for index, rnd in enumerate(schedule.rounds):
        ordered = sorted(
            rnd.messages, key=lambda m: (deadlines.get(m, float("inf")), m)
        )
        slots = tuple((i, message) for i, message in enumerate(ordered))
        plans.append(
            SlotPlan(
                round_index=index,
                start=rnd.start,
                slots=slots,
                free_slots=capacity - len(slots),
            )
        )
    return plans


def early_sleep_saving(
    plans: List[SlotPlan],
    slot_on_time_s: float,
    capacity: int,
) -> float:
    """Radio-on seconds saved per hyperperiod by skipping free slots.

    In a fixed-length round design, nodes would keep the radio on for
    all ``B`` data slots; TTW's deployment tables include the number of
    allocated slots per round, so nodes power down after the last used
    slot (paper Sec. II-B, footnote 3).
    """
    if slot_on_time_s < 0:
        raise ValueError("slot_on_time_s must be >= 0")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    total_free = sum(plan.free_slots for plan in plans)
    return total_free * slot_on_time_s


def slot_tables_per_node(
    mode: Mode, plans: List[SlotPlan]
) -> Dict[str, List[Tuple[int, int, str]]]:
    """Per-node TX tables: ``(round index, slot index, message)``.

    The deployment-time payload each node stores (paper Sec. II-B):
    pairs (slot id, message id) per round.
    """
    senders: Dict[str, str] = {}
    for app in mode.applications:
        for name in app.messages:
            senders[name] = app.sender_node(name)
    tables: Dict[str, List[Tuple[int, int, str]]] = {}
    for plan in plans:
        for slot_index, message in plan.slots:
            node = senders[message]
            tables.setdefault(node, []).append(
                (plan.round_index, slot_index, message)
            )
    return tables
