"""Application model: tasks, messages, and precedence graphs (paper Sec. III).

A distributed application is a directed acyclic graph whose vertices are
tasks and whose edges are messages.  Internally we use the equivalent
*bipartite* DAG over tasks and messages — a multicast message (one
message labeling several edges of the paper's graph) is then simply a
message vertex with several successor tasks.

All attributes follow the paper's notation:

===========  ======================================================
``a.p``      application period (given)
``a.d``      application end-to-end deadline (given), ``d <= p``
``a.G``      precedence graph (given)
``tau.map``  node a task executes on (given)
``tau.e``    worst-case execution time (given)
``tau.o``    task offset (computed by the scheduler)
``m.o``      message offset (computed)
``m.d``      message deadline, relative to ``m.o`` (computed)
===========  ======================================================

Times are plain floats in a single unit (milliseconds by convention;
see ``DESIGN.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class ModelError(ValueError):
    """Raised when an application model violates the paper's assumptions."""


@dataclass
class Task:
    """A task :math:`\\tau` mapped to a node.

    Attributes:
        name: Unique identifier within the application.
        node: The node the task is mapped to (``tau.map``).
        wcet: Worst-case execution time (``tau.e``), > 0.
        period: Set by the owning application (``tau.p = a.p``).
        offset: Start time relative to the application release
            (``tau.o``); filled in by the scheduler.
    """

    name: str
    node: str
    wcet: float
    period: float = 0.0
    offset: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise ModelError(f"task {self.name!r}: WCET must be > 0, got {self.wcet}")


@dataclass
class Message:
    """A message :math:`m` exchanged between tasks.

    Attributes:
        name: Unique identifier within the application.
        period: Set by the owning application (``m.p = a.p``).
        offset: Earliest release relative to the application release
            (``m.o``); computed by the scheduler.
        deadline: Latest completion relative to ``offset`` (``m.d``);
            computed by the scheduler.
    """

    name: str
    period: float = 0.0
    offset: Optional[float] = None
    deadline: Optional[float] = None


@dataclass(frozen=True)
class Chain:
    """A source-to-sink path of the precedence graph.

    Elements alternate task, message, task, ..., task.  The paper
    writes chains as ``a.c``; end-to-end deadlines and latencies are
    defined per chain (eqs. 23, 47).
    """

    elements: Tuple[str, ...]

    @property
    def first_task(self) -> str:
        return self.elements[0]

    @property
    def last_task(self) -> str:
        return self.elements[-1]

    @property
    def tasks(self) -> Tuple[str, ...]:
        return self.elements[0::2]

    @property
    def messages(self) -> Tuple[str, ...]:
        return self.elements[1::2]

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)


class Application:
    """A distributed application ``a = {a.p, a.d, a.G}``.

    Build one by adding tasks and messages, then connecting them:

        >>> app = Application("ctrl", period=100, deadline=80)
        >>> _ = app.add_task("sense", node="n1", wcet=2)
        >>> _ = app.add_task("act", node="n2", wcet=2)
        >>> _ = app.add_message("m1")
        >>> app.connect("sense", "m1")
        >>> app.connect("m1", "act")
        >>> [c.elements for c in app.chains()]
        [('sense', 'm1', 'act')]
    """

    def __init__(self, name: str, period: float, deadline: float) -> None:
        if period <= 0:
            raise ModelError(f"application {name!r}: period must be > 0")
        if deadline <= 0 or deadline > period:
            raise ModelError(
                f"application {name!r}: deadline must satisfy 0 < d <= p "
                f"(got d={deadline}, p={period})"
            )
        self.name = name
        self.period = float(period)
        self.deadline = float(deadline)
        self.tasks: Dict[str, Task] = {}
        self.messages: Dict[str, Message] = {}
        #: message -> ordered set of producer task names (``m.prec``)
        self.msg_producers: Dict[str, List[str]] = {}
        #: task -> ordered set of preceding message names (``tau.prec``)
        self.task_preds: Dict[str, List[str]] = {}
        #: message -> ordered set of consumer task names
        self.msg_consumers: Dict[str, List[str]] = {}

    # -- construction ---------------------------------------------------
    def add_task(self, name: str, node: str, wcet: float) -> Task:
        """Add a task mapped to ``node`` with the given WCET."""
        if name in self.tasks or name in self.messages:
            raise ModelError(f"duplicate element name {name!r} in {self.name!r}")
        task = Task(name, node=node, wcet=float(wcet), period=self.period)
        self.tasks[name] = task
        self.task_preds[name] = []
        return task

    def add_message(self, name: str) -> Message:
        """Add a message (its producers/consumers come from ``connect``)."""
        if name in self.tasks or name in self.messages:
            raise ModelError(f"duplicate element name {name!r} in {self.name!r}")
        message = Message(name, period=self.period)
        self.messages[name] = message
        self.msg_producers[name] = []
        self.msg_consumers[name] = []
        return message

    def connect(self, source: str, target: str) -> None:
        """Add a precedence edge: task→message (produce) or message→task
        (consume).

        Raises:
            ModelError: if the edge does not connect a task with a
                message, references unknown elements, or is duplicated.
        """
        if source in self.tasks and target in self.messages:
            producers = self.msg_producers[target]
            if source in producers:
                raise ModelError(f"duplicate edge {source!r} -> {target!r}")
            producers.append(source)
        elif source in self.messages and target in self.tasks:
            if source in self.task_preds[target]:
                raise ModelError(f"duplicate edge {source!r} -> {target!r}")
            self.task_preds[target].append(source)
            self.msg_consumers[source].append(target)
        else:
            raise ModelError(
                f"edge {source!r} -> {target!r} must connect a task and a "
                f"message of application {self.name!r}"
            )

    # -- structure queries -----------------------------------------------
    def successors(self, element: str) -> List[str]:
        """Direct successors of a task or message in the bipartite DAG."""
        if element in self.tasks:
            return [
                m for m, producers in self.msg_producers.items() if element in producers
            ]
        if element in self.messages:
            return list(self.msg_consumers[element])
        raise ModelError(f"unknown element {element!r}")

    def predecessors(self, element: str) -> List[str]:
        """Direct predecessors of a task or message."""
        if element in self.tasks:
            return list(self.task_preds[element])
        if element in self.messages:
            return list(self.msg_producers[element])
        raise ModelError(f"unknown element {element!r}")

    def source_tasks(self) -> List[str]:
        """Tasks without preceding messages (chain starting points)."""
        return [t for t in self.tasks if not self.task_preds[t]]

    def sink_tasks(self) -> List[str]:
        """Tasks whose outputs feed no message (chain end points)."""
        producing = {t for prods in self.msg_producers.values() for t in prods}
        return [t for t in self.tasks if t not in producing]

    def chains(self) -> List[Chain]:
        """Enumerate all source-to-sink chains (paper's ``a.c``)."""
        self.validate()
        chains: List[Chain] = []

        def walk(element: str, path: List[str]) -> None:
            path.append(element)
            succs = self.successors(element)
            if not succs and element in self.tasks:
                chains.append(Chain(tuple(path)))
            for nxt in succs:
                walk(nxt, path)
            path.pop()

        for source in self.source_tasks():
            walk(source, [])
        return chains

    # -- validation --------------------------------------------------------
    def validate(self) -> None:
        """Check the paper's structural assumptions.

        * every message has at least one producer and one consumer;
        * all producers of a message are mapped to the same node;
        * the precedence graph is acyclic;
        * there is at least one task.

        Raises:
            ModelError: on the first violation found.
        """
        if not self.tasks:
            raise ModelError(f"application {self.name!r} has no tasks")
        for m, producers in self.msg_producers.items():
            if not producers:
                raise ModelError(f"message {m!r} has no preceding task")
            if not self.msg_consumers[m]:
                raise ModelError(f"message {m!r} has no consumer task")
            nodes = {self.tasks[t].node for t in producers}
            if len(nodes) > 1:
                raise ModelError(
                    f"message {m!r}: all preceding tasks must be mapped to the "
                    f"same node, got {sorted(nodes)}"
                )
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        """Kahn's algorithm over the bipartite DAG."""
        indeg: Dict[str, int] = {}
        for t in self.tasks:
            indeg[t] = len(self.task_preds[t])
        for m in self.messages:
            indeg[m] = len(self.msg_producers[m])
        queue = [e for e, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            element = queue.pop()
            seen += 1
            for nxt in self.successors(element):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if seen != len(indeg):
            raise ModelError(f"application {self.name!r}: precedence graph has a cycle")

    # -- convenience -------------------------------------------------------
    def sender_node(self, message: str) -> str:
        """Node that transmits ``message`` (all producers share it)."""
        producers = self.msg_producers[message]
        if not producers:
            raise ModelError(f"message {message!r} has no preceding task")
        return self.tasks[producers[0]].node

    def nodes(self) -> List[str]:
        """Sorted list of nodes hosting at least one task."""
        return sorted({t.node for t in self.tasks.values()})

    def __repr__(self) -> str:
        return (
            f"Application({self.name!r}, p={self.period}, d={self.deadline}, "
            f"tasks={len(self.tasks)}, messages={len(self.messages)})"
        )


def linear_pipeline(
    name: str,
    period: float,
    deadline: float,
    stages: Sequence[Tuple[str, float]],
) -> Application:
    """Build a linear sense→…→actuate pipeline application.

    Args:
        name: Application name.
        period: Application period.
        deadline: End-to-end deadline.
        stages: Sequence of ``(node, wcet)`` pairs, one per task; a
            message is inserted between each consecutive pair.

    Returns:
        An application with tasks ``{name}_t0 .. tN`` and messages
        ``{name}_m0 .. m(N-1)`` forming a single chain.
    """
    if len(stages) < 1:
        raise ModelError("pipeline needs at least one stage")
    app = Application(name, period=period, deadline=deadline)
    for i, (node, wcet) in enumerate(stages):
        app.add_task(f"{name}_t{i}", node=node, wcet=wcet)
    for i in range(len(stages) - 1):
        msg = app.add_message(f"{name}_m{i}")
        app.connect(f"{name}_t{i}", msg.name)
        app.connect(msg.name, f"{name}_t{i + 1}")
    return app
