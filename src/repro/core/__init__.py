"""TTW core: application model, co-scheduling ILP, synthesis, verification.

This package implements the paper's primary contribution — the joint
co-scheduling of distributed tasks, messages, and communication rounds
(Secs. III–IV and the appendix ILP), plus the latency analysis of
Sec. V.
"""

from .app_model import Application, Chain, Message, ModelError, Task, linear_pipeline
from .latency import (
    application_latency,
    chain_latency,
    drp_latency_bound,
    latency_lower_bound,
    schedule_latencies,
    ttw_vs_drp_speedup,
)
from .modes import Mode, ModeGraph, lcm_times
from .netcalc import arrival_count, demand_count, leftover_instances
from .slots import SlotPlan, assign_slots, early_sleep_saving, slot_tables_per_node
from .sensitivity import SensitivityReport, analyze_sensitivity
from .schedule import (
    IterationStats,
    ModeSchedule,
    RoundSchedule,
    SchedulingConfig,
    SynthesisStats,
)
from .synthesis import (
    InfeasibleError,
    demand_round_bound,
    extract_schedule,
    max_rounds,
    solve_fixed_rounds,
    synthesize,
)
from .verify import VerificationReport, verify_schedule

__all__ = [
    "Application",
    "Chain",
    "InfeasibleError",
    "IterationStats",
    "Message",
    "Mode",
    "ModeGraph",
    "ModeSchedule",
    "ModelError",
    "RoundSchedule",
    "SlotPlan",
    "SchedulingConfig",
    "SensitivityReport",
    "SynthesisStats",
    "Task",
    "VerificationReport",
    "analyze_sensitivity",
    "application_latency",
    "arrival_count",
    "assign_slots",
    "chain_latency",
    "demand_count",
    "demand_round_bound",
    "drp_latency_bound",
    "early_sleep_saving",
    "extract_schedule",
    "latency_lower_bound",
    "lcm_times",
    "leftover_instances",
    "linear_pipeline",
    "max_rounds",
    "schedule_latencies",
    "slot_tables_per_node",
    "solve_fixed_rounds",
    "synthesize",
    "ttw_vs_drp_speedup",
    "verify_schedule",
]
