"""Schedule slack and sensitivity analysis.

Given a verified schedule, this module answers the deployment question
"how much margin is left?":

* per-task **WCET slack** — how much a task's execution time can grow
  before any constraint (precedence, chain deadline, node exclusivity)
  breaks, keeping all offsets fixed;
* per-chain **deadline slack** — distance between achieved latency and
  the deadline;
* per-message **service slack** — earliest-completion margin between
  the serving round's end and the message's absolute deadline.

All analyses are exact recomputations on the fixed schedule (no ILP),
so they run in microseconds and can gate deployment updates: a WCET
re-measurement within the reported slack provably needs no re-synthesis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .app_model import Application
from .latency import chain_latency
from .modes import Mode
from .schedule import ModeSchedule

#: Numeric guard when converting slacks to "safe growth" margins.
EPS = 1e-9


@dataclass
class SensitivityReport:
    """Slack summary of one schedule.

    Attributes:
        task_wcet_slack: Per task: largest WCET increase (time units)
            that provably keeps the schedule valid with fixed offsets.
        chain_slack: Per chain (identified by its element tuple):
            ``deadline - latency``.
        message_slack: Per message: min over served instances of
            ``absolute deadline - serving round end``.
        bottleneck_task: Task with the smallest WCET slack.
        bottleneck_chain: Chain with the smallest deadline slack.
    """

    task_wcet_slack: Dict[str, float] = field(default_factory=dict)
    chain_slack: Dict[Tuple[str, ...], float] = field(default_factory=dict)
    message_slack: Dict[str, float] = field(default_factory=dict)

    @property
    def bottleneck_task(self) -> str:
        return min(self.task_wcet_slack, key=self.task_wcet_slack.get)

    @property
    def bottleneck_chain(self) -> Tuple[str, ...]:
        return min(self.chain_slack, key=self.chain_slack.get)

    @property
    def min_task_slack(self) -> float:
        return min(self.task_wcet_slack.values(), default=math.inf)


def analyze_sensitivity(mode: Mode, schedule: ModeSchedule) -> SensitivityReport:
    """Compute all slack figures for a (valid) schedule."""
    report = SensitivityReport()
    report.chain_slack = _chain_slacks(mode, schedule)
    report.message_slack = _message_slacks(mode, schedule)
    report.task_wcet_slack = _task_wcet_slacks(mode, schedule, report)
    return report


# ---------------------------------------------------------------------------


def _chain_slacks(
    mode: Mode, schedule: ModeSchedule
) -> Dict[Tuple[str, ...], float]:
    slacks: Dict[Tuple[str, ...], float] = {}
    for app in mode.applications:
        for chain in app.chains():
            latency = chain_latency(
                app, chain, schedule.task_offsets, schedule.sigma
            )
            slacks[chain.elements] = app.deadline - latency
    return slacks


def _message_slacks(mode: Mode, schedule: ModeSchedule) -> Dict[str, float]:
    """Min margin between serving-round completion and deadline."""
    t_r = schedule.config.round_length
    slacks: Dict[str, float] = {}
    for app in mode.applications:
        n_by_msg = {m: round(schedule.hyperperiod / app.period) for m in app.messages}
        for name in app.messages:
            offset = schedule.message_offsets.get(name)
            deadline = schedule.message_deadlines.get(name)
            if offset is None or deadline is None:
                continue
            starts = sorted(schedule.rounds_for_message(name))
            if not starts:
                continue
            leftover = schedule.leftover.get(name, 0)
            margin = math.inf
            for position, start in enumerate(starts):
                instance = position - leftover
                abs_deadline = instance * app.period + offset + deadline
                if instance < 0:
                    # The wrapped instance's deadline lies at
                    # offset + deadline - period (mapped into this HP).
                    abs_deadline = offset + deadline - app.period
                margin = min(margin, abs_deadline - (start + t_r))
            slacks[name] = margin
    return slacks


def _task_wcet_slacks(
    mode: Mode, schedule: ModeSchedule, report: SensitivityReport
) -> Dict[str, float]:
    """Largest safe WCET growth per task, with offsets held fixed.

    With fixed offsets, growing ``tau.e`` by ``delta`` affects:

    * the task's own period containment: ``o + e + delta <= p``;
    * successor precedence (task -> message): the message offset must
      still come after completion: ``o + e + delta <= sigma*p + m.o``;
    * chains through the task: each chain's latency grows by ``delta``
      iff the task is the *last* task (intermediate tasks' contribution
      is absorbed by fixed successor offsets — precedence is the
      binding constraint instead), so the chain slack applies to the
      last task directly;
    * node exclusivity: the gap to the next task instance on the node.
    """
    lcm = schedule.hyperperiod
    slacks: Dict[str, float] = {}

    # Precompute per-node instance timelines for exclusivity gaps.
    node_instances: Dict[str, List[Tuple[float, float, str]]] = {}
    for app in mode.applications:
        for name, task in app.tasks.items():
            offset = schedule.task_offsets.get(name)
            if offset is None:
                continue
            count = round(lcm / app.period)
            for k in range(count):
                start = offset + k * app.period
                node_instances.setdefault(task.node, []).append(
                    (start, start + task.wcet, name)
                )
    for intervals in node_instances.values():
        intervals.sort()

    for app in mode.applications:
        chains = app.chains()
        for name, task in app.tasks.items():
            offset = schedule.task_offsets.get(name)
            if offset is None:
                continue
            margin = app.period - (offset + task.wcet)  # own-period containment

            # Precedence to successor messages.
            for msg in app.successors(name):
                sigma = schedule.sigma.get((name, msg), 0)
                m_offset = schedule.message_offsets.get(msg)
                if m_offset is None:
                    continue
                margin = min(
                    margin,
                    sigma * app.period + m_offset - (offset + task.wcet),
                )

            # Chain deadlines where this task is terminal.
            for chain in chains:
                if chain.last_task == name:
                    margin = min(margin, report.chain_slack[chain.elements])

            # Node exclusivity: gap to the next instance on the node.
            intervals = node_instances[task.node]
            for idx, (start, end, owner) in enumerate(intervals):
                if owner != name:
                    continue
                if idx + 1 < len(intervals):
                    margin = min(margin, intervals[idx + 1][0] - end)
                else:
                    # Wrap to the first instance of the next hyperperiod.
                    margin = min(
                        margin, (intervals[0][0] + lcm) - end
                    )
            slacks[name] = max(0.0, margin - EPS if margin < math.inf else margin)
    return slacks
