"""Shared helpers for boundary-style validation errors.

The JSON boundaries (``build_loss``, ``build_topology``) construct
objects from ``kind + params`` dicts; when the constructor rejects the
keywords, the error shown to a scenario author must distinguish
*unknown parameter names* (typos) from *invalid parameter values*
(wrong types), and always list what is accepted.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable


def params_error(
    label: str,
    constructor: Callable,
    params: dict,
    cause: BaseException,
    skip: Iterable[str] = ("self", "topology"),
) -> ValueError:
    """A clear :class:`ValueError` for a failed ``constructor(**params)``.

    Args:
        label: Boundary description, e.g. ``"loss kind 'bernoulli'"``.
        constructor: The callable whose signature defines the known
            parameter names.
        params: The keyword arguments that were passed.
        cause: The ``TypeError`` the call raised.
        skip: Signature parameters that are not user-facing.

    Returns:
        ``"<label>: unknown parameter(s) ...; known: ..."`` when the
        dict contains names the signature lacks, otherwise
        ``"<label>: invalid parameter value (<cause>)"`` — a TypeError
        raised *inside* the constructor must not be misreported as an
        unknown name.
    """
    known = [
        name
        for name in inspect.signature(constructor).parameters
        if name not in skip
    ]
    unknown = sorted(set(params) - set(known))
    if unknown:
        return ValueError(
            f"{label}: unknown parameter(s) "
            f"{', '.join(map(repr, unknown))}; known: {', '.join(known)}"
        )
    return ValueError(
        f"{label}: invalid parameter value ({cause}); "
        f"known parameters: {', '.join(known)}"
    )
