"""Algorithm 1: round-minimal schedule synthesis (paper Sec. IV).

The scheduler solves a sequence of ILPs with a fixed round count
``R_M = 0, 1, 2, ...`` until one is feasible (or ``Rmax``, the number of
rounds that fit in a hyperperiod, is exceeded).  By construction the
first feasible schedule is optimal in the number of rounds; the ILP
objective then minimizes the summed end-to-end latency among all
round-minimal schedules.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Optional, Tuple
from .ilp_builder import IlpHandles, build_ilp
from .modes import Mode
from .schedule import (
    IterationStats,
    ModeSchedule,
    RoundSchedule,
    SchedulingConfig,
    SynthesisStats,
)


class InfeasibleError(RuntimeError):
    """Raised when no schedule exists up to ``Rmax`` rounds."""

    def __init__(self, mode: Mode, stats: SynthesisStats) -> None:
        super().__init__(
            f"mode {mode.name!r}: no feasible schedule with up to "
            f"{len(stats.iterations) - 1} rounds"
        )
        self.stats = stats


def max_rounds(mode: Mode, config: SchedulingConfig) -> int:
    """``Rmax``: how many rounds fit into one hyperperiod."""
    return int(math.floor(mode.hyperperiod / config.round_length + 1e-9))


def demand_round_bound(mode: Mode, config: SchedulingConfig) -> int:
    """Lower bound on the number of rounds any feasible schedule needs.

    Every message instance occupies one slot per hyperperiod (C4.4) and
    a round offers at most ``B`` slots (C4.3), so at least
    ``ceil(total_instances / B)`` rounds are required.  Starting
    Algorithm 1 here skips provably-infeasible iterations without
    losing round-minimality.
    """
    lcm = mode.hyperperiod
    total = 0
    for app in mode.applications:
        total += len(app.messages) * round(lcm / app.period)
    return math.ceil(total / config.slots_per_round)


def solve_fixed_rounds(
    mode: Mode, config: SchedulingConfig, num_rounds: int
) -> Tuple[IterationStats, IlpHandles, "object"]:
    """One iteration of Algorithm 1: build and solve the ILP for a fixed
    round count ``R_M = num_rounds``.

    This is the unit of work shared by the sequential loop below and by
    the parallel workers in :mod:`repro.engine`, which run several round
    counts speculatively.

    Returns:
        ``(stats, handles, solution)`` — the iteration record, the model
        handles, and the raw solver solution (meaningful only when
        ``stats.feasible``).
    """
    handles = build_ilp(mode, num_rounds, config)
    solve_start = time.monotonic()
    solution = handles.model.solve(
        backend=config.backend, time_limit=config.time_limit
    )
    solve_time = time.monotonic() - solve_start
    # Heuristic backends report FEASIBLE (a valid point without an
    # optimality proof); Algorithm 1 only needs feasibility here.
    feasible = solution.is_feasible
    stats = IterationStats(
        num_rounds=num_rounds,
        feasible=feasible,
        solve_time=solve_time,
        num_vars=handles.model.num_vars,
        num_constraints=handles.model.num_constraints,
        objective=solution.objective if feasible else None,
        nodes=solution.nodes,
    )
    return stats, handles, solution


def synthesize(
    mode: Mode,
    config: Optional[SchedulingConfig] = None,
    min_rounds: int = 0,
    warm_start: bool = False,
    backend: Optional[str] = None,
) -> ModeSchedule:
    """Run Algorithm 1 and return the round-minimal ``Sched(M)``.

    Args:
        mode: The mode to schedule (validated internally).
        config: Scheduling parameters; defaults to
            :class:`SchedulingConfig` defaults.
        min_rounds: Start the search at this round count (useful for
            warm restarts; 0 reproduces the paper exactly).
        warm_start: Additionally start at the demand lower bound
            (:func:`demand_round_bound`) — an optimization over the
            paper's Algorithm 1 that preserves round-minimality while
            skipping provably-infeasible iterations.
        backend: Solver backend name overriding ``config.backend`` (see
            :func:`repro.milp.available_backends`).  With a heuristic
            backend the schedule is feasible and verified but may use
            more rounds than the exact round-minimal one.

    Returns:
        The synthesized :class:`ModeSchedule`, including per-iteration
        solver statistics.

    Raises:
        InfeasibleError: if no round count up to ``Rmax`` is feasible.
    """
    config = config or SchedulingConfig()
    if backend is not None and backend != config.backend:
        config = dataclasses.replace(config, backend=backend)
    mode.validate()
    if warm_start:
        min_rounds = max(min_rounds, demand_round_bound(mode, config))
    stats = SynthesisStats(mode_name=mode.name)
    r_max = max_rounds(mode, config)
    started = time.monotonic()

    for num_rounds in range(min_rounds, r_max + 1):
        iteration, handles, solution = solve_fixed_rounds(mode, config, num_rounds)
        stats.iterations.append(iteration)
        if iteration.feasible:
            stats.total_time = time.monotonic() - started
            return extract_schedule(mode, config, handles, solution, stats)

    stats.total_time = time.monotonic() - started
    raise InfeasibleError(mode, stats)


def extract_schedule(
    mode: Mode,
    config: SchedulingConfig,
    handles: IlpHandles,
    solution,
    stats: SynthesisStats,
) -> ModeSchedule:
    """Read the solver values back into a :class:`ModeSchedule`."""
    sched = ModeSchedule(
        mode_name=mode.name,
        hyperperiod=mode.hyperperiod,
        config=config,
        solve_stats=stats,
    )
    for name, var in handles.task_offset.items():
        sched.task_offsets[name] = solution[var] + 0.0  # normalize -0.0
    for name, var in handles.msg_offset.items():
        sched.message_offsets[name] = solution[var] + 0.0
    for name, var in handles.msg_deadline.items():
        sched.message_deadlines[name] = solution[var] + 0.0
    for edge, var in handles.sigma.items():
        sched.sigma[edge] = int(round(solution[var]))
    for name, var in handles.leftover.items():
        sched.leftover[name] = int(round(solution[var]))

    rounds = []
    for j, rt_var in enumerate(handles.round_start):
        messages = [
            name
            for (k, name), alloc_var in handles.alloc.items()
            if k == j and solution[alloc_var] > 0.5
        ]
        rounds.append(RoundSchedule(start=solution[rt_var], messages=sorted(messages)))
    rounds.sort(key=lambda r: r.start)
    sched.rounds = rounds

    # Recompute latencies analytically (eq. 47/48) instead of trusting
    # the auxiliary latency variables, which are only lower-bounded when
    # the objective is disabled.
    from .latency import schedule_latencies

    sched.app_latencies = schedule_latencies(sched, mode.applications)
    sched.total_latency = sum(sched.app_latencies.values())
    return sched
