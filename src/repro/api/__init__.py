"""``repro.api`` — the declarative public surface of the toolkit.

Everything the other subpackages do — workload modeling, Algorithm 1
synthesis over pluggable solver backends, verification, deployment,
lossy simulation, metrics — is reachable through two concepts:

* :class:`Scenario` — a serializable description of one experiment:
  modes/workloads, mode graph, scheduling config + solver backend, and
  optionally topology, loss model, radio timing, and a simulation
  phase.  Round-trips to JSON (``Scenario.save`` / ``Scenario.load``).
* :class:`Experiment` — fans a list of scenarios through the synthesis
  engine's shared process pool and persistent schedule cache, verifies
  every schedule with the independent oracle, executes the simulation
  phases, and collects a results table.

Quickstart::

    from repro.api import Scenario, SimulationSpec, run_scenario
    from repro.core import Mode, SchedulingConfig
    from repro.workloads import closed_loop_pipeline

    scenario = Scenario(
        name="demo",
        modes=[Mode("normal", [closed_loop_pipeline(
            "a", period=20, deadline=20, num_hops=1)])],
        config=SchedulingConfig(round_length=1.0, max_round_gap=None),
        simulation=SimulationSpec(duration=500.0),
    )
    result = run_scenario(scenario)
    print(result.metrics)

On the command line the same scenario file runs with
``python -m repro.cli scenario run demo.scenario.json``.
"""

from .experiment import (
    Experiment,
    ExperimentResult,
    ScenarioResult,
    run_scenario,
)
from .scenario import (
    LossSpec,
    RadioSpec,
    Scenario,
    ScenarioError,
    SimulationSpec,
    TopologySpec,
    sweep,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "LossSpec",
    "RadioSpec",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "SimulationSpec",
    "TopologySpec",
    "run_scenario",
    "sweep",
]
