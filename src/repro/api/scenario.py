"""Declarative scenario descriptions — the input side of ``repro.api``.

A :class:`Scenario` is a complete, serializable description of one TTW
experiment: the workload (modes and their applications), the mode
graph, the scheduling configuration and solver backend, and optionally
the network (topology, loss model, radio timing) plus a simulation
phase.  It carries **no results** — synthesis and execution live in
:mod:`repro.api.experiment` — so a scenario file is a stable artifact
that can be versioned, diffed, swept over, and replayed.

The network/simulation parts are described by small *spec* dataclasses
(:class:`TopologySpec`, :class:`LossSpec`, :class:`RadioSpec`,
:class:`SimulationSpec`) that name a kind plus JSON-compatible
parameters and know how to build the corresponding runtime object.

Example::

    from repro.api import Scenario, SimulationSpec, LossSpec, run_scenario
    from repro.core import Mode, SchedulingConfig
    from repro.workloads import closed_loop_pipeline

    scenario = Scenario(
        name="smoke",
        modes=[Mode("normal", [closed_loop_pipeline("a", period=20,
                                                    deadline=20,
                                                    num_hops=1)])],
        config=SchedulingConfig(round_length=1.0, max_round_gap=None),
        backend="greedy",
        loss=LossSpec("bernoulli", {"beacon_loss": 0.05,
                                    "data_loss": 0.05, "seed": 7}),
        simulation=SimulationSpec(duration=500.0),
    )
    scenario.save("smoke.scenario.json")
    result = run_scenario(scenario)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.modes import Mode
from ..core.schedule import SchedulingConfig
from ..milp.backends import get_backend
from ..net import topology as topologies
from ..net.topology import Topology
from ..runtime.loss import TOPOLOGY_LOSS_KINDS, LossModel, build_loss
from ..runtime.simulator import NodePolicy, RadioTiming


class ScenarioError(ValueError):
    """Raised for inconsistent or unbuildable scenario descriptions."""


def spec_to_dict(spec) -> Optional[dict]:
    """Serialize any spec dataclass (or ``None``) to a JSON dict."""
    if spec is None:
        return None
    return spec.to_dict()


@dataclass(frozen=True)
class TopologySpec:
    """A named multi-hop network shape plus its parameters.

    ``kind`` selects a builder from :mod:`repro.net.topology`:
    ``line``, ``star``, ``grid``, ``ring``, ``random_geometric``, or
    ``diameter_line``; ``params`` are its keyword arguments.
    """

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def build(self) -> Topology:
        try:
            return topologies.build_topology(self.kind, self.params)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["TopologySpec"]:
        if data is None:
            return None
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


@dataclass(frozen=True)
class LossSpec:
    """A named packet-loss model plus its parameters.

    Kinds (see :func:`repro.runtime.loss.build_loss`): ``perfect``,
    ``bernoulli``, ``gilbert_elliott``, ``scripted_beacon``,
    ``trace_replay``, ``matrix_trace``, ``time_varying``,
    ``interference``, plus ``glossy`` and ``spatial`` (which need the
    scenario to carry a :class:`TopologySpec` — ``spatial``
    specifically one with node positions: ``grid2d`` or
    ``uniform_random``).  ``params["seed"]`` accepts an integer, a
    ``random.Random``, a ``numpy.random.Generator``, or ``None``
    uniformly across all stochastic kinds; only integers and ``None``
    survive JSON round-trips.
    """

    kind: str
    params: Dict[str, object] = field(default_factory=dict)

    def build(self, topology: Optional[Topology] = None) -> LossModel:
        try:
            return build_loss(self.kind, self.params, topology)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["LossSpec"]:
        if data is None:
            return None
        return cls(kind=data["kind"], params=dict(data.get("params", {})))


@dataclass(frozen=True)
class RadioSpec:
    """Radio-on accounting parameters for the simulator.

    ``diameter`` may be omitted when the scenario carries a topology —
    it is then taken from the built network.
    """

    payload_bytes: int
    diameter: Optional[int] = None

    def build(self, topology: Optional[Topology] = None) -> RadioTiming:
        diameter = self.diameter
        if diameter is None:
            if topology is None:
                raise ScenarioError(
                    "RadioSpec without diameter needs a topology in the scenario"
                )
            diameter = topology.diameter
        return RadioTiming(payload_bytes=self.payload_bytes, diameter=diameter)

    def to_dict(self) -> dict:
        return {"payload_bytes": self.payload_bytes, "diameter": self.diameter}

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["RadioSpec"]:
        if data is None:
            return None
        return cls(
            payload_bytes=data["payload_bytes"], diameter=data.get("diameter")
        )


@dataclass(frozen=True)
class SimulationSpec:
    """The optional execution phase of a scenario.

    Attributes:
        duration: Simulated time to run.
        initial_mode: Mode name to boot into (lowest id when ``None``).
        policy: ``"beacon_gated"`` (TTW) or ``"local_belief"``
            (the unsafe ablation).
        host_node: Override the beacon host node.
        mode_requests: ``(time, target_mode_name)`` runtime switch
            requests.
        trials: Default trial count of a Monte-Carlo campaign over
            this scenario (see :mod:`repro.mc`).  ``Experiment.run``
            still executes exactly one trial; campaigns use this many
            per grid point unless overridden.
        seed: Campaign master seed — per-trial seeds are derived
            deterministically from it (``None`` counts as 0).
    """

    duration: float
    initial_mode: Optional[str] = None
    policy: str = "beacon_gated"
    host_node: Optional[str] = None
    mode_requests: Tuple[Tuple[float, str], ...] = ()
    trials: int = 1
    seed: Optional[int] = None

    def node_policy(self) -> NodePolicy:
        try:
            return NodePolicy(self.policy)
        except ValueError:
            raise ScenarioError(
                f"unknown policy {self.policy!r}; known: "
                f"{', '.join(p.value for p in NodePolicy)}"
            ) from None

    def to_dict(self) -> dict:
        return {
            "duration": self.duration,
            "initial_mode": self.initial_mode,
            "policy": self.policy,
            "host_node": self.host_node,
            "mode_requests": [[t, mode] for t, mode in self.mode_requests],
            "trials": self.trials,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["SimulationSpec"]:
        if data is None:
            return None
        return cls(
            duration=data["duration"],
            initial_mode=data.get("initial_mode"),
            policy=data.get("policy", "beacon_gated"),
            host_node=data.get("host_node"),
            mode_requests=tuple(
                (float(t), mode) for t, mode in data.get("mode_requests", [])
            ),
            trials=data.get("trials", 1),
            seed=data.get("seed"),
        )


@dataclass
class Scenario:
    """One declarative TTW experiment: workload, solver, network, run.

    Attributes:
        name: Scenario identifier (labels results tables and output
            files).
        modes: The workload — modes with their applications.
        config: Scheduling parameters shared by all modes.
        backend: Solver backend name overriding ``config.backend``
            (``None`` keeps the config's choice); see
            :func:`repro.milp.available_backends`.
        transitions: Allowed runtime mode switches, by name.
        topology: Optional multi-hop network description.
        loss: Optional packet-loss model description.
        radio: Optional radio-on accounting parameters.
        simulation: Optional execution phase; ``None`` means
            synthesize + verify only.
    """

    name: str
    modes: List[Mode]
    config: SchedulingConfig = field(default_factory=SchedulingConfig)
    backend: Optional[str] = None
    transitions: List[Tuple[str, str]] = field(default_factory=list)
    topology: Optional[TopologySpec] = None
    loss: Optional[LossSpec] = None
    radio: Optional[RadioSpec] = None
    simulation: Optional[SimulationSpec] = None

    # -- derived ---------------------------------------------------------
    @property
    def effective_config(self) -> SchedulingConfig:
        """``config`` with the scenario's backend override applied."""
        if self.backend is not None and self.backend != self.config.backend:
            return dataclasses.replace(self.config, backend=self.backend)
        return self.config

    def validate(self) -> None:
        """Check internal consistency; raises :class:`ScenarioError`."""
        if not self.modes:
            raise ScenarioError(f"scenario {self.name!r} has no modes")
        names = [mode.name for mode in self.modes]
        if len(set(names)) != len(names):
            raise ScenarioError(
                f"scenario {self.name!r}: duplicate mode names {names}"
            )
        try:
            get_backend(self.effective_config.backend)
        except ValueError as exc:
            # get_backend's message already lists the available backends.
            raise ScenarioError(f"scenario {self.name!r}: {exc}") from None
        time_limit = self.config.time_limit
        if time_limit is not None and time_limit <= 0:
            raise ScenarioError(
                f"scenario {self.name!r}: time_limit must be > 0 seconds "
                f"(or null for no limit), got {time_limit!r}"
            )
        known = set(names)
        for source, target in self.transitions:
            if source not in known or target not in known:
                raise ScenarioError(
                    f"scenario {self.name!r}: transition {source!r} -> "
                    f"{target!r} references an unknown mode"
                )
        if self.simulation is not None:
            self.simulation.node_policy()
            trials = self.simulation.trials
            if not isinstance(trials, int) or isinstance(trials, bool) \
                    or trials < 1:
                raise ScenarioError(
                    f"scenario {self.name!r}: simulation.trials must be an "
                    f"integer >= 1, got {trials!r}"
                )
            seed = self.simulation.seed
            if seed is not None and (
                not isinstance(seed, int) or isinstance(seed, bool)
            ):
                raise ScenarioError(
                    f"scenario {self.name!r}: simulation.seed must be an "
                    f"integer or null, got {seed!r}"
                )
            if (
                self.simulation.initial_mode is not None
                and self.simulation.initial_mode not in known
            ):
                raise ScenarioError(
                    f"scenario {self.name!r}: initial mode "
                    f"{self.simulation.initial_mode!r} is not a scenario mode"
                )
            for _, target in self.simulation.mode_requests:
                if target not in known:
                    raise ScenarioError(
                        f"scenario {self.name!r}: mode request targets "
                        f"unknown mode {target!r}"
                    )
        if self.loss is not None and self.loss.kind in TOPOLOGY_LOSS_KINDS:
            if self.topology is None:
                raise ScenarioError(
                    f"scenario {self.name!r}: loss kind "
                    f"{self.loss.kind!r} needs a topology"
                )

    # -- builders --------------------------------------------------------
    def build_topology(self) -> Optional[Topology]:
        return self.topology.build() if self.topology is not None else None

    def build_loss(self, topology: Optional[Topology] = None) -> Optional[LossModel]:
        if self.loss is None:
            return None
        return self.loss.build(topology)

    def build_radio(self, topology: Optional[Topology] = None) -> Optional[RadioTiming]:
        if self.radio is None:
            return None
        return self.radio.build(topology)

    def to_system(
        self,
        jobs: int = 1,
        cache_dir=None,
        warm_start: bool = False,
    ):
        """An (unsynthesized) :class:`repro.system.TTWSystem` for this
        scenario — modes registered, transitions allowed."""
        from ..system import TTWSystem

        self.validate()
        system = TTWSystem(
            self.effective_config,
            warm_start=warm_start,
            jobs=jobs,
            cache_dir=cache_dir,
        )
        for mode in self.modes:
            system.add_mode(mode)
        for source, target in self.transitions:
            system.allow_transition(source, target)
        return system

    @classmethod
    def from_system(cls, system, name: str = "system") -> "Scenario":
        """Describe an existing :class:`repro.system.TTWSystem` as a
        scenario (workload, transitions, and config; no network/run)."""
        transitions = [
            (source, target)
            for source, targets in system.mode_graph.transitions.items()
            for target in targets
        ]
        return cls(
            name=name,
            modes=list(system.modes),
            config=system.config,
            transitions=transitions,
        )

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        from ..io.serialize import scenario_to_dict

        return scenario_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        from ..io.serialize import scenario_from_dict

        return scenario_from_dict(data)

    def save(self, path: "str | Path") -> None:
        from ..io.serialize import save_scenario

        save_scenario(path, self)

    @classmethod
    def load(cls, path: "str | Path") -> "Scenario":
        from ..io.serialize import load_scenario

        return load_scenario(path)

    # -- convenience -----------------------------------------------------
    def run(self, **kwargs):
        """Synthesize/verify/simulate this scenario; see
        :func:`repro.api.run_scenario`."""
        from .experiment import run_scenario

        return run_scenario(self, **kwargs)


def sweep(
    base: Scenario,
    **field_values: Sequence,
) -> List[Scenario]:
    """Derive scenario variants from ``base`` by varying one field.

    .. deprecated::
        ``sweep()`` is a thin shim over the design-space explorer
        (:mod:`repro.dse`): declare a :class:`repro.dse.Space` with an
        axis per knob and use :func:`repro.dse.explore` (or
        ``Experiment.explore()``) instead — it adds multi-axis grids,
        adaptive sampling, Pareto fronts, and a resumable result
        store.  The shim keeps the PR 2 behavior bit-identical:
        exactly one Scenario field, variants named ``<base.name>-<i>``,
        no validation of the derived scenarios, no store.  (Sweeping
        ``name`` was never functional — it used to raise ``TypeError``
        on a duplicate keyword; it now raises :class:`ScenarioError`
        with an explanation.)

    Example::

        variants = sweep(base, backend=["highs", "bnb", "greedy"])
    """
    import warnings

    warnings.warn(
        "repro.api.sweep() is deprecated; declare a repro.dse.Space and "
        "use repro.dse.explore() / Experiment.explore() (see "
        "docs/EXPLORATION.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    if len(field_values) != 1:
        raise ScenarioError("sweep() varies exactly one field at a time")
    (field_name, values), = field_values.items()
    if field_name not in {f.name for f in dataclasses.fields(Scenario)}:
        raise ScenarioError(f"unknown Scenario field {field_name!r}")
    from ..dse.space import SpaceError, apply_target

    try:
        return [
            dataclasses.replace(
                apply_target(base, field_name, value), name=f"{base.name}-{i}"
            )
            for i, value in enumerate(values)
        ]
    except SpaceError as exc:
        raise ScenarioError(str(exc)) from None
