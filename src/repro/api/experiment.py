"""Experiment runner — the execution side of ``repro.api``.

An :class:`Experiment` fans a list of :class:`~repro.api.scenario.Scenario`
descriptions through the synthesis engine's shared pool and persistent
cache (one :func:`repro.engine.run_cached_batch` call covers every mode
of every scenario, so identical problems across scenarios are solved
once), then verifies each schedule, optionally executes the scenario's
simulation phase, and collects one metrics row per scenario into a
results table.

The pipeline per scenario is the paper's full workflow::

    synthesize (Algorithm 1, chosen backend)
        -> verify (independent oracle)
        -> simulate (beacons, losses, mode changes)   [optional]
        -> collect metrics

:func:`run_scenario` is the one-scenario convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from ..analysis.format import format_table
from ..core.schedule import ModeSchedule
from ..core.verify import VerificationReport, verify_schedule
from ..engine.api import EngineStats, run_cached_batch
from ..engine.cache import ScheduleCache
from ..obs.metrics import timed_span
from ..runtime.simulator import ModeRequest
from ..runtime.trace import Trace
from .scenario import Scenario


@dataclass
class ScenarioResult:
    """Everything one scenario produced.

    Attributes:
        scenario: The input description.
        schedules: Synthesized schedule per mode name.
        reports: Verification report per mode name (empty when
            verification was skipped).
        trace: Simulation trace, when the scenario has a simulation
            phase and verification passed.
        metrics: Flat summary row (also the results-table row).
    """

    scenario: Scenario
    schedules: Dict[str, ModeSchedule] = field(default_factory=dict)
    reports: Dict[str, VerificationReport] = field(default_factory=dict)
    trace: Optional[Trace] = None
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def verified(self) -> bool:
        """All schedules verified (vacuously True when not verified)."""
        return all(report.ok for report in self.reports.values())

    def system(self):
        """A deployable :class:`repro.system.TTWSystem` carrying these
        schedules (no re-synthesis)."""
        return _build_system(self.scenario, self.schedules)


def _build_system(scenario: Scenario, schedules: Dict[str, ModeSchedule]):
    from ..runtime.deployment import build_deployment

    system = scenario.to_system()
    for mode in system.modes:
        schedule = schedules[mode.name]
        system.schedules[mode.name] = schedule
        assert mode.mode_id is not None
        system.deployments[mode.mode_id] = build_deployment(
            mode, schedule, mode.mode_id
        )
    return system


def synthesize_scenarios(
    scenarios: Sequence[Scenario],
    jobs: int = 1,
    cache: Optional[ScheduleCache] = None,
    warm_start: bool = True,
    stats: Optional[EngineStats] = None,
    verify: bool = True,
) -> "tuple[Dict[str, Dict[str, ModeSchedule]], Dict[str, Dict[str, VerificationReport]], EngineStats]":
    """The shared synthesis phase of every scenario runner.

    Validates the scenarios, flattens every mode of every scenario into
    **one** cached batch (so identical problems are solved once across
    the whole set), and optionally verifies each schedule with the
    independent oracle.  Both :meth:`Experiment.run` and the
    Monte-Carlo campaign layer (:func:`repro.mc.run_campaigns`) sit on
    top of this.

    Returns:
        ``(schedules, reports, stats)`` — schedule and verification
        report per mode name, per scenario name (``reports`` is empty
        per scenario when ``verify`` is false).

    Raises:
        ValueError: on duplicate scenario names.
        ScenarioError: on inconsistent scenario descriptions.
        repro.core.synthesis.InfeasibleError: if any mode is
            unschedulable.
    """
    for scenario in scenarios:
        scenario.validate()
    names = [scenario.name for scenario in scenarios]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names: {names}")

    problems = []
    slices = []
    for scenario in scenarios:
        config = scenario.effective_config
        start = len(problems)
        problems.extend((mode, config) for mode in scenario.modes)
        slices.append((start, len(problems)))

    stats = stats if stats is not None else EngineStats()
    with timed_span("synthesize"):
        solved = run_cached_batch(
            problems, jobs=jobs, cache=cache, warm_start=warm_start,
            stats=stats,
        )

    schedules: Dict[str, Dict[str, ModeSchedule]] = {}
    reports: Dict[str, Dict[str, VerificationReport]] = {}
    with timed_span("verify"):
        for scenario, (start, stop) in zip(scenarios, slices):
            by_name = {
                mode.name: schedule
                for (mode, _), schedule in zip(
                    problems[start:stop], solved[start:stop]
                )
            }
            schedules[scenario.name] = by_name
            reports[scenario.name] = (
                {
                    mode.name: verify_schedule(mode, by_name[mode.name])
                    for mode in scenario.modes
                }
                if verify
                else {}
            )
    return schedules, reports, stats


@dataclass
class ExperimentResult:
    """Results of one :meth:`Experiment.run`, scenario by scenario."""

    results: List[ScenarioResult] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)

    def __iter__(self) -> Iterator[ScenarioResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, key: "int | str") -> ScenarioResult:
        if isinstance(key, int):
            return self.results[key]
        for result in self.results:
            if result.scenario.name == key:
                return result
        raise KeyError(key)

    @property
    def ok(self) -> bool:
        """Every scenario verified (and simulated collision-free)."""
        return all(
            result.verified
            and (result.trace is None or result.trace.collision_free)
            for result in self.results
        )

    def rows(self) -> List[Dict[str, object]]:
        """One metrics dict per scenario, in input order."""
        return [result.metrics for result in self.results]

    def table(self) -> str:
        """The metrics as an aligned ASCII table."""
        rows = self.rows()
        if not rows:
            return "(no scenarios)"
        headers: List[str] = []
        for row in rows:
            for key in row:
                if key not in headers:
                    headers.append(key)
        body = [[row.get(h, "-") for h in headers] for row in rows]
        return format_table(headers, body, float_fmt="{:.3f}")


class Experiment:
    """Run many scenarios over one shared solver pool and cache.

    Args:
        scenarios: Initial scenario list (more via :meth:`add`).
        jobs: Worker processes for speculative/batch synthesis.
        cache: An existing :class:`ScheduleCache` to share.
        cache_dir: Convenience: build a cache at this directory
            (ignored when ``cache`` is given).
        warm_start: Seed Algorithm 1 at the demand lower bound
            (identical schedules, fewer iterations).
    """

    def __init__(
        self,
        scenarios: Sequence[Scenario] = (),
        jobs: int = 1,
        cache: Optional[ScheduleCache] = None,
        cache_dir: "Optional[str | Path]" = None,
        warm_start: bool = True,
    ) -> None:
        if not isinstance(jobs, int) or jobs < 1:
            raise ValueError(
                f"jobs must be an integer >= 1, got {jobs!r}"
            )
        self.scenarios: List[Scenario] = list(scenarios)
        self.jobs = jobs
        self.cache = cache if cache is not None else (
            ScheduleCache(cache_dir) if cache_dir is not None else None
        )
        self.warm_start = warm_start

    def add(self, scenario: Scenario) -> Scenario:
        self.scenarios.append(scenario)
        return scenario

    # -- execution -------------------------------------------------------
    def run(self, verify: bool = True, simulate: bool = True) -> ExperimentResult:
        """Synthesize, verify, and (optionally) simulate every scenario.

        Args:
            verify: Re-check every schedule with the independent
                verifier; failures are recorded in the scenario's
                reports and skip its simulation phase.
            simulate: Execute scenarios that carry a
                :class:`~repro.api.scenario.SimulationSpec`.

        Returns:
            An :class:`ExperimentResult` aligned with the scenario
            list.

        Raises:
            repro.core.synthesis.InfeasibleError: if any mode of any
                scenario is unschedulable.
            ScenarioError: on inconsistent scenario descriptions.
        """
        # One flat problem list -> one pool/cache pass for everything.
        schedules, reports, stats = synthesize_scenarios(
            self.scenarios,
            jobs=self.jobs,
            cache=self.cache,
            warm_start=self.warm_start,
            verify=verify,
        )

        outcome = ExperimentResult(stats=stats)
        for scenario in self.scenarios:
            result = ScenarioResult(
                scenario=scenario,
                schedules=schedules[scenario.name],
                reports=reports[scenario.name],
            )
            if simulate and scenario.simulation is not None and result.verified:
                result.trace = self._simulate(scenario, result.schedules)
            result.metrics = self._metrics(result)
            outcome.results.append(result)
        return outcome

    def run_campaign(
        self,
        trials: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
        sweep: Optional[Dict[str, Sequence]] = None,
        engine: str = "fast",
    ):
        """Run a Monte-Carlo campaign over this experiment's scenarios.

        Where :meth:`run` executes each scenario's simulation phase
        exactly once, a campaign executes it ``trials`` times per
        point of a loss-parameter ``sweep`` grid with deterministic
        per-trial seeds, and aggregates the samples into
        :class:`repro.mc.CampaignStats` — deadline-miss rates with
        Wilson confidence intervals, radio-on distributions,
        mode-change latency tails.  Synthesis still happens once per
        distinct config (shared pool + cache), and trials drain
        through the same worker pool.

        Args:
            trials: Trials per grid point (default: each scenario's
                ``simulation.trials``).
            seeds: Explicit per-trial seeds (reused at every grid
                point — common random numbers); overrides ``trials``.
            sweep: ``{loss_param: [values, ...]}`` grid evaluated per
                scenario.
            engine: ``"fast"`` (compiled round programs, trace-free
                accumulation, automatic fallback), ``"vectorized"``
                (all trials of a grid point as batched tensor
                programs — distribution-equivalent, falls back
                ``vectorized -> fast -> reference``), or
                ``"reference"`` (the object-level simulator;
                bit-identical to ``fast``).

        Returns:
            A :class:`repro.mc.CampaignResult`.
        """
        from ..mc.campaign import run_campaigns

        return run_campaigns(
            self.scenarios,
            trials=trials,
            seeds=seeds,
            sweep=sweep,
            jobs=self.jobs,
            cache=self.cache,
            warm_start=self.warm_start,
            engine=engine,
        )

    def explore(
        self,
        space,
        sampler: str = "grid",
        objectives: Optional[Sequence] = None,
        trials: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
        samples: Optional[int] = None,
        store=None,
        engine: str = "fast",
        batch_size: Optional[int] = None,
        shards: int = 1,
    ):
        """Explore a design space over this experiment's pool and cache.

        Where :meth:`run` executes a fixed scenario list and
        :meth:`run_campaign` adds trials x seeds x loss grids, an
        *exploration* searches a declarative parameter
        :class:`~repro.dse.space.Space` (axes over scenario fields —
        slots per round, payload, loss grids, backends, ...) for its
        Pareto-optimal configurations: a sampler selects candidates
        (``grid``, ``random``, ``halton``, the adaptive ``adaptive``
        successive-halving strategy, or the model-guided
        ``surrogate``), each candidate runs one Monte-Carlo campaign
        through the shared pool/cache, and the measured objective
        vectors yield an exact multi-objective Pareto front.  A
        persistent ``store`` (JSONL or SQLite path) makes the
        exploration resumable: completed candidates are never
        re-executed.  ``shards > 1`` fans candidate evaluation out
        over a work-stealing pool of shard processes
        (:func:`repro.dse.explore_sharded`; requires a persistent
        store).  See :func:`repro.dse.explore` for the full parameter
        set and :doc:`docs/EXPLORATION.md` for a worked example.

        Returns:
            A :class:`repro.dse.ExplorationResult`.
        """
        from ..dse import DEFAULT_BATCH_SIZE, DEFAULT_OBJECTIVES
        from ..dse import explore as run_exploration
        from ..dse import explore_sharded

        objectives = (
            objectives if objectives is not None else DEFAULT_OBJECTIVES
        )
        batch_size = (
            batch_size if batch_size is not None else DEFAULT_BATCH_SIZE
        )
        if shards > 1:
            return explore_sharded(
                space,
                shards=shards,
                sampler=sampler,
                objectives=objectives,
                trials=trials,
                seeds=seeds,
                samples=samples,
                jobs=self.jobs,
                cache_dir=(
                    self.cache.cache_dir if self.cache is not None else None
                ),
                warm_start=self.warm_start,
                store=store,
                engine=engine,
                batch_size=batch_size,
            )
        return run_exploration(
            space,
            sampler=sampler,
            objectives=objectives,
            trials=trials,
            seeds=seeds,
            samples=samples,
            jobs=self.jobs,
            cache=self.cache,
            warm_start=self.warm_start,
            store=store,
            engine=engine,
            batch_size=batch_size,
        )

    def _simulate(
        self, scenario: Scenario, schedules: Dict[str, ModeSchedule]
    ) -> Trace:
        spec = scenario.simulation
        assert spec is not None
        system = _build_system(scenario, schedules)
        topology = scenario.build_topology()
        simulator = system.simulator(
            initial_mode=spec.initial_mode,
            loss=scenario.build_loss(topology),
            policy=spec.node_policy(),
            radio=scenario.build_radio(topology),
        )
        requests = [
            ModeRequest(time, system.mode_id(target))
            for time, target in spec.mode_requests
        ]
        return simulator.run(
            spec.duration, mode_requests=requests, host_node=spec.host_node
        )

    def _metrics(self, result: ScenarioResult) -> Dict[str, object]:
        scenario = result.scenario
        schedules = result.schedules.values()
        row: Dict[str, object] = {
            "scenario": scenario.name,
            "backend": scenario.effective_config.backend,
            "modes": len(result.schedules),
            "rounds": sum(s.num_rounds for s in schedules),
            "total_latency": sum(s.total_latency for s in schedules),
        }
        if result.reports:
            row["verified"] = result.verified
        if result.trace is not None:
            trace = result.trace
            row["delivery"] = trace.delivery_rate()
            row["on_time"] = trace.on_time_rate()
            row["chains"] = trace.chain_success_rate()
            row["collision_free"] = trace.collision_free
            row["mode_switches"] = len(trace.mode_switches)
        return row


def run_scenario(
    scenario: Scenario,
    jobs: int = 1,
    cache: Optional[ScheduleCache] = None,
    cache_dir: "Optional[str | Path]" = None,
    warm_start: bool = False,
    verify: bool = True,
    simulate: bool = True,
) -> ScenarioResult:
    """Run one scenario end to end; see :class:`Experiment`.

    Note ``warm_start`` defaults to False here (the paper's exact
    Algorithm 1 loop), unlike batch experiments where the demand-bound
    warm start is on by default.
    """
    experiment = Experiment(
        [scenario],
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        warm_start=warm_start,
    )
    return experiment.run(verify=verify, simulate=simulate).results[0]
