"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``synth``    — synthesize schedules for a workload JSON file and
  write the system image (modes + schedules) back to disk;
* ``batch``    — synthesize many workload files over one shared
  process pool and schedule cache;
* ``verify``   — re-verify every schedule in a system file;
* ``simulate`` — execute a system file for a given duration and print
  trace statistics;
* ``figures``  — print the paper's Fig. 6 / Fig. 7 data;
* ``gantt``    — render a mode's schedule as an ASCII chart.

``synth`` and ``batch`` accept ``--jobs N`` (speculative parallel
Algorithm 1 over N worker processes) and ``--cache-dir DIR`` (persistent
content-addressed schedule cache; a re-run on unchanged inputs never
invokes the solver).

The workload JSON for ``synth`` is a list of mode records (see
:func:`repro.io.serialize.mode_from_dict`) plus a ``config`` record::

    {
      "config": {"round_length": 50.0, "slots_per_round": 5,
                  "max_round_gap": null},
      "modes": [ { "name": ..., "applications": [...] } ]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import (
    fig6_round_length,
    fig7_energy_savings,
    format_series,
    format_table,
    render_gantt,
)
from .io.serialize import SerializationError, config_from_dict, mode_from_dict
from .system import TTWSystem


def _cmd_synth(args: argparse.Namespace) -> int:
    spec = json.loads(Path(args.workload).read_text())
    config = config_from_dict(spec["config"])
    system = TTWSystem(
        config,
        warm_start=args.warm_start,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    for record in spec["modes"]:
        system.add_mode(mode_from_dict(record))
    schedules = system.synthesize_all()
    for name, schedule in sorted(schedules.items()):
        print(
            f"mode {name!r}: {schedule.num_rounds} rounds, "
            f"total latency {schedule.total_latency:.3f}"
        )
    if system.engine_stats is not None and args.cache_dir is not None:
        print(f"engine: {system.engine_stats}")
    system.save(args.output)
    print(f"wrote {args.output}")
    return 0


def _batch_output_paths(workloads: List[str], output_dir: Path) -> List[Path]:
    """One output path per workload file, disambiguating equal stems."""
    paths: List[Path] = []
    used: dict = {}
    for workload in workloads:
        stem = Path(workload).stem
        count = used.get(stem, 0)
        used[stem] = count + 1
        suffix = f"-{count + 1}" if count else ""
        paths.append(output_dir / f"{stem}{suffix}.system.json")
    return paths


def _cmd_batch(args: argparse.Namespace) -> int:
    from .core import verify_schedule
    from .engine import EngineStats, ScheduleCache, run_cached_batch
    from .io.serialize import save_system

    cache = ScheduleCache(args.cache_dir) if args.cache_dir else None
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    outputs = _batch_output_paths(args.workloads, output_dir)

    # Parse every file up front so one pool serves the whole batch.
    files = []  # (workload, output, modes)
    problems = []  # (mode, config) across all files
    for workload, out in zip(args.workloads, outputs):
        spec = json.loads(Path(workload).read_text())
        config = config_from_dict(spec["config"])
        modes = [mode_from_dict(record) for record in spec["modes"]]
        names = [mode.name for mode in modes]
        if len(set(names)) != len(names):
            raise SerializationError(
                f"{workload}: duplicate mode names {names}"
            )
        problems.extend((mode, config) for mode in modes)
        files.append((workload, out, modes))

    stats = EngineStats()
    schedules = run_cached_batch(
        problems,
        jobs=args.jobs,
        cache=cache,
        warm_start=not args.no_warm_start,
        stats=stats,
    )

    cursor = 0
    failures = 0
    for workload, out, modes in files:
        by_name = {}
        file_failures = 0
        for mode in modes:
            schedule = schedules[cursor]
            cursor += 1
            report = verify_schedule(mode, schedule)
            if not report.ok:
                for violation in report.violations:
                    print(
                        f"{Path(workload).name} :: mode {mode.name!r}: "
                        f"VIOLATION {violation}",
                        file=sys.stderr,
                    )
                file_failures += 1
                continue
            by_name[mode.name] = schedule
            print(
                f"{Path(workload).name} :: mode {mode.name!r}: "
                f"{schedule.num_rounds} rounds, "
                f"total latency {schedule.total_latency:.3f}"
            )
        if file_failures:
            failures += file_failures
            continue  # don't write a partial/unverified system file
        save_system(out, modes, by_name)
        print(f"wrote {out}")
    print(
        f"batch done: {len(problems)} mode(s) from {len(args.workloads)} "
        f"workload file(s), engine: {stats}"
    )
    return 1 if failures else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    system = TTWSystem.load(args.system)
    reports = system.verify_all()
    failures = 0
    for name, report in sorted(reports.items()):
        status = "OK" if report.ok else f"{len(report.violations)} violation(s)"
        print(f"mode {name!r}: {status}")
        for violation in report.violations:
            print(f"  - {violation}")
            failures += 1
    return 1 if failures else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .runtime import BernoulliLoss

    system = TTWSystem.load(args.system)
    loss = None
    if args.loss > 0:
        loss = BernoulliLoss(
            beacon_loss=args.loss, data_loss=args.loss, seed=args.seed
        )
    trace = system.simulate(duration=args.duration, loss=loss)
    print(f"rounds executed:   {len(trace.rounds)}")
    print(f"collision-free:    {trace.collision_free}")
    print(f"delivery rate:     {trace.delivery_rate():.4f}")
    print(f"on-time rate:      {trace.on_time_rate():.4f}")
    print(f"chain success:     {trace.chain_success_rate():.4f}")
    return 0 if trace.collision_free else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.figure in ("6", "all"):
        data = fig6_round_length()
        print(f"Fig. 6: Tr [ms], payload {data.payload_bytes} B, N=2")
        headers = ["H \\ B"] + [str(b) for b in data.slots]
        rows = [[h] + [data.grid[h][b] for b in data.slots]
                for h in data.diameters]
        print(format_table(headers, rows, float_fmt="{:.1f}"))
    if args.figure in ("7", "all"):
        data = fig7_energy_savings()
        print(f"\nFig. 7: energy saving E, H={data.diameter}, N=2")
        for payload in data.payloads:
            print(format_series(f"l={payload}B", list(data.slots),
                                data.series[payload]))
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    system = TTWSystem.load(args.system)
    names = [args.mode] if args.mode else sorted(system.schedules)
    for name in names:
        if name not in system.schedules:
            print(f"unknown mode {name!r}", file=sys.stderr)
            return 1
        mode = system.mode_graph.modes[name]
        print(f"=== mode {name!r} ===")
        print(render_gantt(mode, system.schedules[name], width=args.width))
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TTW (DATE 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="synthesize schedules")
    synth.add_argument("workload", help="workload spec JSON")
    synth.add_argument("-o", "--output", default="system.json")
    synth.add_argument("--warm-start", action="store_true",
                       help="start Algorithm 1 at the demand lower bound "
                            "(default: off — the paper's exact loop)")
    synth.add_argument("-j", "--jobs", type=_positive_int, default=1,
                       help="parallel solver processes (default: 1)")
    synth.add_argument("--cache-dir", default=None,
                       help="persistent schedule cache directory")
    synth.set_defaults(func=_cmd_synth)

    batch = sub.add_parser(
        "batch", help="synthesize many workload files over one pool/cache"
    )
    batch.add_argument("workloads", nargs="+", help="workload spec JSON files")
    batch.add_argument("-O", "--output-dir", default=".",
                       help="directory for <stem>.system.json outputs")
    batch.add_argument("-j", "--jobs", type=_positive_int, default=1,
                       help="parallel solver processes (default: 1)")
    batch.add_argument("--cache-dir", default=None,
                       help="persistent schedule cache directory")
    batch.add_argument("--no-warm-start", action="store_true",
                       help="disable the demand-bound warm start "
                            "(batch defaults to warm starts ON, unlike "
                            "synth; schedules are identical either way)")
    batch.set_defaults(func=_cmd_batch)

    verify = sub.add_parser("verify", help="verify a system file")
    verify.add_argument("system")
    verify.set_defaults(func=_cmd_verify)

    simulate = sub.add_parser("simulate", help="execute a system file")
    simulate.add_argument("system")
    simulate.add_argument("-d", "--duration", type=float, default=1000.0)
    simulate.add_argument("--loss", type=float, default=0.0)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.set_defaults(func=_cmd_simulate)

    figures = sub.add_parser("figures", help="print Fig. 6/7 data")
    figures.add_argument("figure", choices=["6", "7", "all"], default="all",
                         nargs="?")
    figures.set_defaults(func=_cmd_figures)

    gantt = sub.add_parser("gantt", help="ASCII schedule chart")
    gantt.add_argument("system")
    gantt.add_argument("-m", "--mode", default=None)
    gantt.add_argument("-w", "--width", type=int, default=72)
    gantt.set_defaults(func=_cmd_gantt)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (
        SerializationError,
        json.JSONDecodeError,
        FileNotFoundError,
        KeyError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
