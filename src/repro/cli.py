"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``scenario run``   — run one declarative scenario file end to end
  (synthesize → verify → simulate → metrics) and optionally write the
  system image;
* ``scenario sweep`` — run many scenario files over one shared process
  pool and schedule cache and print a results table;
* ``scenario mc``   — run a Monte-Carlo campaign over a scenario file
  (``--trials/--seeds/--sweep``, see :mod:`repro.mc`) and print the
  aggregated statistics table; ``--engine fast`` (default) executes
  trials over compiled round programs, ``--engine vectorized`` batches
  all trials of a grid point into tensor programs
  (distribution-equivalent, prints the engine actually used after
  fallback), ``--engine reference`` over the object-level simulator
  (bit-identical to fast, for cross-checks);
* ``scenario explore`` — design-space exploration (see
  :mod:`repro.dse`): search a parameter space (a space file, or a
  scenario file plus ``--axis`` flags) for its Pareto-optimal
  configurations with ``--sampler
  grid|random|halton|adaptive|surrogate``, evaluating candidates
  through Monte-Carlo campaigns and printing the front table;
  ``--store FILE`` persists every evaluation (JSONL, or SQLite by
  suffix) so repeated invocations are incremental and ``--resume``
  continues an interrupted run without re-executing completed
  campaigns; ``--shards N`` fans evaluation out over a work-stealing
  pool of shard processes appending to partitioned store segments;
* ``logs`` — inspect the structured run logs ``--log-dir`` writes
  (``summarize`` / ``timeline`` / ``rollup`` / ``story``; see
  :mod:`repro.obs` and docs/OBSERVABILITY.md);
* ``store merge`` — merge partitioned store segments
  (``store.part-<n>``) into the main store, deduping by candidate key
  (newest wins) — recovers a killed distributed exploration;
* ``serve`` — run the toolkit as a long-running HTTP service (see
  :mod:`repro.serve` and docs/SERVICE.md): an async job queue with
  admission control drains submissions through the synthesis and
  Monte-Carlo fast paths, deduplicating identical work across requests
  (in-flight attachment + a shared persistent ``--store``);
* ``scenario submit`` — submit a scenario file to a running ``repro
  serve`` daemon and (by default) follow its event stream until done;
* ``verify``   — re-verify every schedule in a system file;
* ``simulate`` — execute a system file for a given duration and print
  trace statistics;
* ``figures``  — print the paper's Fig. 6 / Fig. 7 data;
* ``gantt``    — render a mode's schedule as an ASCII chart;
* ``synth`` / ``batch`` — deprecated shims over the scenario runner,
  kept for the legacy workload-spec format (see below).

``scenario run|sweep``, ``synth``, and ``batch`` accept ``--jobs N``
(speculative parallel Algorithm 1 over N worker processes),
``--cache-dir DIR`` (persistent content-addressed schedule cache), and
``--backend NAME`` (solver backend: ``highs``, ``bnb``, ``greedy``, or
any registered name; the backend is part of the cache key).

A scenario file is the JSON image of :class:`repro.api.Scenario` (see
``Scenario.save``); ``scenario run`` also accepts the legacy workload
spec — a ``config`` record plus a ``modes`` list::

    {
      "config": {"round_length": 50.0, "slots_per_round": 5,
                  "max_round_gap": null},
      "modes": [ { "name": ..., "applications": [...] } ]
    }
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import (
    fig6_round_length,
    fig7_energy_savings,
    format_series,
    format_table,
    render_gantt,
)
from .api import Experiment, Scenario, ScenarioError
from .io.serialize import (
    SerializationError,
    config_from_dict,
    mode_from_dict,
    save_system,
    scenario_from_dict,
)
from .milp import available_backends
from .system import TTWSystem


def _deprecated(old: str, new: str) -> None:
    print(
        f"warning: `{old}` is deprecated; use `{new}` (see docs/API.md)",
        file=sys.stderr,
    )


def _load_scenario_file(path: str) -> Scenario:
    """Read a scenario file; legacy workload specs are adapted."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") == "scenario":
        return scenario_from_dict(payload)
    if "config" in payload and "modes" in payload:
        # Legacy workload spec: config + modes, no network/simulation.
        return Scenario(
            name=Path(path).stem,
            modes=[mode_from_dict(record) for record in payload["modes"]],
            config=config_from_dict(payload["config"]),
        )
    raise SerializationError(
        f"{path}: neither a scenario file (kind='scenario') nor a legacy "
        f"workload spec (config + modes)"
    )


def _apply_overrides(scenario: Scenario, args: argparse.Namespace) -> Scenario:
    if getattr(args, "backend", None) is not None:
        scenario = dataclasses.replace(scenario, backend=args.backend)
    if getattr(args, "time_limit", None) is not None:
        scenario = dataclasses.replace(
            scenario,
            config=dataclasses.replace(
                scenario.config, time_limit=args.time_limit
            ),
        )
    return scenario


def _print_scenario_result(result, verbose_sim: bool = True) -> int:
    """Shared result reporting; returns the exit code contribution."""
    failures = 0
    for name, schedule in sorted(result.schedules.items()):
        print(
            f"mode {name!r}: {schedule.num_rounds} rounds, "
            f"total latency {schedule.total_latency:.3f}"
        )
    for name, report in sorted(result.reports.items()):
        for violation in report.violations:
            print(
                f"mode {name!r}: VIOLATION {violation}", file=sys.stderr
            )
            failures += 1
    if result.trace is not None and verbose_sim:
        trace = result.trace
        print(
            f"simulated {result.scenario.simulation.duration:g}: "
            f"delivery {trace.delivery_rate():.4f}, "
            f"on-time {trace.on_time_rate():.4f}, "
            f"chains {trace.chain_success_rate():.4f}, "
            f"collision-free {trace.collision_free}, "
            f"switches {len(trace.mode_switches)}"
        )
        if not trace.collision_free:
            failures += 1
    return failures


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(_load_scenario_file(args.scenario), args)
    experiment = Experiment(
        [scenario],
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        warm_start=args.warm_start,
    )
    outcome = experiment.run(simulate=not args.no_simulate)
    result = outcome.results[0]
    print(
        f"scenario {scenario.name!r}: {len(scenario.modes)} mode(s), "
        f"backend {scenario.effective_config.backend!r}"
    )
    failures = _print_scenario_result(result)
    if args.cache_dir is not None:
        print(f"engine: {outcome.stats}")
    if args.output is not None and not failures:
        save_system(
            args.output,
            scenario.modes,
            result.schedules,
            transitions=scenario.transitions,
        )
        print(f"wrote {args.output}")
    return 1 if failures else 0


def _cmd_scenario_sweep(args: argparse.Namespace) -> int:
    scenarios = []
    seen: dict = {}
    for path in args.scenarios:
        scenario = _apply_overrides(_load_scenario_file(path), args)
        # Disambiguate duplicate names across files (common for sweeps
        # generated from one template).
        count = seen.get(scenario.name, 0)
        seen[scenario.name] = count + 1
        if count:
            scenario = dataclasses.replace(
                scenario, name=f"{scenario.name}-{count + 1}"
            )
        scenarios.append(scenario)
    experiment = Experiment(
        scenarios,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        warm_start=not args.no_warm_start,
    )
    outcome = experiment.run(simulate=not args.no_simulate)
    print(outcome.table())
    print(f"engine: {outcome.stats}")
    failures = 0
    for result in outcome:
        for name, report in sorted(result.reports.items()):
            for violation in report.violations:
                print(
                    f"{result.scenario.name} :: mode {name!r}: "
                    f"VIOLATION {violation}",
                    file=sys.stderr,
                )
                failures += 1
        if result.trace is not None and not result.trace.collision_free:
            print(
                f"{result.scenario.name} :: simulation detected collisions",
                file=sys.stderr,
            )
            failures += 1
    if args.output_dir is not None:
        out_dir = Path(args.output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for result in outcome:
            if not result.verified or (
                result.trace is not None and not result.trace.collision_free
            ):
                continue
            out = out_dir / f"{result.scenario.name}.system.json"
            save_system(
                out,
                result.scenario.modes,
                result.schedules,
                transitions=result.scenario.transitions,
            )
            print(f"wrote {out}")
    return 1 if failures else 0


def _sweep_item(item: str) -> tuple:
    """argparse type for ``--sweep``: ``p=0,0.05`` -> ``("p", [0.0, 0.05])``."""
    name, sep, values_text = item.partition("=")
    if not sep or not name.strip() or not values_text.strip():
        raise argparse.ArgumentTypeError(
            f"expects PARAM=V1,V2,..., got {item!r}"
        )
    values = []
    for text in values_text.split(","):
        text = text.strip()
        try:
            values.append(json.loads(text))
        except json.JSONDecodeError:
            values.append(text)
    return name.strip(), values


def _seed_list(text: str) -> List[int]:
    """argparse type for ``--seeds``: comma-separated integers."""
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expects comma-separated integers, got {text!r}"
        ) from None
    if not seeds:
        raise argparse.ArgumentTypeError("expects at least one seed")
    return seeds


def _open_run_log(args: argparse.Namespace):
    """Install a run log when ``--log-dir`` was given; returns it."""
    if getattr(args, "log_dir", None) is None:
        return None
    from .obs import RunLog, set_run_log

    log = RunLog(args.log_dir)
    set_run_log(log)
    return log


def _close_run_log(log) -> None:
    if log is None:
        return
    from .obs import set_run_log

    set_run_log(None)
    log.close()
    print(f"run log: {log.path}")


def _cmd_scenario_mc(args: argparse.Namespace) -> int:
    from .analysis import flow_table
    from .mc import run_campaign

    sweep = None
    if args.sweep:
        sweep = {}
        for name, values in args.sweep:
            if name in sweep:
                print(
                    f"error: --sweep parameter {name!r} given more than "
                    f"once; list all its values in one flag",
                    file=sys.stderr,
                )
                return 2
            sweep[name] = values
    scenario = _apply_overrides(_load_scenario_file(args.scenario), args)
    log = _open_run_log(args)
    try:
        result = run_campaign(
            scenario,
            trials=args.trials,
            seeds=args.seeds,
            sweep=sweep,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            warm_start=not args.no_warm_start,
            engine=args.engine,
        )
    except ValueError as exc:  # ScenarioError is a ValueError
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        _close_run_log(log)
    print(
        f"campaign {scenario.name!r}: {len(result.points)} grid point(s), "
        f"backend {scenario.effective_config.backend!r}"
    )
    used = result.engines.get(scenario.name)
    if used is not None:
        note = "" if used == args.engine else f" (requested {args.engine})"
        print(f"trial engine: {used}{note}")
    print(result.table(verbose=args.verbose))
    print(f"engine: {result.stats}")
    failures = 0
    for name, by_mode in sorted(result.reports.items()):
        for mode_name, report in sorted(by_mode.items()):
            for violation in report.violations:
                print(
                    f"{name} :: mode {mode_name!r}: VIOLATION {violation}",
                    file=sys.stderr,
                )
                failures += 1
    for point in result.points:
        if point.stats.collisions:
            print(
                f"{point.scenario} :: point {point.point}: "
                f"{point.stats.collisions} collision(s)",
                file=sys.stderr,
            )
            failures += 1
    if args.flows:
        for point in result.points:
            print(f"\n-- flows @ {point.scenario} {point.point}")
            print(flow_table(point.stats))
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json}")
    return 1 if failures else 0


def _axis_item(item: str) -> tuple:
    """argparse type for ``--axis``: ``slots=1,2,5`` -> ``("slots", [...])``.

    The part before ``=`` is the axis target (a registered transform
    like ``slots``/``payload`` or a dotted path like
    ``loss.params.data_loss``); it doubles as the axis name.  Values
    parse as JSON where possible, else stay strings.
    """
    return _sweep_item(item)


def _objective_list(text: str) -> List[str]:
    """argparse type for ``--objectives``: comma-separated names."""
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise argparse.ArgumentTypeError("expects at least one objective")
    return names


def _load_space_file(path: str, args: argparse.Namespace):
    """Build the exploration space from a space or scenario file."""
    from .dse import Axis, Space

    payload = json.loads(Path(path).read_text())
    if payload.get("kind") == "space":
        space = Space.from_dict(payload)
        base = _apply_overrides(space.base, args)
        axes = list(space.axes)
        derive = space.derive
    else:
        base = _apply_overrides(_load_scenario_file(path), args)
        axes = []
        derive = None
    for name, values in args.axis or []:
        # A CLI axis replaces any file axis addressing the same knob.
        # Matching by *name* keeps that axis's target (so `--axis B=2`
        # re-values a file's Axis("B", "slots", ...)); matching by
        # *target* replaces it outright (so `--axis slots=4` does not
        # silently stack a second transform onto the same field).
        target = next(
            (axis.target for axis in axes if axis.name == name), name
        )
        axes = [
            axis for axis in axes
            if axis.name != name and axis.target != target
        ]
        axes.append(Axis(name, target, values))
    if args.derive is not None:
        derive = args.derive or None  # --derive "" clears a file's deriver
    if not axes:
        raise ValueError(
            f"{path}: no axes to explore; give a space file (kind='space') "
            f"or add --axis TARGET=V1,V2,..."
        )
    return Space(base=base, axes=axes, derive=derive)


def _cmd_scenario_explore(args: argparse.Namespace) -> int:
    from .dse import explore, explore_sharded, get_sampler

    try:
        space = _load_space_file(args.space, args)
        if args.resume:
            if args.store is None:
                raise ValueError("--resume needs --store FILE")
            if not Path(args.store).exists():
                raise ValueError(
                    f"--resume: store {args.store!r} does not exist yet "
                    f"(drop --resume to start a fresh exploration)"
                )
        if args.shards > 1 and args.store is None:
            raise ValueError("--shards needs --store FILE (the shard "
                             "segments and claim table derive from it)")
        sampler = get_sampler(args.sampler, samples=args.samples,
                              seed=args.sampler_seed)
        log = _open_run_log(args)
        try:
            if args.shards > 1:
                result = explore_sharded(
                    space,
                    shards=args.shards,
                    sampler=sampler,
                    objectives=args.objectives,
                    trials=args.trials,
                    seeds=args.seeds,
                    jobs=args.jobs,
                    cache_dir=args.cache_dir,
                    warm_start=not args.no_warm_start,
                    store=args.store,
                    engine=args.engine,
                )
            else:
                result = explore(
                    space,
                    sampler=sampler,
                    objectives=args.objectives,
                    trials=args.trials,
                    seeds=args.seeds,
                    jobs=args.jobs,
                    cache_dir=args.cache_dir,
                    warm_start=not args.no_warm_start,
                    store=args.store,
                    engine=args.engine,
                )
        finally:
            _close_run_log(log)
    except ValueError as exc:  # Space/Sampler/Objective/Exploration errors
        print(f"error: {exc}", file=sys.stderr)
        return 2
    front = result.front
    print(
        f"exploration {space.base.name!r}: sampler {result.sampler!r} "
        f"selected {len(result.candidates)} of {result.space_size} grid "
        f"point(s), objectives "
        f"{','.join(obj.name for obj in result.objectives)}"
        + (f", {result.shards} shard(s)" if result.shards > 1 else "")
    )
    print(
        f"executed {result.executed} campaign(s), reused {result.reused} "
        f"from store, {result.failed} failed"
    )
    if args.all:
        print(result.table())
        print()
    print(f"-- Pareto front ({len(front)} of "
          f"{len(result.candidates) - result.failed} scored candidate(s))")
    print(result.front_table())
    print(f"engine: {result.stats}")
    failures = 0
    for candidate in result.candidates:
        if candidate.error is None:
            continue
        kind = "note" if candidate.error.startswith("infeasible:") else "FAIL"
        print(
            f"{kind}: {candidate.name}: {candidate.error}", file=sys.stderr
        )
        if kind == "FAIL":
            failures += 1
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(result.to_dict(), indent=2, sort_keys=True)
        )
        print(f"wrote {args.json}")
    return 1 if failures else 0


def _cmd_store_merge(args: argparse.Namespace) -> int:
    from .dse import discover_parts, merge_stores

    try:
        parts = args.parts or None
        if parts is None and not discover_parts(args.store):
            print(f"no segments to merge into {args.store}")
            return 0
        report = merge_stores(
            args.store,
            parts=parts,
            delete_parts=not args.keep_parts,
        )
    except ValueError as exc:  # StoreError
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"merged {len(report.parts)} segment(s) into {report.target}: "
        f"{report.examined} record(s) examined, {report.merged} new, "
        f"{report.updated} updated, {report.ignored} already current"
    )
    for part in report.parts:
        print(f"  {part}" + ("" if args.keep_parts else " (deleted)"))
    return 0


# -- service commands --------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServiceApp, ServiceConfig

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            jobs=args.jobs,
            store=args.store,
            cache_dir=args.cache_dir,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            max_queued=args.max_queued,
            max_inflight=args.max_inflight,
            max_trials=args.max_trials,
            trial_batch=args.trial_batch,
            engine=args.engine,
            drain_timeout=args.drain_timeout,
            log_dir=args.log_dir,
        )
        app = ServiceApp(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return app.run()


def _cmd_scenario_submit(args: argparse.Namespace) -> int:
    from .serve.client import ServiceClient, ServiceError, ServiceUnavailable

    scenario = _apply_overrides(_load_scenario_file(args.scenario), args)
    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        job = client.submit(
            scenario,
            trials=args.trials,
            seeds=args.seeds,
            engine=args.engine,
            client=args.client,
        )
        print(
            f"job {job['id']}: {job['state']}"
            + (" (served from store)" if job.get("cached") else "")
        )
        if args.no_wait or job["state"] in ("done", "failed", "cancelled"):
            final = job
        else:
            for event in client.events(job["id"]):
                line = f"  event {event['seq']}: {event['state']}"
                if "trials_done" in event:
                    line += (
                        f" [{event['trials_done']}/"
                        f"{event.get('trials_total', '?')} trials]"
                    )
                if event.get("error"):
                    line += f" — {event['error']}"
                print(line)
            final = client.job(job["id"])
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            f"hint: is a daemon running? start one with "
            f"`repro serve --port <port>`",
            file=sys.stderr,
        )
        return 2
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if final["state"] == "done" and final.get("result"):
        result = final["result"]
        print(
            f"done: total latency {result.get('total_latency', 0.0):.3f}, "
            f"{result.get('rounds', 0)} round(s)"
        )
        stats = result.get("stats")
        if stats:
            delivery = stats.get("delivery") or {}
            if "rate" in delivery:
                print(f"  delivery rate: {delivery['rate']:.4f}")
            print(f"  trials: {stats.get('n_trials', 0)}")
    elif final["state"] == "failed":
        print(f"failed: {final.get('error')}", file=sys.stderr)
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(final, indent=2, sort_keys=True)
        )
        print(f"wrote {args.json}")
    return {"done": 0, "cancelled": 3}.get(final["state"], 1)


# -- run-log inspection ------------------------------------------------------


def _cmd_logs(args: argparse.Namespace) -> int:
    from .analysis.logs import (
        exploration_story,
        load_events,
        phase_table,
        summarize_table,
        timeline_table,
    )
    from .obs import LogError

    try:
        events = load_events(
            args.source, run=args.run, kinds=args.kind or None
        )
    except (LogError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.logs_command == "summarize":
        print(f"{len(events)} event(s)")
        print(summarize_table(events))
    elif args.logs_command == "timeline":
        print(timeline_table(events, limit=args.limit))
    elif args.logs_command == "rollup":
        print(phase_table(events))
    elif args.logs_command == "story":
        story = exploration_story(events)
        print(
            f"rounds: {len(story['rounds'])} "
            f"({story['blocks_published']} block(s) published)"
        )
        print(f"shards started: {story['shards_started']}")
        print(
            f"claims: {len(story['claims'])} "
            f"({len(story['stolen'])} stolen)"
        )
        print(
            f"requeues after shard deaths: {len(story['requeues'])} "
            f"({story['blocks_requeued']} block(s))"
        )
        print(f"respawns: {len(story['respawns'])}")
        print(
            f"merges: {len(story['merges'])} "
            f"({story['executed']} campaign(s) recovered)"
        )
        for error in story["errors"]:
            print(f"shard error: {error}", file=sys.stderr)
    return 0


# -- legacy shims ------------------------------------------------------------


def _cmd_synth(args: argparse.Namespace) -> int:
    _deprecated("synth", "scenario run")
    scenario = _apply_overrides(_load_scenario_file(args.workload), args)
    experiment = Experiment(
        [scenario],
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        warm_start=args.warm_start,
    )
    outcome = experiment.run(simulate=False)
    result = outcome.results[0]
    failures = _print_scenario_result(result)
    if failures:
        return 1
    if outcome.stats is not None and args.cache_dir is not None:
        print(f"engine: {outcome.stats}")
    save_system(
        args.output,
        scenario.modes,
        result.schedules,
        transitions=scenario.transitions,
    )
    print(f"wrote {args.output}")
    return 0


def _batch_output_paths(workloads: List[str], output_dir: Path) -> List[Path]:
    """One output path per workload file, disambiguating equal stems."""
    paths: List[Path] = []
    used: dict = {}
    for workload in workloads:
        stem = Path(workload).stem
        count = used.get(stem, 0)
        used[stem] = count + 1
        suffix = f"-{count + 1}" if count else ""
        paths.append(output_dir / f"{stem}{suffix}.system.json")
    return paths


def _cmd_batch(args: argparse.Namespace) -> int:
    _deprecated("batch", "scenario sweep")
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    outputs = _batch_output_paths(args.workloads, output_dir)

    # One scenario per workload file; the Experiment shares one pool and
    # cache across all of them and dedupes identical problems.
    scenarios = []
    for workload, out in zip(args.workloads, outputs):
        scenario = _apply_overrides(_load_scenario_file(workload), args)
        scenario = dataclasses.replace(
            scenario, name=out.name[: -len(".system.json")]
        )
        scenario.validate()
        scenarios.append(scenario)

    experiment = Experiment(
        scenarios,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        warm_start=not args.no_warm_start,
    )
    outcome = experiment.run(simulate=False)

    failures = 0
    total_modes = 0
    for workload, out, result in zip(args.workloads, outputs, outcome):
        total_modes += len(result.schedules)
        file_failures = 0
        for mode in result.scenario.modes:
            report = result.reports[mode.name]
            if not report.ok:
                for violation in report.violations:
                    print(
                        f"{Path(workload).name} :: mode {mode.name!r}: "
                        f"VIOLATION {violation}",
                        file=sys.stderr,
                    )
                file_failures += 1
                continue
            schedule = result.schedules[mode.name]
            print(
                f"{Path(workload).name} :: mode {mode.name!r}: "
                f"{schedule.num_rounds} rounds, "
                f"total latency {schedule.total_latency:.3f}"
            )
        if file_failures:
            failures += file_failures
            continue  # don't write a partial/unverified system file
        save_system(
            out,
            result.scenario.modes,
            result.schedules,
            transitions=result.scenario.transitions,
        )
        print(f"wrote {out}")
    print(
        f"batch done: {total_modes} mode(s) from {len(args.workloads)} "
        f"workload file(s), engine: {outcome.stats}"
    )
    return 1 if failures else 0


# -- inspection commands ------------------------------------------------------


def _cmd_verify(args: argparse.Namespace) -> int:
    system = TTWSystem.load(args.system)
    reports = system.verify_all()
    failures = 0
    for name, report in sorted(reports.items()):
        status = "OK" if report.ok else f"{len(report.violations)} violation(s)"
        print(f"mode {name!r}: {status}")
        for violation in report.violations:
            print(f"  - {violation}")
            failures += 1
    return 1 if failures else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .runtime import BernoulliLoss

    system = TTWSystem.load(args.system)
    loss = None
    if args.loss > 0:
        loss = BernoulliLoss(
            beacon_loss=args.loss, data_loss=args.loss, seed=args.seed
        )
    trace = system.simulate(duration=args.duration, loss=loss)
    print(f"rounds executed:   {len(trace.rounds)}")
    print(f"collision-free:    {trace.collision_free}")
    print(f"delivery rate:     {trace.delivery_rate():.4f}")
    print(f"on-time rate:      {trace.on_time_rate():.4f}")
    print(f"chain success:     {trace.chain_success_rate():.4f}")
    return 0 if trace.collision_free else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.figure in ("6", "all"):
        data = fig6_round_length()
        print(f"Fig. 6: Tr [ms], payload {data.payload_bytes} B, N=2")
        headers = ["H \\ B"] + [str(b) for b in data.slots]
        rows = [[h] + [data.grid[h][b] for b in data.slots]
                for h in data.diameters]
        print(format_table(headers, rows, float_fmt="{:.1f}"))
    if args.figure in ("7", "all"):
        data = fig7_energy_savings()
        print(f"\nFig. 7: energy saving E, H={data.diameter}, N=2")
        for payload in data.payloads:
            print(format_series(f"l={payload}B", list(data.slots),
                                data.series[payload]))
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    system = TTWSystem.load(args.system)
    names = [args.mode] if args.mode else sorted(system.schedules)
    for name in names:
        if name not in system.schedules:
            print(f"unknown mode {name!r}", file=sys.stderr)
            return 1
        mode = system.mode_graph.modes[name]
        print(f"=== mode {name!r} ===")
        print(render_gantt(mode, system.schedules[name], width=args.width))
    return 0


# -- parser ------------------------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-j", "--jobs", type=_positive_int, default=1,
                        help="parallel solver processes (default: 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent schedule cache directory")
    parser.add_argument("--backend", default=None,
                        choices=list(available_backends()),
                        help="solver backend override (cache keys include "
                             "the backend, so backends never share entries)")
    parser.add_argument("--time-limit", type=_positive_float, default=None,
                        help="per-ILP wall-clock limit in seconds (> 0)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TTW (DATE 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser(
        "scenario", help="declarative scenario workflows (repro.api)"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)

    run = scenario_sub.add_parser(
        "run", help="synthesize + verify + simulate one scenario file"
    )
    run.add_argument("scenario", help="scenario JSON (or legacy workload spec)")
    run.add_argument("-o", "--output", default=None,
                     help="write the system image (modes + schedules + "
                          "transitions) here")
    run.add_argument("--warm-start", action="store_true",
                     help="start Algorithm 1 at the demand lower bound "
                          "(default: off — the paper's exact loop)")
    run.add_argument("--no-simulate", action="store_true",
                     help="skip the scenario's simulation phase")
    _add_engine_flags(run)
    run.set_defaults(func=_cmd_scenario_run)

    sweep = scenario_sub.add_parser(
        "sweep", help="run many scenario files over one pool/cache"
    )
    sweep.add_argument("scenarios", nargs="+",
                       help="scenario JSON files (or legacy workload specs)")
    sweep.add_argument("-O", "--output-dir", default=None,
                       help="write <name>.system.json images here")
    sweep.add_argument("--no-warm-start", action="store_true",
                       help="disable the demand-bound warm start "
                            "(sweeps default to warm starts ON; schedules "
                            "are identical either way)")
    sweep.add_argument("--no-simulate", action="store_true",
                       help="skip all simulation phases")
    _add_engine_flags(sweep)
    sweep.set_defaults(func=_cmd_scenario_sweep)

    mc = scenario_sub.add_parser(
        "mc",
        help="Monte-Carlo campaign: trials x seeds x loss-parameter grid",
    )
    mc.add_argument("scenario", help="scenario JSON (or legacy workload spec)")
    mc.add_argument("-t", "--trials", type=_positive_int, default=None,
                    help="trials per grid point (default: the scenario's "
                         "simulation.trials)")
    mc.add_argument("--seeds", type=_seed_list, default=None,
                    help="comma-separated explicit trial seeds (override "
                         "--trials; reused at every grid point)")
    mc.add_argument("--sweep", type=_sweep_item, action="append",
                    default=None, metavar="PARAM=V1,V2,...",
                    help="sweep a loss parameter over values (repeatable; "
                         "the cartesian product is evaluated)")
    mc.add_argument("--flows", action="store_true",
                    help="also print the per-flow deadline-miss tables")
    mc.add_argument("--json", default=None, metavar="FILE",
                    help="write the aggregated statistics as JSON")
    mc.add_argument("--engine", choices=["fast", "vectorized", "reference"],
                    default="fast",
                    help="trial engine: 'fast' runs compiled round "
                         "programs (trace-free, falls back to the "
                         "reference simulator for unsupported "
                         "features); 'vectorized' batches all trials "
                         "of a grid point into tensor programs "
                         "(distribution-equivalent, falls back "
                         "vectorized->fast->reference); 'reference' "
                         "always walks the object-level simulator "
                         "(bit-identical to 'fast', mainly for "
                         "cross-checks)")
    mc.add_argument("--no-warm-start", action="store_true",
                    help="disable the demand-bound warm start (campaigns "
                         "default to warm starts ON; schedules are "
                         "identical either way)")
    mc.add_argument("--log-dir", default=None, metavar="DIR",
                    help="write a structured run log (JSONL event file, "
                         "see `repro logs`) into this directory")
    mc.add_argument("-v", "--verbose", action="store_true",
                    help="also print per-phase wall-clock durations "
                         "(synthesis / simulation / aggregation)")
    _add_engine_flags(mc)
    mc.set_defaults(func=_cmd_scenario_mc)

    explore = scenario_sub.add_parser(
        "explore",
        help="design-space exploration: Pareto search over a parameter "
             "space with a resumable result store (repro.dse)",
    )
    explore.add_argument(
        "space",
        help="space JSON (kind='space': base scenario + axes), or a "
             "scenario file combined with --axis flags",
    )
    explore.add_argument(
        "--axis", type=_axis_item, action="append", default=None,
        metavar="TARGET=V1,V2,...",
        help="add an axis (repeatable): TARGET is a registered transform "
             "(slots, payload, round_length, backend, policy, "
             "period_scale) or a dotted path (config.*, radio.*, "
             "simulation.*, loss.params.*); overrides a same-named axis "
             "from the space file",
    )
    explore.add_argument(
        "--derive", default=None, metavar="NAME",
        help="post-assignment deriver, e.g. 'glossy_timing' (recompute "
             "the round length from payload/diameter/slots per "
             "candidate); pass '' to clear the space file's deriver",
    )
    explore.add_argument(
        "--sampler",
        choices=["grid", "random", "halton", "adaptive", "surrogate"],
        default="grid",
        help="candidate selection: exhaustive grid (default), seeded "
             "uniform sample, low-discrepancy halton sample, the "
             "adaptive successive-halving pruner over analytic bounds, "
             "or the model-guided surrogate (ridge regression + "
             "expected improvement vs. the measured front)",
    )
    explore.add_argument(
        "--samples", type=_positive_int, default=None,
        help="candidate budget: random/halton draw size (default 16), "
             "adaptive survivor target and surrogate campaign budget "
             "(default: half the grid)",
    )
    explore.add_argument(
        "--sampler-seed", type=int, default=None,
        help="seed of the random/surrogate sampler (default 0)",
    )
    explore.add_argument(
        "--shards", type=_positive_int, default=1,
        help="fan candidate evaluation out over this many shard "
             "processes with work stealing (requires --store; each "
             "shard appends to its own store.part-<n> segment, merged "
             "back after every round; default %(default)s = in-process)",
    )
    explore.add_argument(
        "--objectives", type=_objective_list,
        default=["energy", "latency", "miss"], metavar="NAME,NAME,...",
        help="objectives spanning the Pareto front (default "
             "energy,latency,miss; see repro.dse.available_objectives)",
    )
    explore.add_argument(
        "-t", "--trials", type=_positive_int, default=None,
        help="MC trials per candidate (default: the scenario's "
             "simulation.trials)",
    )
    explore.add_argument(
        "--seeds", type=_seed_list, default=None,
        help="comma-separated explicit trial seeds, shared by every "
             "candidate (common random numbers across the space)",
    )
    explore.add_argument(
        "--store", default=None, metavar="FILE",
        help="persistent result store (SQLite for .sqlite/.db suffixes, "
             "JSONL otherwise); stored evaluations are reused, so "
             "repeated invocations are incremental",
    )
    explore.add_argument(
        "--resume", action="store_true",
        help="require an existing --store and continue it (same "
             "behavior as a plain incremental run, but fails fast when "
             "the store file is missing)",
    )
    explore.add_argument(
        "--engine", choices=["fast", "vectorized", "reference"],
        default="fast",
        help="trial engine ('fast' compiles round programs, default; "
             "'vectorized' batches trials into tensor programs, "
             "distribution-equivalent; 'reference' is bit-identical "
             "to 'fast')",
    )
    explore.add_argument(
        "--all", action="store_true",
        help="print every scored candidate, not only the Pareto front",
    )
    explore.add_argument(
        "--json", default=None, metavar="FILE",
        help="write the exploration result (candidates, front, engine "
             "counters) as JSON",
    )
    explore.add_argument(
        "--no-warm-start", action="store_true",
        help="disable the demand-bound warm start (explorations default "
             "to warm starts ON; schedules are identical either way)",
    )
    explore.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help="write a structured run log (JSONL; shard processes append "
             "their own segments, merged at round barriers — see "
             "`repro logs`) into this directory",
    )
    _add_engine_flags(explore)
    explore.set_defaults(func=_cmd_scenario_explore)

    submit = scenario_sub.add_parser(
        "submit",
        help="submit a scenario to a running `repro serve` daemon and "
             "follow its event stream",
    )
    submit.add_argument("scenario",
                        help="scenario JSON (or legacy workload spec)")
    submit.add_argument("--url", default="http://127.0.0.1:8080",
                        help="daemon base URL (default %(default)s)")
    submit.add_argument("-t", "--trials", type=_positive_int, default=None,
                        help="trials (default: the scenario's "
                             "simulation.trials)")
    submit.add_argument("--seeds", type=_seed_list, default=None,
                        help="comma-separated explicit trial seeds "
                             "(override --trials)")
    submit.add_argument("--engine",
                        choices=["fast", "vectorized", "reference"],
                        default=None,
                        help="trial engine override (default: the "
                             "daemon's --engine)")
    submit.add_argument("--client", default=None,
                        help="client label shown in the daemon's job list")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return immediately "
                             "instead of streaming events")
    submit.add_argument("--timeout", type=_positive_float, default=300.0,
                        help="per-request socket timeout in seconds "
                             "(default %(default)s)")
    submit.add_argument("--json", default=None, metavar="FILE",
                        help="write the final job record as JSON")
    submit.add_argument("--backend", default=None,
                        choices=list(available_backends()),
                        help="solver backend override")
    submit.add_argument("--time-limit", type=_positive_float, default=None,
                        help="per-ILP wall-clock limit in seconds (> 0)")
    submit.set_defaults(func=_cmd_scenario_submit)

    serve = sub.add_parser(
        "serve",
        help="run the toolkit as a long-running HTTP service with an "
             "async job queue, admission control, and cross-request "
             "dedup (repro.serve; see docs/SERVICE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default %(default)s)")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port; 0 picks a free one, printed on "
                            "the 'listening on' line (default %(default)s)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="queue worker threads = concurrent executions "
                            "(default %(default)s)")
    serve.add_argument("-j", "--jobs", type=_positive_int, default=1,
                       help="trial worker processes in the resident pool; "
                            "1 runs trials in the worker thread "
                            "(default %(default)s)")
    serve.add_argument("--store", default=None, metavar="FILE",
                       help="persistent result store (SQLite for "
                            ".sqlite/.db suffixes, JSONL otherwise); "
                            "shared with `scenario explore --store`, and "
                            "the daemon resumes from it after a restart")
    serve.add_argument("--cache-dir", default=None,
                       help="persistent schedule cache directory shared "
                            "by all requests")
    serve.add_argument("--cache-entries", type=_positive_int, default=None,
                       help="schedule-cache LRU bound: max entries")
    serve.add_argument("--cache-bytes", type=_positive_int, default=None,
                       help="schedule-cache LRU bound: max total bytes")
    serve.add_argument("--max-queued", type=_positive_int, default=64,
                       help="admission: executions allowed to wait before "
                            "submissions get HTTP 429 (default %(default)s)")
    serve.add_argument("--max-inflight", type=_positive_int, default=None,
                       help="executions running at once (default: "
                            "--workers)")
    serve.add_argument("--max-trials", type=_positive_int, default=100_000,
                       help="admission: per-job trial budget; bigger "
                            "requests get HTTP 429 (default %(default)s)")
    serve.add_argument("--trial-batch", type=_positive_int, default=16,
                       help="trials per execution batch — the progress "
                            "and cancellation granularity "
                            "(default %(default)s)")
    serve.add_argument("--engine",
                       choices=["fast", "vectorized", "reference"],
                       default="fast",
                       help="default trial engine for submissions that "
                            "name none (default %(default)s)")
    serve.add_argument("--drain-timeout", type=_positive_float, default=60.0,
                       help="seconds a graceful shutdown waits for "
                            "admitted jobs (default %(default)s)")
    serve.add_argument("--log-dir", default=None, metavar="DIR",
                       help="write a structured run log (JSONL event "
                            "file, see `repro logs`) for the daemon's "
                            "lifetime into this directory")
    serve.set_defaults(func=_cmd_serve)

    synth = sub.add_parser(
        "synth", help="[deprecated: use `scenario run`] synthesize schedules"
    )
    synth.add_argument("workload", help="workload spec JSON")
    synth.add_argument("-o", "--output", default="system.json")
    synth.add_argument("--warm-start", action="store_true",
                       help="start Algorithm 1 at the demand lower bound "
                            "(default: off — the paper's exact loop)")
    _add_engine_flags(synth)
    synth.set_defaults(func=_cmd_synth)

    batch = sub.add_parser(
        "batch",
        help="[deprecated: use `scenario sweep`] synthesize many workload "
             "files over one pool/cache",
    )
    batch.add_argument("workloads", nargs="+", help="workload spec JSON files")
    batch.add_argument("-O", "--output-dir", default=".",
                       help="directory for <stem>.system.json outputs")
    batch.add_argument("--no-warm-start", action="store_true",
                       help="disable the demand-bound warm start "
                            "(batch defaults to warm starts ON, unlike "
                            "synth; schedules are identical either way)")
    _add_engine_flags(batch)
    batch.set_defaults(func=_cmd_batch)

    verify = sub.add_parser("verify", help="verify a system file")
    verify.add_argument("system")
    verify.set_defaults(func=_cmd_verify)

    simulate = sub.add_parser("simulate", help="execute a system file")
    simulate.add_argument("system")
    simulate.add_argument("-d", "--duration", type=float, default=1000.0)
    simulate.add_argument("--loss", type=float, default=0.0)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.set_defaults(func=_cmd_simulate)

    figures = sub.add_parser("figures", help="print Fig. 6/7 data")
    figures.add_argument("figure", choices=["6", "7", "all"], default="all",
                         nargs="?")
    figures.set_defaults(func=_cmd_figures)

    gantt = sub.add_parser("gantt", help="ASCII schedule chart")
    gantt.add_argument("system")
    gantt.add_argument("-m", "--mode", default=None)
    gantt.add_argument("-w", "--width", type=int, default=72)
    gantt.set_defaults(func=_cmd_gantt)

    store = sub.add_parser(
        "store",
        help="result-store maintenance (repro.dse stores)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    merge = store_sub.add_parser(
        "merge",
        help="merge partitioned store segments (store.part-<n>) into "
             "the main store, deduping by candidate key (newest wins) "
             "— recovers the completed work of a killed distributed "
             "exploration",
    )
    merge.add_argument(
        "store", metavar="STORE",
        help="the main result store (JSONL or SQLite by suffix); "
             "created if missing",
    )
    merge.add_argument(
        "parts", nargs="*", metavar="PART",
        help="segment files to merge (default: every "
             "<stem>.part-<n><suffix> sibling of STORE)",
    )
    merge.add_argument(
        "--keep-parts", action="store_true",
        help="leave the segment files in place (default: delete each "
             "segment after a successful merge)",
    )
    merge.set_defaults(func=_cmd_store_merge)

    logs = sub.add_parser(
        "logs",
        help="inspect structured run logs written by --log-dir "
             "(repro.obs; see docs/OBSERVABILITY.md)",
    )
    logs_sub = logs.add_subparsers(dest="logs_command", required=True)

    def _add_logs_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "source",
            help="a run-log file (unmerged .part-* segments are picked "
                 "up automatically) or a directory of *.jsonl logs",
        )
        command.add_argument(
            "--run", default=None, metavar="RUN_ID",
            help="only events of this run id",
        )
        command.add_argument(
            "--kind", action="append", default=None, metavar="KIND",
            help="only events of this kind (repeatable)",
        )
        command.set_defaults(func=_cmd_logs)

    summarize = logs_sub.add_parser(
        "summarize",
        help="one row per event kind: count, writers, first/last offset",
    )
    _add_logs_flags(summarize)
    timeline = logs_sub.add_parser(
        "timeline",
        help="globally ordered event table with offsets from the first "
             "event",
    )
    _add_logs_flags(timeline)
    timeline.add_argument(
        "--limit", type=_positive_int, default=None, metavar="N",
        help="show at most N events (default: all)",
    )
    rollup = logs_sub.add_parser(
        "rollup",
        help="per-phase duration rollup from timed-span events "
             "(synthesize / verify / simulate / aggregate)",
    )
    _add_logs_flags(rollup)
    story = logs_sub.add_parser(
        "story",
        help="reconstruct a sharded exploration from its events: rounds "
             "published, blocks claimed/stolen, requeues, respawns, "
             "merges",
    )
    _add_logs_flags(story)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Ctrl-C: pools have already been shut down on the way up
        # (TrialPool.map terminates its workers, which ignore SIGINT),
        # so no worker tracebacks land on the terminal — just report
        # and exit with the interactive-interrupt convention.
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # `repro ... | head` closed the pipe; exit quietly (the
        # conventional 128 + SIGPIPE code) without a traceback.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 141
    except (
        ScenarioError,
        SerializationError,
        json.JSONDecodeError,
        FileNotFoundError,
        KeyError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
