"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``synth``    — synthesize schedules for a workload JSON file and
  write the system image (modes + schedules) back to disk;
* ``verify``   — re-verify every schedule in a system file;
* ``simulate`` — execute a system file for a given duration and print
  trace statistics;
* ``figures``  — print the paper's Fig. 6 / Fig. 7 data;
* ``gantt``    — render a mode's schedule as an ASCII chart.

The workload JSON for ``synth`` is a list of mode records (see
:func:`repro.io.serialize.mode_from_dict`) plus a ``config`` record::

    {
      "config": {"round_length": 50.0, "slots_per_round": 5,
                  "max_round_gap": null},
      "modes": [ { "name": ..., "applications": [...] } ]
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import (
    fig6_round_length,
    fig7_energy_savings,
    format_series,
    format_table,
    render_gantt,
)
from .io.serialize import (
    SerializationError,
    config_from_dict,
    mode_from_dict,
)
from .system import TTWSystem


def _cmd_synth(args: argparse.Namespace) -> int:
    spec = json.loads(Path(args.workload).read_text())
    config = config_from_dict(spec["config"])
    system = TTWSystem(config, warm_start=args.warm_start)
    for record in spec["modes"]:
        system.add_mode(mode_from_dict(record))
    schedules = system.synthesize_all()
    for name, schedule in sorted(schedules.items()):
        print(
            f"mode {name!r}: {schedule.num_rounds} rounds, "
            f"total latency {schedule.total_latency:.3f}"
        )
    system.save(args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    system = TTWSystem.load(args.system)
    reports = system.verify_all()
    failures = 0
    for name, report in sorted(reports.items()):
        status = "OK" if report.ok else f"{len(report.violations)} violation(s)"
        print(f"mode {name!r}: {status}")
        for violation in report.violations:
            print(f"  - {violation}")
            failures += 1
    return 1 if failures else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .runtime import BernoulliLoss

    system = TTWSystem.load(args.system)
    loss = None
    if args.loss > 0:
        loss = BernoulliLoss(
            beacon_loss=args.loss, data_loss=args.loss, seed=args.seed
        )
    trace = system.simulate(duration=args.duration, loss=loss)
    print(f"rounds executed:   {len(trace.rounds)}")
    print(f"collision-free:    {trace.collision_free}")
    print(f"delivery rate:     {trace.delivery_rate():.4f}")
    print(f"on-time rate:      {trace.on_time_rate():.4f}")
    print(f"chain success:     {trace.chain_success_rate():.4f}")
    return 0 if trace.collision_free else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.figure in ("6", "all"):
        data = fig6_round_length()
        print(f"Fig. 6: Tr [ms], payload {data.payload_bytes} B, N=2")
        headers = ["H \\ B"] + [str(b) for b in data.slots]
        rows = [[h] + [data.grid[h][b] for b in data.slots]
                for h in data.diameters]
        print(format_table(headers, rows, float_fmt="{:.1f}"))
    if args.figure in ("7", "all"):
        data = fig7_energy_savings()
        print(f"\nFig. 7: energy saving E, H={data.diameter}, N=2")
        for payload in data.payloads:
            print(format_series(f"l={payload}B", list(data.slots),
                                data.series[payload]))
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    system = TTWSystem.load(args.system)
    names = [args.mode] if args.mode else sorted(system.schedules)
    for name in names:
        if name not in system.schedules:
            print(f"unknown mode {name!r}", file=sys.stderr)
            return 1
        mode = system.mode_graph.modes[name]
        print(f"=== mode {name!r} ===")
        print(render_gantt(mode, system.schedules[name], width=args.width))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TTW (DATE 2018) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="synthesize schedules")
    synth.add_argument("workload", help="workload spec JSON")
    synth.add_argument("-o", "--output", default="system.json")
    synth.add_argument("--warm-start", action="store_true")
    synth.set_defaults(func=_cmd_synth)

    verify = sub.add_parser("verify", help="verify a system file")
    verify.add_argument("system")
    verify.set_defaults(func=_cmd_verify)

    simulate = sub.add_parser("simulate", help="execute a system file")
    simulate.add_argument("system")
    simulate.add_argument("-d", "--duration", type=float, default=1000.0)
    simulate.add_argument("--loss", type=float, default=0.0)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.set_defaults(func=_cmd_simulate)

    figures = sub.add_parser("figures", help="print Fig. 6/7 data")
    figures.add_argument("figure", choices=["6", "7", "all"], default="all",
                         nargs="?")
    figures.set_defaults(func=_cmd_figures)

    gantt = sub.add_parser("gantt", help="ASCII schedule chart")
    gantt.add_argument("system")
    gantt.add_argument("-m", "--mode", default=None)
    gantt.add_argument("-w", "--width", type=int, default=72)
    gantt.set_defaults(func=_cmd_gantt)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (SerializationError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
