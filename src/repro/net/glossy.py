"""Glossy flood simulator (paper Sec. II, [11]).

Glossy floods a packet through the whole network by synchronous
per-hop retransmission: the initiator transmits in hop-step 0, every
node that first receives the packet in step ``t`` retransmits in step
``t + 1``, and every node transmits the packet at most ``N`` times.
After ``H + 2N - 1`` steps (eq. 14) the flood terminates.

The simulator models independent per-link reception probabilities and
reproduces Glossy's two key published properties, which the tests
check:

* with ideal links, *every* node receives the packet and the flood
  creates a virtual single-hop network;
* with per-link success ``p ≈ 0.9`` and ``N = 2``, flood-level
  reliability exceeds 99 % (the paper cites > 99.9 % measured).

Radio-on accounting follows the paper's Fig. 5 assumption: each
participating node keeps its radio on for the whole flood.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.rng import make_rng
from ..timing import DEFAULT_CONSTANTS, GlossyConstants, hop_time
from .topology import Topology


@dataclass
class FloodResult:
    """Outcome of one simulated Glossy flood.

    Attributes:
        initiator: Node that started the flood.
        received: Nodes that received the packet (includes initiator).
        first_rx_step: Hop-step of first reception per node (0 for the
            initiator); nodes that never received are absent.
        tx_counts: Transmissions performed per node.
        num_steps: Hop-steps the flood lasted (``H + 2N - 1``).
        duration: Flood duration in seconds for the given payload.
        radio_on_per_node: Radio-on seconds per node (whole flood).
    """

    initiator: str
    received: Set[str]
    first_rx_step: Dict[str, int]
    tx_counts: Dict[str, int]
    num_steps: int
    duration: float
    radio_on_per_node: Dict[str, float]

    def delivered_to_all(self, nodes) -> bool:
        return set(nodes) <= self.received

    @property
    def coverage(self) -> float:
        """Fraction of nodes that received the packet."""
        total = len(self.radio_on_per_node)
        return len(self.received) / total if total else 0.0


class GlossySimulator:
    """Simulates Glossy floods over a :class:`Topology`.

    Args:
        topology: The multi-hop network.
        link_success: Per-link, per-step reception probability in
            (0, 1]; 1.0 models ideal links.
        constants: Radio constants; ``constants.n_tx`` is Glossy's N.
        seed: RNG seed for reproducible loss patterns — an integer, a
            ``random.Random``, a ``numpy.random.Generator``, or ``None``
            (see :func:`repro.core.rng.make_rng`).
    """

    def __init__(
        self,
        topology: Topology,
        link_success: float = 1.0,
        constants: GlossyConstants = DEFAULT_CONSTANTS,
        seed: "Optional[int | random.Random]" = None,
    ) -> None:
        if not 0.0 < link_success <= 1.0:
            raise ValueError("link_success must be in (0, 1]")
        self.topology = topology
        self.link_success = link_success
        self.constants = constants
        self._rng = make_rng(seed)

    def flood(self, initiator: str, payload_bytes: int) -> FloodResult:
        """Run one flood and return the per-node outcome.

        Args:
            initiator: Node transmitting first (the slot owner).
            payload_bytes: Payload size ``l`` (sets the hop time).
        """
        if initiator not in self.topology.graph:
            raise ValueError(f"initiator {initiator!r} not in topology")
        n_tx = self.constants.n_tx
        num_steps = self.topology.diameter + 2 * n_tx - 1

        received: Set[str] = {initiator}
        first_rx: Dict[str, int] = {initiator: 0}
        tx_counts: Dict[str, int] = {node: 0 for node in self.topology.nodes}
        # Nodes scheduled to transmit in the current step.
        transmitting: Set[str] = {initiator}

        for step in range(num_steps):
            if not transmitting:
                break
            new_receivers: Set[str] = set()
            # Sorted iteration keeps the RNG consumption order — and so
            # the sampled flood — identical across processes and hash
            # seeds; the Monte-Carlo layer depends on this determinism.
            for sender in sorted(transmitting):
                tx_counts[sender] += 1
                for neighbor in sorted(self.topology.graph.neighbors(sender)):
                    if neighbor in received or neighbor in new_receivers:
                        continue
                    if (
                        self.link_success >= 1.0
                        or self._rng.random() < self.link_success
                    ):
                        new_receivers.add(neighbor)
            for node in new_receivers:
                received.add(node)
                first_rx[node] = step + 1
            # Next step: fresh receivers relay, plus prior transmitters
            # that still have retransmissions left.
            transmitting = {
                node
                for node in (set(transmitting) | new_receivers)
                if tx_counts[node] < n_tx and node in received
            }

        per_hop = hop_time(payload_bytes, self.constants)
        duration = num_steps * per_hop
        radio_on = {node: duration for node in self.topology.nodes}
        return FloodResult(
            initiator=initiator,
            received=received,
            first_rx_step=first_rx,
            tx_counts=tx_counts,
            num_steps=num_steps,
            duration=duration,
            radio_on_per_node=radio_on,
        )

    def flood_reliability(
        self, initiator: str, payload_bytes: int, trials: int = 200
    ) -> float:
        """Monte-Carlo estimate of full-network delivery probability."""
        if trials < 1:
            raise ValueError("trials must be >= 1")
        successes = sum(
            1
            for _ in range(trials)
            if self.flood(initiator, payload_bytes).delivered_to_all(
                self.topology.nodes
            )
        )
        return successes / trials
