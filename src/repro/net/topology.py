"""Multi-hop network topologies for the wireless substrate.

TTW runs over an arbitrary multi-hop network (paper Fig. 1(a)); the
only topology parameter entering the timing model is the network
diameter ``H``.  This module builds common research topologies and
computes hop distances used by the Glossy flood simulator.

Two builders additionally place nodes in 2-D space — :func:`grid2d`
(regular lattice) and :func:`uniform_random` (uniform placement in a
square, linked within a communication range).  Their per-node
coordinates live in :attr:`Topology.positions` and feed the
position-derived propagation models (``spatial`` loss, see
:mod:`repro.runtime.loss`).  Placement is a deterministic function of
the builder parameters — including the seed — so a scenario file's
``{"kind", "params"}`` topology description reproduces the *same*
coordinates in every process; explicit ``positions`` parameters
round-trip through scenario JSON unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..core.rng import make_rng


class TopologyError(ValueError):
    """Raised for malformed or disconnected topologies."""


@dataclass
class Topology:
    """A connected multi-hop network with a designated host node.

    Attributes:
        graph: Undirected connectivity graph; nodes are string ids.
        host: The central host node (sends beacons, runs Algorithm 1
            offline).
        positions: Optional per-node 2-D coordinates (meters) — set by
            the spatial builders (:func:`grid2d`,
            :func:`uniform_random`) and required by position-derived
            loss models (``spatial``).
    """

    graph: nx.Graph
    host: str
    positions: Optional[Dict[str, Tuple[float, float]]] = None

    def __post_init__(self) -> None:
        if self.host not in self.graph:
            raise TopologyError(f"host {self.host!r} not in the graph")
        if self.graph.number_of_nodes() == 0:
            raise TopologyError("empty topology")
        if not nx.is_connected(self.graph):
            raise TopologyError("topology must be connected")
        if self.positions is not None:
            missing = sorted(set(self.graph.nodes) - set(self.positions))
            if missing:
                raise TopologyError(
                    f"positions missing for nodes: {missing}"
                )
            self.positions = {
                name: (float(x), float(y))
                for name, (x, y) in self.positions.items()
                if name in self.graph
            }

    def distance(self, a: str, b: str) -> float:
        """Euclidean distance between two placed nodes (meters)."""
        if self.positions is None:
            raise TopologyError(
                f"topology has no node positions; build it with a spatial "
                f"kind (grid2d, uniform_random) or pass explicit positions"
            )
        ax, ay = self.positions[a]
        bx, by = self.positions[b]
        return math.hypot(ax - bx, ay - by)

    @property
    def nodes(self) -> List[str]:
        return sorted(self.graph.nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def diameter(self) -> int:
        """Network diameter ``H`` — the timing model's hop count input."""
        return nx.diameter(self.graph)

    def hop_distance(self, source: str, target: str) -> int:
        return nx.shortest_path_length(self.graph, source, target)

    def hops_from(self, source: str) -> Dict[str, int]:
        """Hop distance from ``source`` to every node."""
        return dict(nx.single_source_shortest_path_length(self.graph, source))

    def neighbors(self, node: str) -> List[str]:
        return sorted(self.graph.neighbors(node))

    def validate_mapping(self, task_nodes: Iterable[str]) -> None:
        """Check that every task-hosting node exists in the topology."""
        missing = sorted(set(task_nodes) - set(self.graph.nodes))
        if missing:
            raise TopologyError(f"task nodes not in topology: {missing}")


def line(num_nodes: int, host_index: int = 0) -> Topology:
    """A line of ``num_nodes`` nodes — diameter ``num_nodes - 1``."""
    if num_nodes < 1:
        raise TopologyError("need at least one node")
    graph = nx.path_graph(num_nodes)
    graph = nx.relabel_nodes(graph, {i: f"n{i}" for i in range(num_nodes)})
    return Topology(graph=graph, host=f"n{host_index}")


def star(num_leaves: int) -> Topology:
    """A star with the host at the hub — diameter 2 (or 1 for one leaf)."""
    if num_leaves < 1:
        raise TopologyError("need at least one leaf")
    graph = nx.Graph()
    graph.add_node("host")
    for i in range(num_leaves):
        graph.add_edge("host", f"n{i}")
    return Topology(graph=graph, host="host")


def grid(rows: int, cols: int) -> Topology:
    """A rows x cols 4-connected grid, host at a corner."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    graph = nx.grid_2d_graph(rows, cols)
    graph = nx.relabel_nodes(graph, {(r, c): f"n{r}_{c}" for r, c in graph.nodes})
    return Topology(graph=graph, host="n0_0")


def ring(num_nodes: int) -> Topology:
    """A cycle of ``num_nodes`` nodes — diameter ``floor(n/2)``."""
    if num_nodes < 3:
        raise TopologyError("ring needs at least 3 nodes")
    graph = nx.cycle_graph(num_nodes)
    graph = nx.relabel_nodes(graph, {i: f"n{i}" for i in range(num_nodes)})
    return Topology(graph=graph, host="n0")


def random_geometric(
    num_nodes: int,
    radius: float = 0.35,
    seed: int = 1,
    max_attempts: int = 50,
) -> Topology:
    """A connected random-geometric network (typical testbed layout).

    Nodes are dropped uniformly in the unit square and linked when
    within ``radius``; resamples until connected.

    Raises:
        TopologyError: if no connected sample is found within
            ``max_attempts`` (increase ``radius``).
    """
    if num_nodes < 1:
        raise TopologyError("need at least one node")
    for attempt in range(max_attempts):
        graph = nx.random_geometric_graph(
            num_nodes, radius, seed=seed + attempt
        )
        if nx.is_connected(graph):
            graph = nx.relabel_nodes(
                graph, {i: f"n{i}" for i in range(num_nodes)}
            )
            return Topology(graph=graph, host="n0")
    raise TopologyError(
        f"no connected random-geometric graph with n={num_nodes}, "
        f"r={radius} after {max_attempts} attempts"
    )


def diameter_line(diameter: int) -> Topology:
    """Smallest line topology with exactly the requested diameter ``H``."""
    if diameter < 1:
        raise TopologyError("diameter must be >= 1")
    return line(diameter + 1)


def grid2d(rows: int, cols: int, spacing: float = 10.0) -> Topology:
    """A rows x cols 4-connected lattice *with coordinates*.

    Like :func:`grid` but every node ``n{r}_{c}`` is placed at
    ``(r * spacing, c * spacing)`` meters, so position-derived loss
    models (``spatial``) can compute per-link path loss.  Host at the
    corner ``n0_0``.
    """
    if rows < 1 or cols < 1:
        raise TopologyError("grid2d needs positive dimensions")
    if spacing <= 0:
        raise TopologyError(f"grid2d spacing must be > 0, got {spacing}")
    graph = nx.grid_2d_graph(rows, cols)
    positions = {
        f"n{r}_{c}": (r * float(spacing), c * float(spacing))
        for r, c in graph.nodes
    }
    graph = nx.relabel_nodes(graph, {(r, c): f"n{r}_{c}" for r, c in graph.nodes})
    return Topology(graph=graph, host="n0_0", positions=positions)


def uniform_random(
    num_nodes: Optional[int] = None,
    side: float = 100.0,
    comm_range: float = 40.0,
    seed: int = 1,
    max_attempts: int = 50,
    positions: Optional[Dict[str, Tuple[float, float]]] = None,
    host: Optional[str] = None,
) -> Topology:
    """Uniform random placement in a ``side`` x ``side`` square (meters).

    Nodes ``n0..n{k-1}`` are dropped uniformly at random and linked
    when within ``comm_range`` meters; placement resamples (seed + attempt)
    until the graph is connected.  Placement is a pure function of the
    parameters, so rebuilding from a scenario file's ``kind``/``params``
    reproduces identical coordinates in every process.

    Passing ``positions`` (a ``{name: [x, y]}`` mapping, as persisted
    through Scenario JSON) skips random placement and uses the given
    coordinates verbatim — the round-trip path for externally surveyed
    deployments.

    Raises:
        TopologyError: if no connected sample is found within
            ``max_attempts`` (increase ``comm_range`` or ``side`` density).
    """
    if positions is not None:
        placed = {
            str(name): (float(x), float(y))
            for name, (x, y) in positions.items()
        }
        if not placed:
            raise TopologyError("uniform_random: positions must be non-empty")
        graph = nx.Graph()
        graph.add_nodes_from(placed)
        names = sorted(placed)
        for i, a in enumerate(names):
            ax, ay = placed[a]
            for b in names[i + 1:]:
                bx, by = placed[b]
                if math.hypot(ax - bx, ay - by) <= comm_range:
                    graph.add_edge(a, b)
        host_node = str(host) if host is not None else names[0]
        return Topology(graph=graph, host=host_node, positions=placed)

    if num_nodes is None:
        raise TopologyError(
            "uniform_random needs num_nodes (or explicit positions)"
        )
    if num_nodes < 1:
        raise TopologyError("need at least one node")
    if side <= 0 or comm_range <= 0:
        raise TopologyError(
            f"uniform_random needs side > 0 and comm_range > 0, got "
            f"side={side}, comm_range={comm_range}"
        )
    names = [f"n{i}" for i in range(num_nodes)]
    for attempt in range(max_attempts):
        rng = make_rng(seed + attempt)
        placed = {
            name: (rng.uniform(0.0, side), rng.uniform(0.0, side))
            for name in names
        }
        graph = nx.Graph()
        graph.add_nodes_from(names)
        for i, a in enumerate(names):
            ax, ay = placed[a]
            for b in names[i + 1:]:
                bx, by = placed[b]
                if math.hypot(ax - bx, ay - by) <= comm_range:
                    graph.add_edge(a, b)
        if num_nodes == 1 or nx.is_connected(graph):
            host_node = str(host) if host is not None else "n0"
            return Topology(graph=graph, host=host_node, positions=placed)
    raise TopologyError(
        f"no connected uniform_random placement with n={num_nodes}, "
        f"side={side}, comm_range={comm_range} after {max_attempts} attempts"
    )


# -- the Scenario JSON boundary -----------------------------------------------

_BUILDERS = {
    "line": line,
    "star": star,
    "grid": grid,
    "ring": ring,
    "random_geometric": random_geometric,
    "diameter_line": diameter_line,
    "grid2d": grid2d,
    "uniform_random": uniform_random,
}


def available_topology_kinds() -> Tuple[str, ...]:
    """The topology kind names :func:`build_topology` accepts."""
    return tuple(sorted(_BUILDERS))


def build_topology(kind: str, params: Optional[dict] = None) -> Topology:
    """Build a topology from its JSON description (kind + params).

    The single boundary every serialized scenario passes through — the
    API layer's ``TopologySpec.build`` and the Monte-Carlo trial
    workers both call it.

    Raises:
        ValueError: on an unknown kind or unknown parameter names.
    """
    params = dict(params or {})
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown topology kind {kind!r}; known: "
            f"{', '.join(available_topology_kinds())}"
        ) from None
    try:
        return builder(**params)
    except TypeError as exc:
        from ..core.validation import params_error

        raise params_error(f"topology kind {kind!r}", builder, params,
                           exc) from None
