"""Multi-hop network topologies for the wireless substrate.

TTW runs over an arbitrary multi-hop network (paper Fig. 1(a)); the
only topology parameter entering the timing model is the network
diameter ``H``.  This module builds common research topologies and
computes hop distances used by the Glossy flood simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


class TopologyError(ValueError):
    """Raised for malformed or disconnected topologies."""


@dataclass
class Topology:
    """A connected multi-hop network with a designated host node.

    Attributes:
        graph: Undirected connectivity graph; nodes are string ids.
        host: The central host node (sends beacons, runs Algorithm 1
            offline).
    """

    graph: nx.Graph
    host: str

    def __post_init__(self) -> None:
        if self.host not in self.graph:
            raise TopologyError(f"host {self.host!r} not in the graph")
        if self.graph.number_of_nodes() == 0:
            raise TopologyError("empty topology")
        if not nx.is_connected(self.graph):
            raise TopologyError("topology must be connected")

    @property
    def nodes(self) -> List[str]:
        return sorted(self.graph.nodes)

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def diameter(self) -> int:
        """Network diameter ``H`` — the timing model's hop count input."""
        return nx.diameter(self.graph)

    def hop_distance(self, source: str, target: str) -> int:
        return nx.shortest_path_length(self.graph, source, target)

    def hops_from(self, source: str) -> Dict[str, int]:
        """Hop distance from ``source`` to every node."""
        return dict(nx.single_source_shortest_path_length(self.graph, source))

    def neighbors(self, node: str) -> List[str]:
        return sorted(self.graph.neighbors(node))

    def validate_mapping(self, task_nodes: Iterable[str]) -> None:
        """Check that every task-hosting node exists in the topology."""
        missing = sorted(set(task_nodes) - set(self.graph.nodes))
        if missing:
            raise TopologyError(f"task nodes not in topology: {missing}")


def line(num_nodes: int, host_index: int = 0) -> Topology:
    """A line of ``num_nodes`` nodes — diameter ``num_nodes - 1``."""
    if num_nodes < 1:
        raise TopologyError("need at least one node")
    graph = nx.path_graph(num_nodes)
    graph = nx.relabel_nodes(graph, {i: f"n{i}" for i in range(num_nodes)})
    return Topology(graph=graph, host=f"n{host_index}")


def star(num_leaves: int) -> Topology:
    """A star with the host at the hub — diameter 2 (or 1 for one leaf)."""
    if num_leaves < 1:
        raise TopologyError("need at least one leaf")
    graph = nx.Graph()
    graph.add_node("host")
    for i in range(num_leaves):
        graph.add_edge("host", f"n{i}")
    return Topology(graph=graph, host="host")


def grid(rows: int, cols: int) -> Topology:
    """A rows x cols 4-connected grid, host at a corner."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    graph = nx.grid_2d_graph(rows, cols)
    graph = nx.relabel_nodes(graph, {(r, c): f"n{r}_{c}" for r, c in graph.nodes})
    return Topology(graph=graph, host="n0_0")


def ring(num_nodes: int) -> Topology:
    """A cycle of ``num_nodes`` nodes — diameter ``floor(n/2)``."""
    if num_nodes < 3:
        raise TopologyError("ring needs at least 3 nodes")
    graph = nx.cycle_graph(num_nodes)
    graph = nx.relabel_nodes(graph, {i: f"n{i}" for i in range(num_nodes)})
    return Topology(graph=graph, host="n0")


def random_geometric(
    num_nodes: int,
    radius: float = 0.35,
    seed: int = 1,
    max_attempts: int = 50,
) -> Topology:
    """A connected random-geometric network (typical testbed layout).

    Nodes are dropped uniformly in the unit square and linked when
    within ``radius``; resamples until connected.

    Raises:
        TopologyError: if no connected sample is found within
            ``max_attempts`` (increase ``radius``).
    """
    if num_nodes < 1:
        raise TopologyError("need at least one node")
    for attempt in range(max_attempts):
        graph = nx.random_geometric_graph(
            num_nodes, radius, seed=seed + attempt
        )
        if nx.is_connected(graph):
            graph = nx.relabel_nodes(
                graph, {i: f"n{i}" for i in range(num_nodes)}
            )
            return Topology(graph=graph, host="n0")
    raise TopologyError(
        f"no connected random-geometric graph with n={num_nodes}, "
        f"r={radius} after {max_attempts} attempts"
    )


def diameter_line(diameter: int) -> Topology:
    """Smallest line topology with exactly the requested diameter ``H``."""
    if diameter < 1:
        raise TopologyError("diameter must be >= 1")
    return line(diameter + 1)


# -- the Scenario JSON boundary -----------------------------------------------

_BUILDERS = {
    "line": line,
    "star": star,
    "grid": grid,
    "ring": ring,
    "random_geometric": random_geometric,
    "diameter_line": diameter_line,
}


def available_topology_kinds() -> Tuple[str, ...]:
    """The topology kind names :func:`build_topology` accepts."""
    return tuple(sorted(_BUILDERS))


def build_topology(kind: str, params: Optional[dict] = None) -> Topology:
    """Build a topology from its JSON description (kind + params).

    The single boundary every serialized scenario passes through — the
    API layer's ``TopologySpec.build`` and the Monte-Carlo trial
    workers both call it.

    Raises:
        ValueError: on an unknown kind or unknown parameter names.
    """
    params = dict(params or {})
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown topology kind {kind!r}; known: "
            f"{', '.join(available_topology_kinds())}"
        ) from None
    try:
        return builder(**params)
    except TypeError as exc:
        from ..core.validation import params_error

        raise params_error(f"topology kind {kind!r}", builder, params,
                           exc) from None
