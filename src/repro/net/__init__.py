"""Wireless network substrate: topologies and the Glossy flood simulator."""

from .glossy import FloodResult, GlossySimulator
from .topology import (
    Topology,
    TopologyError,
    available_topology_kinds,
    build_topology,
    diameter_line,
    grid,
    grid2d,
    line,
    random_geometric,
    ring,
    star,
    uniform_random,
)

__all__ = [
    "FloodResult",
    "GlossySimulator",
    "Topology",
    "TopologyError",
    "available_topology_kinds",
    "build_topology",
    "diameter_line",
    "grid",
    "grid2d",
    "line",
    "random_geometric",
    "ring",
    "star",
    "uniform_random",
]
