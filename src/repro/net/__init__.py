"""Wireless network substrate: topologies and the Glossy flood simulator."""

from .glossy import FloodResult, GlossySimulator
from .topology import (
    Topology,
    TopologyError,
    diameter_line,
    grid,
    line,
    random_geometric,
    ring,
    star,
)

__all__ = [
    "FloodResult",
    "GlossySimulator",
    "Topology",
    "TopologyError",
    "diameter_line",
    "grid",
    "line",
    "random_geometric",
    "ring",
    "star",
]
