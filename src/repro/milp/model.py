"""MILP model container and solve entry point.

A :class:`Model` collects variables, linear constraints, and an
objective, then dispatches to a solver backend.  Two exact backends
ship with this repository:

* ``"highs"`` — :func:`scipy.optimize.milp` (HiGHS), the default;
* ``"bnb"``  — a from-scratch branch-and-bound over LP relaxations
  solved with :func:`scipy.optimize.linprog` (see
  :mod:`repro.milp.bnb`), provided as an independent reference
  implementation of the algorithmics that Gurobi performs in the paper.

Both backends solve the identical mathematical program, so they can be
cross-checked against each other (and are, in the test suite).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .expr import Constraint, LinExpr, Number, Sense, Var, VarType


class ObjectiveSense(enum.Enum):
    """Optimization direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    #: A valid integral point without an optimality proof — produced by
    #: heuristic backends (e.g. ``greedy``).
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"


@dataclass
class Solution:
    """Result of solving a model.

    Attributes:
        status: Solver outcome; values are meaningful only for
            ``OPTIMAL`` (and, best-effort, for the limit statuses).
        objective: Objective value in the model's own sense.
        values: Mapping from variable to solution value.  Integer and
            binary variables are rounded to exact integers.
        nodes: Number of branch-and-bound nodes explored (own backend
            only; 0 for HiGHS).
    """

    status: SolveStatus
    objective: float = math.nan
    values: Dict[Var, float] = field(default_factory=dict)
    nodes: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def is_feasible(self) -> bool:
        """True when ``values`` holds a valid integral point.

        ``OPTIMAL`` implies feasible; ``FEASIBLE`` is the weaker verdict
        heuristic backends return when they found a point but cannot
        prove optimality.
        """
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def __getitem__(self, var: Var) -> float:
        return self.values[var]


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Var] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: ObjectiveSense = ObjectiveSense.MINIMIZE
        self._names: Dict[str, Var] = {}

    # -- construction ---------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: Number = 0.0,
        ub: Number = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> Var:
        """Create, register, and return a new decision variable.

        Raises:
            ValueError: if ``name`` is already used in this model.
        """
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Var(name, lb=lb, ub=ub, vtype=vtype, index=len(self.variables))
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_continuous(self, name: str, lb: Number = 0.0, ub: Number = math.inf) -> Var:
        return self.add_var(name, lb, ub, VarType.CONTINUOUS)

    def add_integer(self, name: str, lb: Number = 0.0, ub: Number = math.inf) -> Var:
        return self.add_var(name, lb, ub, VarType.INTEGER)

    def add_binary(self, name: str) -> Var:
        return self.add_var(name, 0, 1, VarType.BINARY)

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (build one with <=, >=, ==); "
                f"got {type(constraint).__name__}"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(
        self, expr: LinExpr | Var | Number, sense: ObjectiveSense = ObjectiveSense.MINIMIZE
    ) -> None:
        self.objective = LinExpr.from_any(expr)
        self.sense = sense

    def var_by_name(self, name: str) -> Var:
        return self._names[name]

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.is_integral)

    # -- solving ----------------------------------------------------------
    def solve(
        self,
        backend: "str | object" = "highs",
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        tol: float = 1e-6,
        warm_start: Optional[Dict[Var, float]] = None,
    ) -> Solution:
        """Solve the model via a registered solver backend.

        Args:
            backend: A registered backend name (``"highs"``, ``"bnb"``,
                ``"greedy"``, or anything added through
                :func:`repro.milp.register_backend`) or a
                :class:`~repro.milp.backends.SolverBackend` instance.
            time_limit: Wall-clock limit in seconds (best effort).
            node_limit: Node cap for backends that search a tree.
            tol: Integrality/feasibility tolerance.
            warm_start: Optional assignment hint; exploited by backends
                whose ``info.supports_warm_start`` is True, ignored by
                the rest.
        """
        from .backends import get_backend

        solver = get_backend(backend) if isinstance(backend, str) else backend
        return solver.solve(
            self,
            time_limit=time_limit,
            node_limit=node_limit,
            tol=tol,
            warm_start=warm_start,
        )

    # -- verification -----------------------------------------------------
    def check_solution(self, solution: Solution, tol: float = 1e-5) -> List[str]:
        """Return a list of violated constraint/bound descriptions.

        Used by tests to confirm that both backends produce feasible
        points; an empty list means the solution is valid.
        """
        problems: List[str] = []
        for var in self.variables:
            if var not in solution.values:
                problems.append(f"missing value for {var.name}")
                continue
            val = solution.values[var]
            if val < var.lb - tol or val > var.ub + tol:
                problems.append(f"{var.name}={val} outside [{var.lb}, {var.ub}]")
            if var.is_integral and abs(val - round(val)) > tol:
                problems.append(f"{var.name}={val} not integral")
        for i, constr in enumerate(self.constraints):
            if not constr.satisfied(solution.values, tol=tol):
                label = constr.name or f"#{i}"
                problems.append(f"constraint {label} violated: {constr!r}")
        return problems

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"({self.num_integer_vars} int), constrs={self.num_constraints})"
        )
