"""Greedy first-fit backend: keep the first feasible point found.

The exact backends pay for optimality proofs; on huge workloads the
engine often only needs *a* feasible schedule quickly (Algorithm 1 then
guarantees schedulability, not latency-optimality).  This backend runs
the HiGHS branch-and-cut with the relative MIP gap opened all the way
(``mip_rel_gap = 1.0``), so the search stops at the **first incumbent**
— the first integral point its diving heuristics reach — instead of
closing the tree.  On the repository's scheduling ILPs this is roughly
an order of magnitude faster than the exact solve, at the cost of a
possibly suboptimal objective.

Semantics relied on elsewhere:

* infeasibility verdicts stay **exact** (the solver proves them before
  any incumbent exists), which Algorithm 1's round-minimality argument
  needs — a round count is only skipped when it is truly infeasible;
* a found point is reported as ``FEASIBLE`` rather than ``OPTIMAL``:
  it satisfies every constraint (so the schedule verifies) but the
  latency objective may be worse than the exact backends';
* results are deterministic for a given model, which the
  content-addressed schedule cache relies on.

A ``warm_start`` assignment serves as a fallback: when it is itself a
complete feasible point and the solve fails or times out, it is
returned unchanged.

Plain LP-based heuristics (diving with backtracking, a feasibility
pump) were evaluated for this seam and do not converge on the paper's
big-M-heavy scheduling ILPs: the ``ka``/``kd`` window-pinning
constraints tie each general integer to a width-<1 interval implied by
the continuous offsets, which rounding-based schemes cannot satisfy by
local moves.  First-incumbent branch-and-cut handles them natively.
"""

from __future__ import annotations

from typing import Dict, Optional

from .expr import Var
from .model import Model, Solution, SolveStatus


def _feasible_warm_start(
    model: Model, warm_start: Optional[Dict[Var, float]]
) -> Optional[Solution]:
    """The warm start as a Solution, if it is a complete feasible point."""
    if not warm_start or any(v not in warm_start for v in model.variables):
        return None
    solution = Solution(
        SolveStatus.FEASIBLE,
        objective=model.objective.value(warm_start),
        values=dict(warm_start),
    )
    if model.check_solution(solution):
        return None
    return solution


def solve_first_fit(
    model: Model,
    time_limit: Optional[float] = None,
    warm_start: Optional[Dict[Var, float]] = None,
) -> Solution:
    """Return the first feasible point of ``model`` (greedy first fit).

    Args:
        model: The MILP to solve.
        time_limit: Wall-clock cap in seconds (best effort).
        warm_start: Optional assignment; returned as the result when it
            is itself feasible and the search fails or times out.

    Returns:
        A :class:`Solution` with status ``FEASIBLE`` (valid point, no
        optimality proof), ``INFEASIBLE`` (exact verdict), or a limit
        status.
    """
    from .scipy_backend import solve_highs

    solution = solve_highs(model, time_limit=time_limit, mip_rel_gap=1.0)
    if solution.status is SolveStatus.OPTIMAL:
        # The gap criterion stopped the search at an incumbent; whether
        # it happens to be optimal is unproven — report it honestly.
        solution.status = SolveStatus.FEASIBLE
        return solution
    if not solution.is_feasible:
        fallback = _feasible_warm_start(model, warm_start)
        if fallback is not None:
            return fallback
    return solution
