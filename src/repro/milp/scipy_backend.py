"""HiGHS backend: translate a :class:`repro.milp.model.Model` to
:func:`scipy.optimize.milp` and back.

This plays the role Gurobi plays in the paper: an exact, off-the-shelf
MILP solver.  The translation builds one sparse constraint matrix with
per-row lower/upper bounds (``==`` rows get equal bounds).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from .expr import Sense, VarType
from .model import Model, ObjectiveSense, Solution, SolveStatus

#: scipy.optimize.milp status codes → our statuses.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.TIME_LIMIT,  # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_highs(
    model: Model,
    time_limit: Optional[float] = None,
    mip_rel_gap: Optional[float] = None,
) -> Solution:
    """Solve ``model`` with scipy's HiGHS MILP solver.

    Args:
        model: The MILP to solve.
        time_limit: Wall-clock limit in seconds.
        mip_rel_gap: Relative optimality gap at which the search stops;
            ``1.0`` accepts the first incumbent (the ``greedy``
            backend's first-fit mode), ``None`` proves optimality.
    """
    n = model.num_vars
    if n == 0:
        # Degenerate but legal: a model with no variables is feasible iff
        # every (constant) constraint holds.
        for constr in model.constraints:
            if not constr.satisfied({}):
                return Solution(SolveStatus.INFEASIBLE)
        return Solution(SolveStatus.OPTIMAL, objective=model.objective.constant)

    obj_sign = 1.0 if model.sense is ObjectiveSense.MINIMIZE else -1.0
    c = np.zeros(n)
    for var, coef in model.objective.terms.items():
        c[var.index] = obj_sign * coef

    lb = np.array([v.lb for v in model.variables])
    ub = np.array([v.ub for v in model.variables])
    integrality = np.array(
        [1 if v.is_integral else 0 for v in model.variables]
    )

    constraints = []
    if model.constraints:
        rows, cols, data = [], [], []
        c_lb = np.empty(len(model.constraints))
        c_ub = np.empty(len(model.constraints))
        for i, constr in enumerate(model.constraints):
            for var, coef in constr.expr.terms.items():
                rows.append(i)
                cols.append(var.index)
                data.append(coef)
            rhs = constr.rhs
            if constr.sense is Sense.LE:
                c_lb[i], c_ub[i] = -math.inf, rhs
            elif constr.sense is Sense.GE:
                c_lb[i], c_ub[i] = rhs, math.inf
            else:
                c_lb[i], c_ub[i] = rhs, rhs
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(model.constraints), n)
        )
        constraints.append(LinearConstraint(matrix, c_lb, c_ub))

    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = mip_rel_gap

    result = milp(
        c=c,
        constraints=constraints,
        bounds=Bounds(lb, ub),
        integrality=integrality,
        options=options,
    )
    if result.status == 4:
        # "Solve error": HiGHS presolve occasionally fails on the
        # big-M-heavy scheduling ILPs; retry without presolve, which
        # resolves these instances (at some speed cost).
        result = milp(
            c=c,
            constraints=constraints,
            bounds=Bounds(lb, ub),
            integrality=integrality,
            options={**options, "presolve": False},
        )

    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    if result.x is None:
        return Solution(status)

    values = {}
    for var in model.variables:
        val = float(result.x[var.index])
        if var.is_integral:
            val = float(round(val))
        values[var] = val
    objective = model.objective.value(values)
    return Solution(status, objective=objective, values=values)
