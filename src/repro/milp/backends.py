"""Pluggable solver backends: the contract and the registry.

The paper solves every scheduling ILP with one fixed solver (Gurobi).
This module turns the solver into a seam: a :class:`SolverBackend` is
anything that can solve a :class:`~repro.milp.model.Model` and report a
:class:`~repro.milp.model.Solution`, and backends are looked up by name
in a process-wide registry.  Three backends ship with the repository:

======== ======= ==========================================================
name     exact   implementation
======== ======= ==========================================================
highs    yes     :func:`scipy.optimize.milp` (HiGHS branch-and-cut)
bnb      yes     from-scratch best-bound branch-and-bound over LP
                 relaxations (:mod:`repro.milp.bnb`)
greedy   no      first-fit heuristic — the first incumbent of the
                 branch-and-cut is kept, no optimality proof
                 (:mod:`repro.milp.greedy`); trades latency optimality
                 for speed on huge workloads
======== ======= ==========================================================

The contract every backend honors:

* solve the fixed-rounds ILP handed to it (any :class:`Model`);
* report status and objective through :class:`Solution`;
* honor ``time_limit`` best-effort (``supports_time_limit``);
* accept an optional ``warm_start`` assignment and use it when it can
  (``supports_warm_start``); backends that cannot must ignore it rather
  than fail.

Downstream, the backend *name* travels inside
:class:`~repro.core.schedule.SchedulingConfig` — it is serialized with
every schedule and hashed into the persistent cache key, so schedules
solved by different backends never alias each other.

Registering a custom backend::

    from repro.milp import BackendInfo, register_backend

    class MySolver:
        info = BackendInfo(name="mysolver", exact=True,
                           supports_time_limit=False,
                           supports_warm_start=False,
                           description="...")

        def solve(self, model, *, time_limit=None, node_limit=None,
                  tol=1e-6, warm_start=None):
            ...

    register_backend(MySolver())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Protocol, Tuple, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .expr import Var
    from .model import Model, Solution


@dataclass(frozen=True)
class BackendInfo:
    """Static description of a solver backend's capabilities.

    Attributes:
        name: Registry key; also the value stored in
            :attr:`SchedulingConfig.backend` and hashed into cache keys.
        exact: True when the backend proves optimality/infeasibility.
            Heuristic backends may return ``FEASIBLE`` (a valid but
            possibly suboptimal point) and may fail to find a solution
            that exists.
        supports_time_limit: ``time_limit`` is enforced (best effort).
        supports_warm_start: a ``warm_start`` assignment is exploited;
            other backends silently ignore it.
        description: One-line human-readable summary.
    """

    name: str
    exact: bool
    supports_time_limit: bool
    supports_warm_start: bool
    description: str


@runtime_checkable
class SolverBackend(Protocol):
    """The solver contract used by Algorithm 1 and the engine."""

    info: BackendInfo

    def solve(
        self,
        model: "Model",
        *,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        tol: float = 1e-6,
        warm_start: Optional[Dict["Var", float]] = None,
    ) -> "Solution":
        """Solve ``model`` and return a :class:`Solution`."""
        ...


_REGISTRY: Dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend, replace: bool = False) -> SolverBackend:
    """Register ``backend`` under ``backend.info.name``.

    Args:
        backend: The backend instance (must carry a ``info`` attribute).
        replace: Allow overwriting an existing registration.

    Raises:
        ValueError: if the name is taken and ``replace`` is False.
    """
    name = backend.info.name
    if name in _REGISTRY and not replace:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by name.

    Raises:
        ValueError: for unknown names, listing what is available.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def backend_registry() -> Dict[str, SolverBackend]:
    """A copy of the registry (name -> backend)."""
    return dict(_REGISTRY)


# -- bundled backends ----------------------------------------------------------


class HighsBackend:
    """scipy/HiGHS — the default exact solver (the paper's Gurobi role)."""

    info = BackendInfo(
        name="highs",
        exact=True,
        supports_time_limit=True,
        supports_warm_start=False,
        description="scipy.optimize.milp (HiGHS branch-and-cut), exact",
    )

    def solve(
        self,
        model: "Model",
        *,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        tol: float = 1e-6,
        warm_start: Optional[Dict["Var", float]] = None,
    ) -> "Solution":
        from .scipy_backend import solve_highs

        return solve_highs(model, time_limit=time_limit)


class BnbBackend:
    """From-scratch branch-and-bound; warm starts seed the incumbent."""

    info = BackendInfo(
        name="bnb",
        exact=True,
        supports_time_limit=True,
        supports_warm_start=True,
        description="pure-python best-bound branch-and-bound, exact",
    )

    def solve(
        self,
        model: "Model",
        *,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        tol: float = 1e-6,
        warm_start: Optional[Dict["Var", float]] = None,
    ) -> "Solution":
        from .bnb import solve_branch_and_bound

        return solve_branch_and_bound(
            model,
            time_limit=time_limit,
            node_limit=node_limit,
            tol=tol,
            incumbent=warm_start,
        )


class GreedyBackend:
    """First-fit heuristic: stop at the first incumbent, skip the proof."""

    info = BackendInfo(
        name="greedy",
        exact=False,
        supports_time_limit=True,
        supports_warm_start=True,
        description="first-fit: first incumbent accepted, heuristic (fast, suboptimal)",
    )

    def solve(
        self,
        model: "Model",
        *,
        time_limit: Optional[float] = None,
        node_limit: Optional[int] = None,
        tol: float = 1e-6,
        warm_start: Optional[Dict["Var", float]] = None,
    ) -> "Solution":
        from .greedy import solve_first_fit

        return solve_first_fit(
            model, time_limit=time_limit, warm_start=warm_start
        )


register_backend(HighsBackend())
register_backend(BnbBackend())
register_backend(GreedyBackend())
