"""MILP modeling and solving substrate.

The TTW paper synthesizes schedules with Gurobi.  This package provides
the equivalent building blocks without external solvers:

* :class:`~repro.milp.expr.Var`, :class:`~repro.milp.expr.LinExpr`,
  :func:`~repro.milp.expr.quicksum` — algebraic modeling;
* :class:`~repro.milp.model.Model` — the program container;
* pluggable solver backends behind the
  :class:`~repro.milp.backends.SolverBackend` protocol and a named
  registry: two exact ones — HiGHS via scipy (default) and a
  from-scratch branch-and-bound (:mod:`repro.milp.bnb`) — plus the
  ``greedy`` first-fit heuristic (first-incumbent branch-and-cut,
  :mod:`repro.milp.greedy`) for huge workloads.

Example:
    >>> from repro.milp import Model, quicksum
    >>> m = Model("knapsack")
    >>> xs = [m.add_binary(f"x{i}") for i in range(3)]
    >>> m.add_constr(quicksum(xs) <= 2)       # doctest: +ELLIPSIS
    Constraint(...)
    >>> from repro.milp import ObjectiveSense
    >>> m.set_objective(quicksum(x * w for x, w in zip(xs, [3, 1, 2])),
    ...                 ObjectiveSense.MAXIMIZE)
    >>> sol = m.solve()
    >>> sol.objective
    5.0
"""

from .backends import (
    BackendInfo,
    BnbBackend,
    GreedyBackend,
    HighsBackend,
    SolverBackend,
    available_backends,
    backend_registry,
    get_backend,
    register_backend,
)
from .expr import (
    Constraint,
    LinExpr,
    Sense,
    Var,
    VarType,
    quicksum,
)
from .model import (
    Model,
    ObjectiveSense,
    Solution,
    SolveStatus,
)

__all__ = [
    "BackendInfo",
    "BnbBackend",
    "Constraint",
    "GreedyBackend",
    "HighsBackend",
    "LinExpr",
    "Model",
    "ObjectiveSense",
    "Sense",
    "Solution",
    "SolveStatus",
    "SolverBackend",
    "Var",
    "VarType",
    "available_backends",
    "backend_registry",
    "get_backend",
    "quicksum",
    "register_backend",
]
