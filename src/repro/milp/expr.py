"""Linear expressions and constraints for the MILP modeling layer.

This module provides the algebraic building blocks used by
:class:`repro.milp.model.Model`: decision variables (:class:`Var`),
affine expressions over them (:class:`LinExpr`), and linear constraints
(:class:`Constraint`).  The API deliberately mirrors the small subset of
PuLP/Gurobi-style modeling that the TTW scheduling formulation needs,
so the ILP builder in :mod:`repro.core.ilp_builder` reads like the
paper's appendix.

Expressions are immutable-by-convention: arithmetic operators always
return new :class:`LinExpr` objects.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Mapping, Union

Number = Union[int, float]

#: Tolerance used when checking integrality / constraint satisfaction.
DEFAULT_TOL = 1e-6


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Sense(enum.Enum):
    """Direction of a linear constraint, written as ``lhs SENSE rhs``."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Var:
    """A single decision variable.

    Variables are created through :meth:`repro.milp.model.Model.add_var`
    (which assigns the ``index`` used by solver backends); constructing
    them directly is useful only in tests.

    Attributes:
        name: Human-readable identifier (unique within a model).
        lb: Lower bound (``-inf`` allowed for continuous variables).
        ub: Upper bound (``+inf`` allowed).
        vtype: Variable domain.
        index: Column index assigned by the owning model.
    """

    __slots__ = ("name", "lb", "ub", "vtype", "index")

    def __init__(
        self,
        name: str,
        lb: Number = 0.0,
        ub: Number = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
        index: int = -1,
    ) -> None:
        if vtype is VarType.BINARY:
            lb, ub = max(0.0, lb), min(1.0, ub)
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        self.name = name
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype
        self.index = index

    @property
    def is_integral(self) -> bool:
        """True for integer and binary variables."""
        return self.vtype is not VarType.CONTINUOUS

    def to_expr(self) -> "LinExpr":
        """Return this variable as a single-term expression."""
        return LinExpr({self: 1.0})

    # -- arithmetic: delegate to LinExpr ------------------------------
    def __add__(self, other): return self.to_expr() + other
    def __radd__(self, other): return self.to_expr() + other
    def __sub__(self, other): return self.to_expr() - other
    def __rsub__(self, other): return (-self.to_expr()) + other
    def __mul__(self, other): return self.to_expr() * other
    def __rmul__(self, other): return self.to_expr() * other
    def __truediv__(self, other): return self.to_expr() / other
    def __neg__(self): return self.to_expr() * -1.0

    # -- comparisons build constraints --------------------------------
    def __le__(self, other): return self.to_expr() <= other
    def __ge__(self, other): return self.to_expr() >= other
    def __eq__(self, other):  # type: ignore[override]
        return self.to_expr() == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class LinExpr:
    """An affine expression: ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Mapping[Var, Number] | None = None,
        constant: Number = 0.0,
    ) -> None:
        self.terms: Dict[Var, float] = (
            {v: float(c) for v, c in terms.items() if c != 0} if terms else {}
        )
        self.constant = float(constant)

    @staticmethod
    def from_any(value: "LinExpr | Var | Number") -> "LinExpr":
        """Coerce a variable or number into an expression."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr(constant=value)
        raise TypeError(f"cannot build LinExpr from {type(value).__name__}")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    def value(self, assignment: Mapping[Var, Number]) -> float:
        """Evaluate the expression under a variable assignment."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * float(assignment[var])
        return total

    # -- arithmetic ----------------------------------------------------
    def _added(self, other: "LinExpr | Var | Number", sign: float) -> "LinExpr":
        other = LinExpr.from_any(other)
        result = dict(self.terms)
        for var, coef in other.terms.items():
            result[var] = result.get(var, 0.0) + sign * coef
        return LinExpr(result, self.constant + sign * other.constant)

    def __add__(self, other): return self._added(other, 1.0)
    def __radd__(self, other): return self._added(other, 1.0)
    def __sub__(self, other): return self._added(other, -1.0)

    def __rsub__(self, other):
        return LinExpr.from_any(other)._added(self, -1.0)

    def __mul__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinExpr can only be multiplied by a scalar")
        return LinExpr(
            {v: c * scalar for v, c in self.terms.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinExpr can only be divided by a scalar")
        return self * (1.0 / scalar)

    def __neg__(self): return self * -1.0

    # -- comparisons build constraints ---------------------------------
    def __le__(self, other): return Constraint(self - other, Sense.LE)
    def __ge__(self, other): return Constraint(self - other, Sense.GE)
    def __eq__(self, other):  # type: ignore[override]
        return Constraint(self - other, Sense.EQ)

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


def quicksum(items: Iterable[LinExpr | Var | Number]) -> LinExpr:
    """Sum expressions/variables/numbers into one :class:`LinExpr`.

    Faster and clearer than ``sum(...)`` for building large models.
    """
    terms: Dict[Var, float] = {}
    constant = 0.0
    for item in items:
        expr = LinExpr.from_any(item)
        constant += expr.constant
        for var, coef in expr.terms.items():
            terms[var] = terms.get(var, 0.0) + coef
    return LinExpr(terms, constant)


class Constraint:
    """A linear constraint ``expr SENSE 0``.

    Normalized so that the right-hand side is folded into the expression
    constant; backends read ``expr.terms`` and ``rhs`` (the negated
    constant).
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: Sense, name: str = "") -> None:
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side once variable terms are moved to the left."""
        return -self.expr.constant

    def satisfied(
        self, assignment: Mapping[Var, Number], tol: float = DEFAULT_TOL
    ) -> bool:
        """Check the constraint against a concrete assignment."""
        lhs = self.expr.value(assignment)
        if self.sense is Sense.LE:
            return lhs <= tol
        if self.sense is Sense.GE:
            return lhs >= -tol
        return abs(lhs) <= tol

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense.value} 0{label})"
