"""Export models in the CPLEX LP text format.

Useful for debugging formulations and for feeding the exact same
program to an external solver (Gurobi, CPLEX, cbc) to cross-check the
built-in backends — the workflow the paper's authors used with Gurobi.
"""

from __future__ import annotations

import math
import re
from pathlib import Path
from typing import List

from .expr import LinExpr, Sense
from .model import Model, ObjectiveSense

#: LP-format identifiers cannot contain these characters.
_BAD_CHARS = re.compile(r"[^A-Za-z0-9_.]")


def _safe_name(name: str) -> str:
    """Sanitize a variable/constraint name for the LP format."""
    cleaned = _BAD_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "v_" + cleaned
    return cleaned


def _format_expr(expr: LinExpr, name_of: dict) -> str:
    """Render the variable terms of an expression."""
    parts: List[str] = []
    for var, coef in sorted(expr.terms.items(), key=lambda kv: kv[0].index):
        if coef >= 0 and parts:
            parts.append(f"+ {coef:g} {name_of[var]}")
        else:
            parts.append(f"{coef:g} {name_of[var]}")
    return " ".join(parts) if parts else "0"


def write_lp(model: Model) -> str:
    """Serialize ``model`` to an LP-format string."""
    name_of = {}
    used = set()
    for var in model.variables:
        base = _safe_name(var.name)
        candidate = base
        suffix = 1
        while candidate in used:
            candidate = f"{base}_{suffix}"
            suffix += 1
        used.add(candidate)
        name_of[var] = candidate

    lines: List[str] = []
    lines.append(
        "Minimize" if model.sense is ObjectiveSense.MINIMIZE else "Maximize"
    )
    lines.append(" obj: " + _format_expr(model.objective, name_of))

    lines.append("Subject To")
    for i, constr in enumerate(model.constraints):
        cname = _safe_name(constr.name) if constr.name else f"c{i}"
        op = {"<=": "<=", ">=": ">=", "==": "="}[constr.sense.value]
        lines.append(
            f" {cname}: {_format_expr(constr.expr, name_of)} {op} {constr.rhs:g}"
        )

    lines.append("Bounds")
    for var in model.variables:
        lb = "-inf" if math.isinf(var.lb) else f"{var.lb:g}"
        ub = "+inf" if math.isinf(var.ub) else f"{var.ub:g}"
        lines.append(f" {lb} <= {name_of[var]} <= {ub}")

    integers = [name_of[v] for v in model.variables if v.is_integral]
    if integers:
        lines.append("Generals")
        lines.append(" " + " ".join(integers))

    lines.append("End")
    return "\n".join(lines) + "\n"


def save_lp(model: Model, path: str | Path) -> None:
    """Write the LP file to disk."""
    Path(path).write_text(write_lp(model))
