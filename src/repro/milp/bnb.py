"""From-scratch branch-and-bound MILP solver.

This backend re-implements, in plain Python + ``scipy.optimize.linprog``
LP relaxations, the core algorithm an industrial solver (Gurobi in the
paper) uses to solve the TTW scheduling ILPs:

* **best-bound node selection** via a priority queue keyed on the parent
  relaxation value, which keeps the search tree small on the round
  allocation problems;
* **most-fractional branching** on integer variables;
* **bound tightening by rounding**: a branch ``x <= floor(v)`` /
  ``x >= ceil(v)`` only touches variable bounds, so every node reuses
  the same constraint matrix;
* **incumbent pruning** with a relative/absolute gap tolerance.

It is deliberately dependency-light (the only solver primitive is an LP)
so the tests can cross-validate it against HiGHS on identical models.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .expr import Sense
from .model import Model, ObjectiveSense, Solution, SolveStatus

#: Absolute integrality tolerance: values closer than this to an integer
#: are treated as integral.
INT_TOL = 1e-6
#: Objective gap below which an incumbent is accepted as optimal.
GAP_TOL = 1e-9


@dataclass
class _LPData:
    """Constraint data shared by every node of the search tree."""

    c: np.ndarray
    a_ub: Optional[sparse.csr_matrix]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[sparse.csr_matrix]
    b_eq: Optional[np.ndarray]
    integral: np.ndarray  # boolean mask over columns


def _build_lp(model: Model) -> _LPData:
    """Translate the model into linprog-ready arrays (minimization)."""
    n = model.num_vars
    obj_sign = 1.0 if model.sense is ObjectiveSense.MINIMIZE else -1.0
    c = np.zeros(n)
    for var, coef in model.objective.terms.items():
        c[var.index] = obj_sign * coef

    ub_rows: List[Tuple[dict, float]] = []
    eq_rows: List[Tuple[dict, float]] = []
    for constr in model.constraints:
        row = {v.index: coef for v, coef in constr.expr.terms.items()}
        if constr.sense is Sense.LE:
            ub_rows.append((row, constr.rhs))
        elif constr.sense is Sense.GE:
            ub_rows.append(({i: -c_ for i, c_ in row.items()}, -constr.rhs))
        else:
            eq_rows.append((row, constr.rhs))

    def to_matrix(rows):
        if not rows:
            return None, None
        data, ri, ci = [], [], []
        rhs = np.empty(len(rows))
        for i, (row, b) in enumerate(rows):
            rhs[i] = b
            for j, coef in row.items():
                ri.append(i)
                ci.append(j)
                data.append(coef)
        return sparse.csr_matrix((data, (ri, ci)), shape=(len(rows), n)), rhs

    a_ub, b_ub = to_matrix(ub_rows)
    a_eq, b_eq = to_matrix(eq_rows)
    integral = np.array([v.is_integral for v in model.variables], dtype=bool)
    return _LPData(c, a_ub, b_ub, a_eq, b_eq, integral)


def _solve_relaxation(
    lp: _LPData, lower: np.ndarray, upper: np.ndarray
) -> Tuple[str, Optional[np.ndarray], float]:
    """Solve one LP relaxation; returns (status, x, objective)."""
    if np.any(lower > upper + 1e-12):
        return "infeasible", None, math.inf
    bounds = np.column_stack([lower, upper])
    result = linprog(
        lp.c,
        A_ub=lp.a_ub,
        b_ub=lp.b_ub,
        A_eq=lp.a_eq,
        b_eq=lp.b_eq,
        bounds=bounds,
        method="highs",
    )
    if result.status == 2:
        return "infeasible", None, math.inf
    if result.status == 3:
        return "unbounded", None, -math.inf
    if result.status != 0 or result.x is None:
        return "error", None, math.inf
    return "optimal", result.x, float(result.fun)


def _most_fractional(x: np.ndarray, integral: np.ndarray) -> Optional[int]:
    """Index of the integer variable whose value is farthest from integral."""
    frac = np.abs(x - np.round(x))
    frac[~integral] = 0.0
    j = int(np.argmax(frac))
    if frac[j] <= INT_TOL:
        return None
    return j


def solve_branch_and_bound(
    model: Model,
    time_limit: Optional[float] = None,
    node_limit: Optional[int] = None,
    tol: float = INT_TOL,
    incumbent: Optional[dict] = None,
) -> Solution:
    """Solve ``model`` by best-bound branch-and-bound.

    Args:
        model: The MILP to solve.
        time_limit: Wall-clock cap in seconds; returns the incumbent
            (status ``TIME_LIMIT``) when exceeded.
        node_limit: Maximum number of explored nodes.
        tol: Integrality tolerance.
        incumbent: Optional warm-start assignment (``Var -> value``).
            When it is a feasible point it becomes the initial
            incumbent, pruning the tree from node one; otherwise it is
            ignored.

    Returns:
        A :class:`repro.milp.model.Solution`; ``nodes`` reports the
        number of LP relaxations solved.
    """
    if model.num_vars == 0:
        for constr in model.constraints:
            if not constr.satisfied({}):
                return Solution(SolveStatus.INFEASIBLE)
        return Solution(SolveStatus.OPTIMAL, objective=model.objective.constant)

    lp = _build_lp(model)
    root_lower = np.array([v.lb for v in model.variables])
    root_upper = np.array([v.ub for v in model.variables])

    start = time.monotonic()
    counter = itertools.count()  # tie-breaker for the heap
    status, x, bound = _solve_relaxation(lp, root_lower, root_upper)
    if status == "infeasible":
        return Solution(SolveStatus.INFEASIBLE, nodes=1)
    if status == "unbounded":
        return Solution(SolveStatus.UNBOUNDED, nodes=1)
    if status == "error":
        return Solution(SolveStatus.ERROR, nodes=1)

    heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (bound, next(counter), root_lower, root_upper))

    incumbent_x: Optional[np.ndarray] = None
    incumbent_obj = math.inf
    if incumbent and all(v in incumbent for v in model.variables):
        candidate = Solution(SolveStatus.FEASIBLE, values=dict(incumbent))
        if not model.check_solution(candidate, tol=max(tol, 1e-6)):
            warm_x = np.empty(model.num_vars)
            for var in model.variables:
                warm_x[var.index] = incumbent[var]
            warm_x = np.where(lp.integral, np.round(warm_x), warm_x)
            obj_sign = 1.0 if model.sense is ObjectiveSense.MINIMIZE else -1.0
            incumbent_x = warm_x
            # Node bounds (result.fun) exclude the objective's constant
            # term, so the incumbent bound must too — otherwise it
            # over-prunes and certifies suboptimal points as optimal.
            warm_value = model.objective.value(
                {v: float(warm_x[v.index]) for v in model.variables}
            )
            incumbent_obj = obj_sign * (warm_value - model.objective.constant)
    nodes = 0
    limit_hit: Optional[SolveStatus] = None

    while heap:
        bound, _, lower, upper = heapq.heappop(heap)
        if bound >= incumbent_obj - GAP_TOL:
            continue  # cannot improve on the incumbent
        if time_limit is not None and time.monotonic() - start > time_limit:
            limit_hit = SolveStatus.TIME_LIMIT
            break
        if node_limit is not None and nodes >= node_limit:
            limit_hit = SolveStatus.NODE_LIMIT
            break

        nodes += 1
        status, x, value = _solve_relaxation(lp, lower, upper)
        if status != "optimal" or value >= incumbent_obj - GAP_TOL:
            continue

        branch_var = _most_fractional(x, lp.integral)
        if branch_var is None:
            # Integral solution: new incumbent.
            incumbent_x = np.where(lp.integral, np.round(x), x)
            incumbent_obj = value
            continue

        val = x[branch_var]
        down_upper = upper.copy()
        down_upper[branch_var] = math.floor(val + tol)
        up_lower = lower.copy()
        up_lower[branch_var] = math.ceil(val - tol)
        heapq.heappush(heap, (value, next(counter), lower, down_upper))
        heapq.heappush(heap, (value, next(counter), up_lower, upper))

    if incumbent_x is None:
        if limit_hit is not None:
            return Solution(limit_hit, nodes=nodes)
        return Solution(SolveStatus.INFEASIBLE, nodes=nodes)

    values = {}
    for var in model.variables:
        val = float(incumbent_x[var.index])
        if var.is_integral:
            val = float(round(val))
        values[var] = val
    objective = model.objective.value(values)
    status = SolveStatus.OPTIMAL if limit_hit is None else limit_hit
    return Solution(status, objective=objective, values=values, nodes=nodes)
