"""repro — reproduction of "TTW: A Time-Triggered Wireless design for
CPS" (Jacob et al., DATE 2018; extended version arXiv:1711.05581).

Subpackages:

* :mod:`repro.api` — the declarative public surface:
  :class:`~repro.api.Scenario` (serializable experiment descriptions)
  and :class:`~repro.api.Experiment` (batched synthesize → verify →
  simulate → metrics);
* :mod:`repro.core` — application model, co-scheduling ILP, Algorithm 1
  synthesis, schedule verification, latency analysis (the paper's
  primary contribution);
* :mod:`repro.milp` — MILP modeling/solving substrate with pluggable
  solver backends (Gurobi replacement: scipy/HiGHS, a from-scratch
  branch-and-bound, and a greedy first-fit heuristic);
* :mod:`repro.timing` — slot/round/energy models (Sec. V, Table I);
* :mod:`repro.net` — topologies and the Glossy flood simulator;
* :mod:`repro.runtime` — beacon/mode-change protocol executor;
* :mod:`repro.baselines` — DRP, plain LWB, and the no-rounds design;
* :mod:`repro.workloads` — Fig. 3 preset and random generators;
* :mod:`repro.analysis` — figure/table data regeneration.

Quickstart::

    from repro.core import SchedulingConfig, Mode, synthesize
    from repro.workloads import fig3_control_app
    from repro.timing import round_length_ms

    tr = round_length_ms(payload_bytes=10, diameter=4, num_slots=5)
    mode = Mode("normal", [fig3_control_app(period=200, deadline=150)])
    schedule = synthesize(mode, SchedulingConfig(round_length=tr))
"""

__version__ = "1.0.0"

from . import analysis, api, baselines, core, io, milp, net, runtime, timing, workloads

__all__ = [
    "analysis",
    "api",
    "baselines",
    "core",
    "io",
    "milp",
    "net",
    "runtime",
    "timing",
    "workloads",
    "__version__",
]
