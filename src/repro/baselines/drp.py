"""DRP-style loosely-coupled baseline (paper Sec. V / VI, ref. [16]).

The paper's only end-to-end competitor, "End-to-end real-time
guarantees in wireless cyber-physical systems" (RTSS 2016, the DRP
protocol), couples task and message schedules as *loosely* as possible:
tasks and the communication rounds are scheduled independently, and the
interface is a contract on message delay.  The consequence (paper
Sec. V) is that the best possible per-message guarantee is of the order
of ``2 * Tr``: a message released right after a round has started must
wait for the next round, then for that round to complete.

This module provides both views of the baseline:

* :func:`message_guarantee` / :func:`chain_guarantee` — the analytic
  worst-case bounds (what DRP can *promise*);
* :class:`LooselyCoupledExecutor` — an executable model with periodic
  rounds and ASAP task execution, measuring the latency actually
  achieved for a given release phase (between the TTW bound and the
  DRP guarantee, depending on alignment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.app_model import Application, Chain


def message_guarantee(round_length: float, round_period: Optional[float] = None) -> float:
    """Worst-case release-to-delivery delay of one message under DRP.

    With rounds every ``round_period`` (default: back-to-back, i.e.
    ``round_length``), a message released just after a round start
    waits ``round_period`` for the next round plus ``round_length``
    for it to complete — the paper's ``~2 * Tr`` with saturated rounds.
    """
    period = round_period if round_period is not None else round_length
    if period < round_length:
        raise ValueError("round_period must be >= round_length")
    return period + round_length


def chain_guarantee(
    app: Application,
    chain: Chain,
    round_length: float,
    round_period: Optional[float] = None,
) -> float:
    """Worst-case end-to-end latency of one chain under DRP."""
    per_message = message_guarantee(round_length, round_period)
    return (
        sum(app.tasks[t].wcet for t in chain.tasks)
        + len(chain.messages) * per_message
    )


def application_guarantee(
    app: Application,
    round_length: float,
    round_period: Optional[float] = None,
) -> float:
    """Worst-case application latency under DRP: max over chains."""
    return max(
        chain_guarantee(app, chain, round_length, round_period)
        for chain in app.chains()
    )


@dataclass
class ExecutedChain:
    """Measured latency of one chain execution."""

    chain: Chain
    start: float
    completion: float

    @property
    def latency(self) -> float:
        return self.completion - self.start


@dataclass
class LooselyCoupledExecutor:
    """Executable model of a DRP-like system.

    Rounds run periodically (period ``round_period``, length
    ``round_length``); tasks execute ASAP after their inputs arrive;
    a message is served by the first round *starting* at or after its
    release and is available to consumers when that round *ends*.
    Task and round schedules share no common design — the phase
    ``release_phase`` models where the application release falls
    relative to the round grid.

    This deliberately ignores round capacity (each message gets a
    slot), which favours the baseline; even so its latency is ~2x TTW's
    in the communication-dominated regime.
    """

    round_length: float
    round_period: Optional[float] = None

    def _effective_period(self) -> float:
        period = (
            self.round_period if self.round_period is not None else self.round_length
        )
        if period < self.round_length:
            raise ValueError("round_period must be >= round_length")
        return period

    def next_round_end(self, release: float) -> float:
        """Completion time of the first round starting at/after ``release``."""
        period = self._effective_period()
        index = math.ceil(max(0.0, release) / period - 1e-12)
        return index * period + self.round_length

    def execute(
        self, app: Application, release_phase: float = 0.0
    ) -> List[ExecutedChain]:
        """Execute one application instance released at ``release_phase``.

        Returns:
            Per-chain measured latencies (ASAP semantics).
        """
        app.validate()
        finish: Dict[str, float] = {}
        # Topological order over the bipartite DAG.
        order: List[str] = []
        indeg = {t: len(app.task_preds[t]) for t in app.tasks}
        indeg.update({m: len(app.msg_producers[m]) for m in app.messages})
        queue = [e for e, d in indeg.items() if d == 0]
        while queue:
            element = queue.pop()
            order.append(element)
            for nxt in app.successors(element):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)

        for element in order:
            preds = app.predecessors(element)
            ready = (
                release_phase
                if not preds
                else max(finish[p] for p in preds)
            )
            if element in app.tasks:
                # ASAP, ignoring node contention (favours the baseline).
                finish[element] = ready + app.tasks[element].wcet
            else:
                finish[element] = self.next_round_end(ready)

        results = []
        for chain in app.chains():
            start = release_phase
            completion = finish[chain.last_task]
            results.append(
                ExecutedChain(chain=chain, start=start, completion=completion)
            )
        return results

    def worst_case_latency(
        self, app: Application, phase_samples: int = 64
    ) -> float:
        """Max measured application latency over sampled release phases."""
        period = self._effective_period()
        worst = 0.0
        for i in range(phase_samples):
            phase = period * i / phase_samples
            executed = self.execute(app, release_phase=phase)
            worst = max(worst, max(e.latency for e in executed))
        return worst
