"""The no-rounds strawman design (paper Sec. V, eq. 20 and Fig. 7).

In a design without communication rounds, every message transmission is
preceded by its own beacon — beacons are what reliably prevents
collisions (Sec. II), so they cannot be dropped.  The total time for
``B`` messages of size ``l`` is then

    T_wo/r(l) = B * (T_slot(L_beacon) + T_slot(l))             (20)

This module wraps the closed-form comparison and adds a slot-level
simulation cross-check: it executes the two designs flood-by-flood over
a topology and accounts radio-on time with the Glossy simulator,
confirming the analytic savings of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.glossy import GlossySimulator
from ..net.topology import Topology
from ..timing import (
    DEFAULT_CONSTANTS,
    GlossyConstants,
    energy_saving,
    no_rounds_on_time,
    rounds_on_time,
    slot_time,
)


@dataclass(frozen=True)
class EnergyComparison:
    """Radio-on comparison between rounds and per-message beacons.

    All times in seconds, for serving ``num_messages`` messages once.
    """

    num_messages: int
    payload_bytes: int
    diameter: int
    with_rounds: float
    without_rounds: float

    @property
    def saving(self) -> float:
        """Relative saving ``E`` (Fig. 7)."""
        return (self.without_rounds - self.with_rounds) / self.without_rounds


def compare_energy(
    payload_bytes: int,
    diameter: int,
    num_messages: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> EnergyComparison:
    """Closed-form comparison (eqs. 18-20)."""
    return EnergyComparison(
        num_messages=num_messages,
        payload_bytes=payload_bytes,
        diameter=diameter,
        with_rounds=rounds_on_time(payload_bytes, diameter, num_messages, constants),
        without_rounds=no_rounds_on_time(
            payload_bytes, diameter, num_messages, constants
        ),
    )


def simulate_energy(
    topology: Topology,
    payload_bytes: int,
    num_messages: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
    seed: int = 1,
) -> EnergyComparison:
    """Flood-level simulation of the same comparison.

    Runs the actual flood sequences of both designs with the Glossy
    simulator (ideal links — loss affects both designs identically at
    first order) and accounts per-node radio-on time including the
    radio start-up ``T_start`` per slot.
    """
    simulator = GlossySimulator(topology, link_success=1.0, constants=constants)
    host = topology.host
    diameter = topology.diameter

    def slot_cost(payload: int) -> float:
        result = simulator.flood(host, payload)
        # One wake-up per slot; radio on for start-up plus the flood.
        return constants.t_start + result.duration

    beacon_cost = slot_cost(constants.l_beacon)
    data_cost = slot_cost(payload_bytes)
    with_rounds = beacon_cost + num_messages * data_cost
    without_rounds = num_messages * (beacon_cost + data_cost)
    return EnergyComparison(
        num_messages=num_messages,
        payload_bytes=payload_bytes,
        diameter=diameter,
        with_rounds=with_rounds,
        without_rounds=without_rounds,
    )


def latency_without_rounds(
    payload_bytes: int,
    diameter: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Per-message airtime in the no-rounds design [s].

    Each message costs a beacon slot plus a data slot; there is no
    amortization but also no waiting for other slots in the round.
    """
    return slot_time(constants.l_beacon, diameter, constants) + slot_time(
        payload_bytes, diameter, constants
    )


def savings_series(
    payload_bytes: int,
    diameter: int,
    slots_range: List[int],
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> List[float]:
    """The Fig. 7 series: ``E`` as a function of slots per round."""
    return [
        energy_saving(payload_bytes, diameter, b, constants) for b in slots_range
    ]
