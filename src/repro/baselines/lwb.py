"""Plain LWB baseline: rounds without task co-scheduling (paper ref. [4]).

The Low-power Wireless Bus schedules *network* resources only: rounds
are placed to satisfy aggregate message bandwidth, and applications see
the bus as a transport with no awareness of task release times.  LWB
therefore provides no end-to-end timing guarantee (paper Sec. VI); the
latency a chain experiences depends on how task completions happen to
align with the round grid.

:class:`LwbScheduler` dimensions the periodic round schedule from the
mode's aggregate demand, and reuses the loosely-coupled executor to
measure achieved end-to-end latencies over release phases — giving the
latency *distribution* that motivates TTW's co-scheduling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..core.app_model import Application
from ..core.modes import Mode
from .drp import LooselyCoupledExecutor


@dataclass(frozen=True)
class LwbRoundPlan:
    """Periodic round plan dimensioned for a mode's bandwidth.

    Attributes:
        round_period: Time between round starts.
        rounds_per_hyperperiod: Rounds in one mode hyperperiod.
        utilization: Fraction of slot capacity used by the demand.
    """

    round_period: float
    rounds_per_hyperperiod: int
    utilization: float


class LwbScheduler:
    """Dimension periodic LWB rounds for a mode.

    Args:
        round_length: ``Tr`` of one round.
        slots_per_round: ``B`` data slots per round.
    """

    def __init__(self, round_length: float, slots_per_round: int) -> None:
        if round_length <= 0:
            raise ValueError("round_length must be > 0")
        if slots_per_round < 1:
            raise ValueError("slots_per_round must be >= 1")
        self.round_length = round_length
        self.slots_per_round = slots_per_round

    def demand_per_hyperperiod(self, mode: Mode) -> int:
        """Total message instances to serve in one hyperperiod."""
        lcm = mode.hyperperiod
        total = 0
        for app in mode.applications:
            total += len(app.messages) * round(lcm / app.period)
        return total

    def plan(self, mode: Mode) -> LwbRoundPlan:
        """Smallest periodic round schedule covering the demand.

        LWB's online scheduler adapts the round period to traffic; the
        steady-state equivalent is the largest period such that slot
        supply covers demand in each hyperperiod.
        """
        lcm = mode.hyperperiod
        demand = self.demand_per_hyperperiod(mode)
        if demand == 0:
            return LwbRoundPlan(
                round_period=lcm, rounds_per_hyperperiod=0, utilization=0.0
            )
        rounds_needed = math.ceil(demand / self.slots_per_round)
        max_rounds = int(math.floor(lcm / self.round_length + 1e-9))
        if rounds_needed > max_rounds:
            raise ValueError(
                f"mode {mode.name!r}: demand {demand} slots needs "
                f"{rounds_needed} rounds but only {max_rounds} fit"
            )
        round_period = lcm / rounds_needed
        utilization = demand / (rounds_needed * self.slots_per_round)
        return LwbRoundPlan(
            round_period=round_period,
            rounds_per_hyperperiod=rounds_needed,
            utilization=utilization,
        )

    def latency_distribution(
        self, app: Application, plan: LwbRoundPlan, phase_samples: int = 64
    ) -> List[float]:
        """Achieved application latencies across release phases.

        LWB gives no control over the phase between application release
        and the round grid, so the *distribution* over phases is the
        honest performance picture (its max is the DRP-style bound).
        """
        executor = LooselyCoupledExecutor(
            round_length=self.round_length, round_period=plan.round_period
        )
        latencies = []
        for i in range(phase_samples):
            phase = plan.round_period * i / phase_samples
            executed = executor.execute(app, release_phase=phase)
            latencies.append(max(e.latency for e in executed))
        return latencies
