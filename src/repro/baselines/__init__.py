"""Baselines the paper compares against: DRP (loose coupling, ~2x Tr
per message), plain LWB (no co-scheduling), and the no-rounds design
(per-message beacons)."""

from .drp import (
    ExecutedChain,
    LooselyCoupledExecutor,
    application_guarantee,
    chain_guarantee,
    message_guarantee,
)
from .lwb import LwbRoundPlan, LwbScheduler
from .norounds import (
    EnergyComparison,
    compare_energy,
    latency_without_rounds,
    savings_series,
    simulate_energy,
)

__all__ = [
    "EnergyComparison",
    "ExecutedChain",
    "LooselyCoupledExecutor",
    "LwbRoundPlan",
    "LwbScheduler",
    "application_guarantee",
    "chain_guarantee",
    "compare_energy",
    "latency_without_rounds",
    "message_guarantee",
    "savings_series",
    "simulate_energy",
]
