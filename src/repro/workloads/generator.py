"""Random workload generation for scaling experiments and fuzz tests.

Generates applications with random task DAGs (layered, always valid:
acyclic, every message has one producer and at least one consumer,
producers on a single node), random mappings onto a node set, and
multi-application modes with harmonic or arbitrary periods.

The generator is the input half of every scaling study in
``benchmarks/``: :class:`GeneratorConfig` fixes the shape distribution
(tasks, nodes, period choices, DAG fan-out and depth) and the ``seed``
fixes the sample, so a benchmark line like *"4-task apps on 6 nodes,
seed 3"* pins an exact, reproducible workload.  Generated applications
are valid **by construction** — no rejection sampling is needed — and
always pass ``Application.validate``:

* the task DAG is layered, hence acyclic;
* every message has exactly one producing task and >= 1 consumers;
* producers sit on a single node (the TTW model's requirement for a
  well-defined slot owner).

Hand-written reference workloads (the paper's Fig. 3 application,
industrial-control presets) live in :mod:`repro.workloads.presets`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.app_model import Application
from ..core.modes import Mode
from ..core.rng import make_rng


@dataclass
class GeneratorConfig:
    """Knobs of the random application generator.

    Attributes:
        num_tasks: Tasks per application (>= 1).
        num_nodes: Size of the node pool applications map onto.
        period_choices: Candidate application periods (harmonic sets
            keep hyperperiods small).
        deadline_factor: Deadline as a fraction of the period, in
            (0, 1].
        wcet_range: Uniform WCET range.
        fanout: Max consumers of a multicast message.
        layers: Depth of the layered DAG; tasks are spread across
            layers and messages connect consecutive layers.
    """

    num_tasks: int = 4
    num_nodes: int = 5
    period_choices: Sequence[float] = (20.0, 40.0, 80.0)
    deadline_factor: float = 1.0
    wcet_range: tuple = (0.5, 2.0)
    fanout: int = 2
    layers: int = 3

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if not 0 < self.deadline_factor <= 1:
            raise ValueError("deadline_factor must be in (0, 1]")


class WorkloadGenerator:
    """Seeded generator of random applications and modes.

    Args:
        config: Generation knobs (see :class:`GeneratorConfig`).
        seed: An integer, a ``random.Random``, a
            ``numpy.random.Generator``, or ``None`` — the same seeding
            contract as the loss models (see
            :func:`repro.core.rng.make_rng`).  Equal integer seeds
            reproduce the exact same workload on every platform, which
            is what lets scaling benchmarks and fuzz tests pin their
            inputs.
    """

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        seed: "int | random.Random | None" = 1,
    ) -> None:
        self.config = config or GeneratorConfig()
        self._rng = make_rng(seed)

    def application(self, name: str) -> Application:
        """Generate one random, always-valid application."""
        cfg = self.config
        rng = self._rng
        period = rng.choice(list(cfg.period_choices))
        deadline = period * cfg.deadline_factor
        app = Application(name, period=period, deadline=deadline)

        # Spread tasks over layers; each layer gets at least one task.
        num_layers = min(cfg.layers, cfg.num_tasks)
        layer_of: List[int] = []
        for i in range(cfg.num_tasks):
            layer_of.append(i if i < num_layers else rng.randrange(num_layers))
        tasks_by_layer: List[List[str]] = [[] for _ in range(num_layers)]
        nodes = [f"n{i}" for i in range(cfg.num_nodes)]
        for i in range(cfg.num_tasks):
            task_name = f"{name}_t{i}"
            wcet = rng.uniform(*cfg.wcet_range)
            app.add_task(task_name, node=rng.choice(nodes), wcet=wcet)
            tasks_by_layer[layer_of[i]].append(task_name)

        # Connect consecutive layers with messages.  Each producer in
        # layer L sends one (possibly multicast) message to tasks in
        # layer L+1; every layer-(L+1) task gets at least one input.
        msg_index = 0
        for layer in range(num_layers - 1):
            producers = tasks_by_layer[layer]
            consumers = tasks_by_layer[layer + 1]
            if not producers or not consumers:
                continue
            unfed = set(consumers)
            for producer in producers:
                msg_name = f"{name}_m{msg_index}"
                msg_index += 1
                app.add_message(msg_name)
                app.connect(producer, msg_name)
                count = rng.randint(1, min(cfg.fanout, len(consumers)))
                targets = rng.sample(consumers, count)
                for target in targets:
                    app.connect(msg_name, target)
                    unfed.discard(target)
            # Feed any leftover consumer from a random producer.
            for target in sorted(unfed):
                msg_name = f"{name}_m{msg_index}"
                msg_index += 1
                app.add_message(msg_name)
                app.connect(rng.choice(producers), msg_name)
                app.connect(msg_name, target)

        app.validate()
        return app

    def mode(self, name: str, num_apps: int) -> Mode:
        """Generate a mode of ``num_apps`` random applications."""
        apps = [self.application(f"{name}_a{i}") for i in range(num_apps)]
        return Mode(name, apps)
