"""Workloads: the paper's Fig. 3 control application, industrial-control
presets, and random generators for scaling/fuzz experiments."""

from .generator import GeneratorConfig, WorkloadGenerator
from .presets import (
    closed_loop_pipeline,
    emergency_mode,
    fig3_control_app,
    industrial_mode,
)

__all__ = [
    "GeneratorConfig",
    "WorkloadGenerator",
    "closed_loop_pipeline",
    "emergency_mode",
    "fig3_control_app",
    "industrial_mode",
]
