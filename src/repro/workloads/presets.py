"""Reference workloads, including the paper's Fig. 3 control application.

Four hand-written presets cover the workload shapes the paper's
evaluation and this repository's experiments revolve around:

* :func:`fig3_control_app` — the paper's running example: two sensors
  feed a controller which multicasts to two actuators;
* :func:`closed_loop_pipeline` — a ``sense -> process^k -> actuate``
  chain on distinct nodes, the 10–500 ms distributed control loop the
  introduction targets;
* :func:`industrial_mode` — several concurrent pipelines with harmonic
  periods, a typical process-control deployment (and the default
  workload of the Monte-Carlo campaign benchmark);
* :func:`emergency_mode` — a fast single-loop mode used as the target
  of mode-change experiments.

All presets are deterministic (no randomness); randomized workloads
come from :mod:`repro.workloads.generator`.

Fig. 3 note: execution starts with two sensor readings (tau1, tau2),
both received by the controller (tau3) via messages m1, m2; actuation
values are computed, multicast to the actuators via m3, and applied by
tau5 and tau6.  (The paper's figure labels the receiving tasks
tau4/tau5/tau6 inconsistently across text and figure; we use sense1,
sense2, control, act1, act2.)
"""

from __future__ import annotations

from typing import List

from ..core.app_model import Application, linear_pipeline
from ..core.modes import Mode


def fig3_control_app(
    name: str = "ctrl",
    period: float = 100.0,
    deadline: float = 100.0,
    sense_wcet: float = 2.0,
    control_wcet: float = 5.0,
    act_wcet: float = 1.0,
    nodes: tuple = ("sensor1", "sensor2", "controller", "actuator1", "actuator2"),
) -> Application:
    """The paper's Fig. 3 example: 2 sensors -> controller -> 2 actuators.

    ``m3`` is a multicast message (one message vertex with two consumer
    tasks), exactly as the paper's precedence graph models it.
    """
    if len(nodes) != 5:
        raise ValueError("fig3_control_app needs 5 node names")
    app = Application(name, period=period, deadline=deadline)
    app.add_task(f"{name}_sense1", node=nodes[0], wcet=sense_wcet)
    app.add_task(f"{name}_sense2", node=nodes[1], wcet=sense_wcet)
    app.add_task(f"{name}_control", node=nodes[2], wcet=control_wcet)
    app.add_task(f"{name}_act1", node=nodes[3], wcet=act_wcet)
    app.add_task(f"{name}_act2", node=nodes[4], wcet=act_wcet)
    app.add_message(f"{name}_m1")
    app.add_message(f"{name}_m2")
    app.add_message(f"{name}_m3")
    app.connect(f"{name}_sense1", f"{name}_m1")
    app.connect(f"{name}_sense2", f"{name}_m2")
    app.connect(f"{name}_m1", f"{name}_control")
    app.connect(f"{name}_m2", f"{name}_control")
    app.connect(f"{name}_control", f"{name}_m3")
    app.connect(f"{name}_m3", f"{name}_act1")
    app.connect(f"{name}_m3", f"{name}_act2")
    return app


def closed_loop_pipeline(
    name: str = "loop",
    period: float = 50.0,
    deadline: float = 50.0,
    num_hops: int = 2,
    wcet: float = 1.0,
) -> Application:
    """A sense -> process^k -> actuate pipeline on distinct nodes.

    Models the 10-500 ms distributed closed-loop control systems the
    paper's introduction targets.
    """
    stages = [(f"{name}_node{i}", wcet) for i in range(num_hops + 1)]
    return linear_pipeline(name, period=period, deadline=deadline, stages=stages)


def industrial_mode(
    num_loops: int = 3,
    base_period: float = 100.0,
    name: str = "normal",
) -> Mode:
    """A multi-application industrial control mode.

    ``num_loops`` independent control pipelines with harmonic periods
    (p, 2p, 4p, ...) on disjoint node sets — typical of process-control
    deployments with several concurrent loops.
    """
    apps: List[Application] = []
    for i in range(num_loops):
        period = base_period * (2 ** min(i, 2))
        apps.append(
            closed_loop_pipeline(
                name=f"loop{i}",
                period=period,
                deadline=period,
                num_hops=2,
            )
        )
    return Mode(name, apps)


def emergency_mode(name: str = "emergency", period: float = 50.0) -> Mode:
    """A fast single-loop emergency mode (for mode-change scenarios)."""
    app = closed_loop_pipeline(
        name="em", period=period, deadline=period, num_hops=1
    )
    return Mode(name, [app])
