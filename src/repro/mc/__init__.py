"""``repro.mc`` — Monte-Carlo evaluation campaigns over the simulator.

The system's third engine, next to synthesis (``repro.engine``) and
verification (``repro.core.verify``): *evaluation*.  A campaign fans a
:class:`repro.api.Scenario` out over ``n_trials × seeds ×
loss-parameter grids``, executes the trials over one shared process
pool (synthesis runs once per distinct config thanks to the schedule
cache), and aggregates the samples into statistics with confidence
intervals.

Quickstart::

    from repro.api import Scenario, SimulationSpec, LossSpec
    from repro.core import Mode, SchedulingConfig
    from repro.mc import run_campaign
    from repro.workloads import closed_loop_pipeline

    scenario = Scenario(
        name="reliability",
        modes=[Mode("normal", [closed_loop_pipeline(
            "a", period=20, deadline=20, num_hops=1)])],
        config=SchedulingConfig(round_length=1.0, max_round_gap=None),
        backend="greedy",
        loss=LossSpec("bernoulli", {"beacon_loss": 0.05, "data_loss": 0.05}),
        simulation=SimulationSpec(duration=400.0, trials=25, seed=7),
    )
    result = run_campaign(scenario, sweep={"data_loss": [0.0, 0.05, 0.1]})
    print(result.table())

The same campaign runs from the command line::

    python -m repro.cli scenario mc reliability.scenario.json \\
        --trials 25 --sweep data_loss=0,0.05,0.1 -j 4
"""

from .campaign import (
    CampaignResult,
    PointResult,
    run_campaign,
    run_campaigns,
)
from .equivalence import (
    EquivalenceError,
    assert_distribution_equivalent,
    assert_engines_equivalent,
)
from .fastpath import run_program, supports_loss_kind
from .stats import (
    CampaignStats,
    DistSummary,
    RateEstimate,
    percentile,
    wilson_interval,
)
from .vectorized import run_trials_vectorized, unroll_timeline

__all__ = [
    "CampaignResult",
    "CampaignStats",
    "DistSummary",
    "EquivalenceError",
    "PointResult",
    "RateEstimate",
    "assert_distribution_equivalent",
    "assert_engines_equivalent",
    "percentile",
    "run_campaign",
    "run_campaigns",
    "run_program",
    "run_trials_vectorized",
    "supports_loss_kind",
    "unroll_timeline",
    "wilson_interval",
]
