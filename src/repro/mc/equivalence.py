"""Statistical-equivalence harness for Monte-Carlo trial engines.

The ``fast`` engine is bit-identical to the reference simulator, so its
test suite can literally ``assert a == b``.  The ``vectorized`` engine
draws from different random streams by design — equal seeds give
*different realizations from the same distributions* — so "correct"
means something statistical, and hand-waving it would let a subtly
wrong sampler (a transposed Markov transition, an off-by-one burst
length) ship undetected.

:func:`assert_distribution_equivalent` makes the claim precise and
falsifiable.  Given the aggregated campaign statistics of two engines
over the *same* scenario and trial count, it checks:

* **deterministic structure is equal**, not just close: executed
  rounds, per-flow and per-chain instance totals, beacon denominators,
  collision counts, and trial counts must match exactly — these do not
  depend on the loss realization, so any difference is a timeline bug,
  not noise;
* **every rate estimate is compatible**: the Wilson score intervals of
  the two engines (recomputed at a configurable, deliberately wide
  ``z``) must overlap for overall/per-flow deadline-miss, delivery,
  beacon-reception, and per-application chain-miss rates;
* **radio-on means agree** within a relative tolerance (radio time is
  a deterministic function of beacon reception counts, so its spread
  is narrow and a mean comparison is tight);
* **mode-change-latency samples agree** via a two-sample
  Kolmogorov-Smirnov statistic when raw per-trial samples are
  available (pass :class:`~repro.mc.campaign.PointResult`\\ s to get
  this), falling back to a mean comparison of the summaries.

Failures raise :class:`EquivalenceError` (an ``AssertionError``
subclass) naming the failing check — the harness is reusable
infrastructure for every future engine, not a one-off test helper.

The default ``z`` of 3.29 (a 99.9 % interval per side) is deliberately
wider than the reporting default of 1.96: the two engines' estimates
are *independent*, so at 95 % the overlap test would flag a healthy
pair of samplers far too often to gate CI on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..runtime.trial import TrialResult
from .stats import CampaignStats, RateEstimate, wilson_interval

#: z-quantile of a 99.9 % two-sided confidence level — wide on purpose
#: (see module docstring).
Z_STRICT = 3.2905267314919255


class EquivalenceError(AssertionError):
    """Two engines' campaign statistics are *not* compatible.

    An :class:`AssertionError` subclass so plain ``pytest.raises``
    negative tests and bare-assert test styles both work.
    """


def ks_statistic(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max ECDF distance)."""
    if not a or not b:
        raise ValueError("ks_statistic needs two non-empty samples")
    xs = sorted(a)
    ys = sorted(b)
    n, m = len(xs), len(ys)
    i = j = 0
    d = 0.0
    while i < n and j < m:
        # Step to the next distinct value and move *both* cursors past
        # every element equal to it — the ECDFs only ever differ at
        # distinct sample values, and splitting ties inflates d.
        value = xs[i] if xs[i] <= ys[j] else ys[j]
        while i < n and xs[i] == value:
            i += 1
        while j < m and ys[j] == value:
            j += 1
        d = max(d, abs(i / n - j / m))
    return d


def ks_critical_value(n: int, m: int, c_alpha: float = 1.95) -> float:
    """KS rejection threshold ``c(alpha) * sqrt((n + m) / (n * m))``.

    ``c_alpha=1.95`` corresponds to alpha ≈ 0.001 — like the Wilson
    ``z``, deliberately conservative for CI gating.
    """
    return c_alpha * ((n + m) / (n * m)) ** 0.5


def _intervals_overlap(
    a: RateEstimate, b: RateEstimate, z: float
) -> Tuple[bool, Tuple[float, float], Tuple[float, float]]:
    low_a, high_a = wilson_interval(a.successes, a.total, z)
    low_b, high_b = wilson_interval(b.successes, b.total, z)
    return (low_a <= high_b and low_b <= high_a), (low_a, high_a), (low_b, high_b)


def _coerce(result) -> Tuple[CampaignStats, Optional[List[TrialResult]]]:
    """Accept a PointResult (stats + raw trials) or bare CampaignStats."""
    if isinstance(result, CampaignStats):
        return result, None
    stats = getattr(result, "stats", None)
    if isinstance(stats, CampaignStats):
        return stats, list(getattr(result, "trials", []) or []) or None
    raise TypeError(
        f"expected CampaignStats or PointResult, got {type(result).__name__}"
    )


def assert_distribution_equivalent(
    actual,
    reference,
    *,
    z: float = Z_STRICT,
    radio_rtol: float = 0.05,
    ks_c_alpha: float = 1.95,
    require_same_totals: bool = True,
    label: str = "",
) -> None:
    """Assert two engines produced statistically compatible campaigns.

    Args:
        actual: The engine under test — a
            :class:`~repro.mc.campaign.PointResult` (preferred; its raw
            trials enable the KS check) or a :class:`CampaignStats`.
        reference: The oracle engine's result for the *same* scenario,
            grid point, and trial count.
        z: Wilson z-quantile for the CI-overlap checks (default: a
            99.9 % interval — see module docstring).
        radio_rtol: Relative tolerance on the radio-on mean.
        ks_c_alpha: ``c(alpha)`` of the KS threshold.
        require_same_totals: Also require the deterministic structure
            (rounds, instance totals, denominators) to match exactly.
            Disable only when comparing across *different* scenarios.
        label: Prefix for failure messages (e.g. the loss kind).

    Raises:
        EquivalenceError: naming the first failing check.
    """
    stats_a, trials_a = _coerce(actual)
    stats_b, trials_b = _coerce(reference)
    prefix = f"{label}: " if label else ""

    def fail(message: str) -> None:
        raise EquivalenceError(prefix + message)

    if stats_a.n_trials != stats_b.n_trials:
        fail(
            f"trial counts differ: {stats_a.n_trials} vs {stats_b.n_trials} "
            f"— equivalence needs equally sized campaigns"
        )

    if require_same_totals:
        if stats_a.rounds != stats_b.rounds:
            fail(f"executed rounds differ: {stats_a.rounds} vs {stats_b.rounds}")
        if stats_a.collisions != stats_b.collisions:
            fail(
                f"collision counts differ: {stats_a.collisions} vs "
                f"{stats_b.collisions}"
            )
        if set(stats_a.flows) != set(stats_b.flows):
            fail(
                f"flow sets differ: {sorted(stats_a.flows)} vs "
                f"{sorted(stats_b.flows)}"
            )
        for flow in stats_a.flows:
            if stats_a.flows[flow].total != stats_b.flows[flow].total:
                fail(
                    f"flow {flow!r} instance totals differ: "
                    f"{stats_a.flows[flow].total} vs {stats_b.flows[flow].total}"
                )
        if set(stats_a.chain_miss) != set(stats_b.chain_miss):
            fail(
                f"chain sets differ: {sorted(stats_a.chain_miss)} vs "
                f"{sorted(stats_b.chain_miss)}"
            )
        for app in stats_a.chain_miss:
            if stats_a.chain_miss[app].total != stats_b.chain_miss[app].total:
                fail(
                    f"chain {app!r} instance totals differ: "
                    f"{stats_a.chain_miss[app].total} vs "
                    f"{stats_b.chain_miss[app].total}"
                )
        if stats_a.beacon.total != stats_b.beacon.total:
            fail(
                f"beacon denominators differ: {stats_a.beacon.total} vs "
                f"{stats_b.beacon.total}"
            )
        if stats_a.miss.total != stats_b.miss.total:
            fail(
                f"message instance totals differ: {stats_a.miss.total} vs "
                f"{stats_b.miss.total}"
            )

    rates = [
        ("overall miss rate", stats_a.miss, stats_b.miss),
        ("delivery rate", stats_a.delivery, stats_b.delivery),
        ("beacon reception rate", stats_a.beacon, stats_b.beacon),
    ]
    rates.extend(
        (f"flow {flow!r} miss rate", stats_a.flows[flow], stats_b.flows[flow])
        for flow in sorted(set(stats_a.flows) & set(stats_b.flows))
    )
    rates.extend(
        (
            f"chain {app!r} miss rate",
            stats_a.chain_miss[app],
            stats_b.chain_miss[app],
        )
        for app in sorted(set(stats_a.chain_miss) & set(stats_b.chain_miss))
    )
    for name, rate_a, rate_b in rates:
        ok, ci_a, ci_b = _intervals_overlap(rate_a, rate_b, z)
        if not ok:
            fail(
                f"{name} incompatible: {rate_a.rate:.5f} "
                f"[{ci_a[0]:.5f}, {ci_a[1]:.5f}] vs {rate_b.rate:.5f} "
                f"[{ci_b[0]:.5f}, {ci_b[1]:.5f}] (z={z:g} intervals disjoint)"
            )

    if (stats_a.radio_on is None) != (stats_b.radio_on is None):
        fail(
            f"radio accounting differs: "
            f"{'present' if stats_a.radio_on else 'absent'} vs "
            f"{'present' if stats_b.radio_on else 'absent'}"
        )
    if stats_a.radio_on is not None and stats_b.radio_on is not None:
        mean_a, mean_b = stats_a.radio_on.mean, stats_b.radio_on.mean
        scale = max(abs(mean_a), abs(mean_b), 1e-12)
        if abs(mean_a - mean_b) > radio_rtol * scale:
            fail(
                f"radio-on means differ beyond rtol={radio_rtol:g}: "
                f"{mean_a:.6f} vs {mean_b:.6f}"
            )

    delays_a = (
        [d for trial in trials_a for d in trial.switch_delays]
        if trials_a is not None
        else None
    )
    delays_b = (
        [d for trial in trials_b for d in trial.switch_delays]
        if trials_b is not None
        else None
    )
    if (stats_a.switch_delay is None) != (stats_b.switch_delay is None):
        fail(
            f"mode-change latency differs: "
            f"{'present' if stats_a.switch_delay else 'absent'} vs "
            f"{'present' if stats_b.switch_delay else 'absent'}"
        )
    if delays_a and delays_b:
        d = ks_statistic(delays_a, delays_b)
        threshold = ks_critical_value(len(delays_a), len(delays_b), ks_c_alpha)
        if d > threshold:
            fail(
                f"mode-change latency distributions differ: KS statistic "
                f"{d:.4f} > threshold {threshold:.4f} "
                f"(n={len(delays_a)}, m={len(delays_b)})"
            )
    elif stats_a.switch_delay is not None and stats_b.switch_delay is not None:
        mean_a, mean_b = stats_a.switch_delay.mean, stats_b.switch_delay.mean
        scale = max(abs(mean_a), abs(mean_b), 1e-12)
        if abs(mean_a - mean_b) > radio_rtol * scale:
            fail(
                f"mode-change latency means differ: {mean_a:.6f} vs "
                f"{mean_b:.6f} (no raw samples for a KS check)"
            )


def assert_engines_equivalent(
    scenario,
    engines: Sequence[str] = ("vectorized", "fast", "reference"),
    *,
    trials: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    sweep=None,
    cache=None,
    cache_dir=None,
    expect: Optional[dict] = None,
    z: float = Z_STRICT,
    radio_rtol: float = 0.05,
    ks_c_alpha: float = 1.95,
    label: str = "",
) -> dict:
    """Run one scenario on several engines and gate their agreement.

    The one-call form of the harness: executes the campaign once per
    engine (sharing a schedule cache, so synthesis happens once),
    asserts :func:`assert_distribution_equivalent` for every engine
    pair at every grid point, and optionally asserts which engine each
    request actually *resolved* to after the ``vectorized -> fast ->
    reference`` fallback ladder — the piece that catches a new loss
    kind silently downgrading instead of vectorizing.

    Args:
        scenario: A :class:`repro.api.Scenario` with a simulation phase.
        engines: Engine names to run and cross-compare.
        trials: Trials per grid point (default: the scenario's).
        seeds: Explicit per-trial seeds (common random numbers).
        sweep: Loss-parameter grid, as in
            :func:`repro.mc.campaign.run_campaign`.
        cache: Schedule cache to share (one is created when neither
            ``cache`` nor ``cache_dir`` is given).
        cache_dir: Persistent cache directory.
        expect: ``{requested_engine: resolved_engine}`` — assert the
            ladder resolution, e.g. ``{"vectorized": "vectorized"}`` to
            prove a kind really vectorizes, or ``{"vectorized":
            "fast"}`` to pin an intentional, tested downgrade.
        z / radio_rtol / ks_c_alpha: Forwarded to
            :func:`assert_distribution_equivalent`.
        label: Failure-message prefix (e.g. the loss kind).

    Returns:
        ``{engine: CampaignResult}`` for further inspection.

    Raises:
        EquivalenceError: the first failing pairwise check or ladder
            expectation.
    """
    import tempfile

    from ..engine.cache import ScheduleCache
    from .campaign import run_campaign

    if len(engines) < 2 and not expect:
        raise ValueError("assert_engines_equivalent needs >= 2 engines")

    prefix = f"{label}: " if label else ""
    results = {}
    with tempfile.TemporaryDirectory(prefix="repro-equiv-") as shared_dir:
        if cache is None and cache_dir is None:
            # Share one schedule cache across the engines: synthesis is
            # identical per engine, so it should run exactly once.
            cache = ScheduleCache(shared_dir)
        for engine in engines:
            results[engine] = run_campaign(
                scenario,
                trials=trials,
                seeds=seeds,
                sweep=sweep,
                cache=cache,
                cache_dir=cache_dir,
                engine=engine,
            )

    if expect:
        for requested, resolved in expect.items():
            if requested not in results:
                continue
            used = results[requested].engines.get(scenario.name)
            if used != resolved:
                raise EquivalenceError(
                    f"{prefix}engine {requested!r} resolved to {used!r}, "
                    f"expected {resolved!r} (fallback ladder moved)"
                )

    names = list(results)
    for i, name_a in enumerate(names):
        for name_b in names[i + 1:]:
            points_a = results[name_a].points
            points_b = results[name_b].points
            if len(points_a) != len(points_b):
                raise EquivalenceError(
                    f"{prefix}{name_a} vs {name_b}: grid sizes differ "
                    f"({len(points_a)} vs {len(points_b)})"
                )
            for point_a, point_b in zip(points_a, points_b):
                if point_a.point != point_b.point:
                    raise EquivalenceError(
                        f"{prefix}{name_a} vs {name_b}: grid points "
                        f"diverge ({point_a.point} vs {point_b.point})"
                    )
                point_label = f"{prefix}{name_a} vs {name_b}"
                if point_a.point:
                    point_label += f" at {point_a.point}"
                assert_distribution_equivalent(
                    point_a,
                    point_b,
                    z=z,
                    radio_rtol=radio_rtol,
                    ks_c_alpha=ks_c_alpha,
                    label=point_label,
                )
    return results
