"""Aggregate statistics of a Monte-Carlo campaign.

One simulated trace is a *sample*, not an evaluation: the paper's
runtime claims (reliability under loss, energy per round, mode-change
latency) are statistical.  This module turns a set of
:class:`~repro.runtime.trial.TrialResult` samples into defensible
estimates:

* **rates** (deadline-miss, delivery, chain success) come with Wilson
  score confidence intervals — well-behaved near 0 and 1, where the
  interesting reliability numbers live, unlike the normal
  approximation;
* **distributions** (radio-on time, mode-change latency) are reported
  as mean and p50/p95/p99 tails, since worst-observed behaviour — not
  the average — is what real-time evaluation cares about.

Everything here is plain arithmetic over the counts the trial workers
return; no trace ever reaches this layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.trial import TrialResult

#: z-score of the default 95 % confidence level.
Z_95 = 1.959963984540054


def wilson_interval(
    successes: int, total: int, z: float = Z_95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Args:
        successes: Observed positive outcomes.
        total: Number of observations.
        z: Normal quantile of the confidence level (default 95 %).

    Returns:
        ``(low, high)`` bounds in [0, 1]; ``(0.0, 1.0)`` when
        ``total == 0`` (no evidence, no confidence).
    """
    if total < 0 or successes < 0 or successes > total:
        raise ValueError(
            f"need 0 <= successes <= total, got {successes}/{total}"
        )
    if total == 0:
        return (0.0, 1.0)
    phat = successes / total
    z2 = z * z
    denominator = 1.0 + z2 / total
    center = (phat + z2 / (2 * total)) / denominator
    half = (z / denominator) * math.sqrt(
        phat * (1.0 - phat) / total + z2 / (4.0 * total * total)
    )
    # At the extremes the bounds are exactly 0/1 analytically; clamp so
    # float rounding cannot exclude the point estimate.
    low = 0.0 if successes == 0 else max(0.0, center - half)
    high = 1.0 if successes == total else min(1.0, center + half)
    return (low, high)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    value = ordered[lower] * (1.0 - weight) + ordered[upper] * weight
    # Float rounding must not push the result outside the bracket.
    return min(max(value, ordered[lower]), ordered[upper])


@dataclass(frozen=True)
class RateEstimate:
    """A binomial rate with its Wilson confidence interval."""

    successes: int
    total: int

    @property
    def rate(self) -> float:
        return self.successes / self.total if self.total else 0.0

    @property
    def ci(self) -> Tuple[float, float]:
        return wilson_interval(self.successes, self.total)

    @property
    def complement(self) -> "RateEstimate":
        """The rate of the opposite event (e.g. miss from on-time)."""
        return RateEstimate(self.total - self.successes, self.total)

    def to_dict(self) -> dict:
        low, high = self.ci
        return {
            "successes": self.successes,
            "total": self.total,
            "rate": self.rate,
            "ci95": [low, high],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RateEstimate":
        """Rebuild from :meth:`to_dict` output (rate/CI are derived)."""
        return cls(successes=data["successes"], total=data["total"])

    def __str__(self) -> str:
        low, high = self.ci
        return f"{self.rate:.4f} [{low:.4f}, {high:.4f}]"


@dataclass(frozen=True)
class DistSummary:
    """Mean and tail summary of an empirical distribution."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "DistSummary":
        if not values:
            raise ValueError("cannot summarize an empty distribution")
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50.0),
            p95=percentile(values, 95.0),
            p99=percentile(values, 99.0),
            minimum=min(values),
            maximum=max(values),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DistSummary":
        return cls(
            count=data["count"],
            mean=data["mean"],
            p50=data["p50"],
            p95=data["p95"],
            p99=data["p99"],
            minimum=data["min"],
            maximum=data["max"],
        )

    def __str__(self) -> str:
        return (
            f"mean {self.mean:.3f}, p50 {self.p50:.3f}, "
            f"p95 {self.p95:.3f}, p99 {self.p99:.3f}"
        )


@dataclass
class CampaignStats:
    """Aggregated statistics of the trials at one campaign grid point.

    Attributes:
        n_trials: Number of trials aggregated.
        flows: Per-flow (message) **deadline-miss** estimates.
        miss: Overall message deadline-miss estimate.
        delivery: Overall message delivery estimate.
        chain_miss: Per-application end-to-end chain miss estimates.
        beacon: Beacon reception estimate (heard / expected).
        radio_on: Distribution of per-trial total radio-on time (ms).
        radio_on_per_round: Distribution of per-trial radio-on per
            executed round (ms) — the paper's energy-per-round proxy.
        switch_delay: Mode-change latency distribution (ms), ``None``
            when no trial switched modes.
        collisions: Collided slots summed over all trials (0 is TTW's
            safety claim).
        rounds: Rounds executed, summed over all trials.
    """

    n_trials: int = 0
    flows: Dict[str, RateEstimate] = field(default_factory=dict)
    miss: RateEstimate = RateEstimate(0, 0)
    delivery: RateEstimate = RateEstimate(0, 0)
    chain_miss: Dict[str, RateEstimate] = field(default_factory=dict)
    beacon: RateEstimate = RateEstimate(0, 0)
    radio_on: Optional[DistSummary] = None
    radio_on_per_round: Optional[DistSummary] = None
    switch_delay: Optional[DistSummary] = None
    collisions: int = 0
    rounds: int = 0

    @classmethod
    def aggregate(cls, trials: Sequence[TrialResult]) -> "CampaignStats":
        """Pool the counts of many trials into one estimate set.

        Counts are pooled across trials, treating every message
        instance as one Bernoulli observation.  Instances from
        *different* trials are independent (seeds are independent
        draws), but instances *within* one trial share a loss
        realization — under temporally correlated channels
        (``gilbert_elliott``: one BAD sojourn wipes out many
        consecutive instances) the effective sample size is smaller
        than the instance count and the pooled Wilson intervals are
        optimistic (undercover).  They are exact for i.i.d. losses
        (``bernoulli``); for bursty channels read them as lower bounds
        on the uncertainty and increase ``trials``, which is the
        independent axis.
        """
        stats = cls(n_trials=len(trials))
        flow_counts: Dict[str, List[int]] = {}
        chain_counts: Dict[str, List[int]] = {}
        on_time_total = 0
        delivered_total = 0
        message_total = 0
        beacon_heard = 0
        beacon_expected = 0
        radio_totals: List[float] = []
        per_round: List[float] = []
        switch_delays: List[float] = []
        for trial in trials:
            stats.collisions += trial.collisions
            stats.rounds += trial.rounds
            beacon_heard += trial.beacon_heard[0]
            beacon_expected += trial.beacon_heard[1]
            for flow, (on_time, delivered, total) in trial.messages.items():
                entry = flow_counts.setdefault(flow, [0, 0])
                entry[0] += on_time
                entry[1] += total
                on_time_total += on_time
                delivered_total += delivered
                message_total += total
            for app, (complete, total) in trial.chains.items():
                entry = chain_counts.setdefault(app, [0, 0])
                entry[0] += complete
                entry[1] += total
            total_on = trial.total_radio_on()
            radio_totals.append(total_on)
            if trial.rounds:
                per_round.append(total_on / trial.rounds)
            switch_delays.extend(trial.switch_delays)
        stats.flows = {
            flow: RateEstimate(total - on_time, total)
            for flow, (on_time, total) in sorted(flow_counts.items())
        }
        stats.miss = RateEstimate(message_total - on_time_total, message_total)
        stats.delivery = RateEstimate(delivered_total, message_total)
        stats.chain_miss = {
            app: RateEstimate(total - complete, total)
            for app, (complete, total) in sorted(chain_counts.items())
        }
        stats.beacon = RateEstimate(beacon_heard, beacon_expected)
        if radio_totals and any(v > 0 for v in radio_totals):
            stats.radio_on = DistSummary.from_values(radio_totals)
        if per_round and any(v > 0 for v in per_round):
            stats.radio_on_per_round = DistSummary.from_values(per_round)
        if switch_delays:
            stats.switch_delay = DistSummary.from_values(switch_delays)
        return stats

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignStats":
        """Rebuild aggregated statistics from :meth:`to_dict` output.

        The round trip is exact for everything the explorer and the
        tables read (counts, rate estimates, distribution summaries);
        the raw per-trial samples are not part of the serialized form.
        """
        return cls(
            n_trials=data["n_trials"],
            flows={
                k: RateEstimate.from_dict(v)
                for k, v in data.get("flows", {}).items()
            },
            miss=RateEstimate.from_dict(data["miss"]),
            delivery=RateEstimate.from_dict(data["delivery"]),
            chain_miss={
                k: RateEstimate.from_dict(v)
                for k, v in data.get("chain_miss", {}).items()
            },
            beacon=RateEstimate.from_dict(data["beacon"]),
            radio_on=(
                DistSummary.from_dict(data["radio_on"])
                if data.get("radio_on") else None
            ),
            radio_on_per_round=(
                DistSummary.from_dict(data["radio_on_per_round"])
                if data.get("radio_on_per_round") else None
            ),
            switch_delay=(
                DistSummary.from_dict(data["switch_delay"])
                if data.get("switch_delay") else None
            ),
            collisions=data.get("collisions", 0),
            rounds=data.get("rounds", 0),
        )

    def to_dict(self) -> dict:
        return {
            "n_trials": self.n_trials,
            "flows": {k: v.to_dict() for k, v in self.flows.items()},
            "miss": self.miss.to_dict(),
            "delivery": self.delivery.to_dict(),
            "chain_miss": {k: v.to_dict() for k, v in self.chain_miss.items()},
            "beacon": self.beacon.to_dict(),
            "radio_on": self.radio_on.to_dict() if self.radio_on else None,
            "radio_on_per_round": (
                self.radio_on_per_round.to_dict()
                if self.radio_on_per_round else None
            ),
            "switch_delay": (
                self.switch_delay.to_dict() if self.switch_delay else None
            ),
            "collisions": self.collisions,
            "rounds": self.rounds,
        }
