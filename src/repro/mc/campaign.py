"""Monte-Carlo campaigns: fan one scenario out over trials × seeds × grids.

A *campaign* turns the one-shot runtime simulator into an evaluation
instrument.  For every scenario it executes ``n_trials`` independent
simulation trials per point of a loss-parameter grid, then aggregates
the samples into :class:`~repro.mc.stats.CampaignStats` (deadline-miss
rates with Wilson confidence intervals, radio-on distributions,
mode-change latency tails).

The execution plan reuses every throughput mechanism the engine
already has:

1. **Synthesis happens once per distinct config.**  All modes of all
   scenarios go through one :func:`repro.engine.run_cached_batch`
   call, which dedupes identical problems by content fingerprint and
   consults the persistent schedule cache — trials and sweep points
   never trigger re-synthesis, because loss parameters are not part of
   the synthesis problem.
2. **Trials run over one shared process pool.**  One
   :class:`repro.engine.trials.TrialPool` serves the whole campaign;
   workers rebuild the scenario context (deployments, topology, radio
   timing) once and then execute trials from JSON-sized task
   descriptions.
3. **Seeding is deterministic.**  Trial ``i`` uses
   ``derive_seed(campaign_seed, i)`` — a SHA-256 derivation, stable
   across platforms and processes.  The *same* seed list is reused at
   every grid point (common random numbers), so differences between
   points are differences of parameters, not of luck.  Explicit
   ``seeds=[...]`` override the derivation.

Single-trial fidelity: a campaign trial with seed ``s`` is
bit-identical to running the scenario through
``Experiment.run(simulate=True)`` with ``seed=s`` in its loss spec —
the tests assert this, so campaign numbers are directly comparable to
every previously published single-run result.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.scenario import Scenario, ScenarioError
from ..api.experiment import synthesize_scenarios
from ..core.rng import derive_seed
from ..core.schedule import ModeSchedule
from ..core.verify import VerificationReport
from ..engine.api import EngineStats
from ..engine.cache import ScheduleCache
from ..engine.trials import TrialPool
from ..io.serialize import mode_to_dict, schedule_to_dict
from ..obs.events import emit
from ..obs.metrics import timed_span
from ..runtime.loss import build_loss, reseeded
from ..runtime.trial import (
    ENGINES,
    TrialResult,
    build_context,
    execute_trial,
    execute_trial_batch,
)
from .stats import CampaignStats


@dataclass
class PointResult:
    """All trials of one scenario at one grid point, aggregated."""

    scenario: str
    point: Dict[str, object]
    seeds: List[Optional[int]]
    stats: CampaignStats
    trials: List[TrialResult] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "point": dict(self.point),
            "seeds": list(self.seeds),
            "stats": self.stats.to_dict(),
        }


@dataclass
class CampaignResult:
    """Everything one campaign produced.

    Attributes:
        points: One :class:`PointResult` per (scenario, grid point),
            scenarios in input order, grid points in sweep order.
        schedules: Synthesized schedule per mode, per scenario.
        reports: Verification report per mode, per scenario.
        stats: Engine counters — ``modes_synthesized`` equals the
            number of *distinct* synthesis problems, however many
            trials ran.
        engines: Trial engine actually used per scenario, after the
            ``vectorized -> fast -> reference`` fallback ladder —
            e.g. ``{"baseline": "vectorized"}``.
        wall_seconds: Wall-clock per campaign phase —
            ``{"synthesis", "simulation", "aggregation"}`` — measured
            by the obs phase spans (always populated; logging need not
            be on).
    """

    points: List[PointResult] = field(default_factory=list)
    schedules: Dict[str, Dict[str, ModeSchedule]] = field(default_factory=dict)
    reports: Dict[str, Dict[str, VerificationReport]] = field(default_factory=dict)
    stats: EngineStats = field(default_factory=EngineStats)
    engines: Dict[str, str] = field(default_factory=dict)
    wall_seconds: Dict[str, float] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def verified(self) -> bool:
        return all(
            report.ok
            for by_mode in self.reports.values()
            for report in by_mode.values()
        )

    @property
    def ok(self) -> bool:
        """Verified and collision-free across every trial."""
        return self.verified and all(
            point.stats.collisions == 0 for point in self.points
        )

    def rows(self) -> List[Dict[str, object]]:
        """One flat metrics dict per grid point (the results table)."""
        from ..analysis.campaign import campaign_rows

        return campaign_rows(self)

    def table(self, verbose: bool = False) -> str:
        """The campaign statistics as an aligned ASCII table."""
        from ..analysis.campaign import campaign_table

        return campaign_table(self, verbose=verbose)

    def to_dict(self) -> dict:
        return {
            "points": [point.to_dict() for point in self.points],
            "verified": self.verified,
            "ok": self.ok,
            "trial_engines": dict(self.engines),
            "wall_seconds": dict(self.wall_seconds),
            "engine": {
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
                "modes_synthesized": self.stats.modes_synthesized,
                "solver_runs": self.stats.solver_runs,
                "total_time": self.stats.total_time,
            },
        }


def _expand_sweep(sweep: Optional[Dict[str, Sequence]]) -> List[Dict[str, object]]:
    """Cartesian product of a ``{param: values}`` sweep description."""
    if not sweep:
        return [{}]
    names = list(sweep)
    for name, values in sweep.items():
        if isinstance(values, (str, bytes)) or not isinstance(
            values, (list, tuple)
        ):
            raise ValueError(
                f"sweep parameter {name!r} needs a list/tuple of values, "
                f"got {values!r}"
            )
        if not values:
            raise ValueError(f"sweep parameter {name!r} has no values")
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(sweep[name] for name in names))
    ]


def _resolve_seeds(
    scenario: Scenario,
    trials: Optional[int],
    seeds: Optional[Sequence[int]],
) -> List[Optional[int]]:
    """The per-trial seed list for one scenario.

    Explicit ``seeds`` win; otherwise ``trials`` (falling back to the
    scenario's ``simulation.trials``) seeds are derived from the
    scenario's ``simulation.seed`` master.
    """
    spec = scenario.simulation
    assert spec is not None
    if seeds is not None:
        seed_list = list(seeds)
        for seed in seed_list:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ValueError(
                    f"seeds must be integers, got {seed!r}"
                )
        if not seed_list:
            raise ValueError("seeds must not be empty")
        if trials is not None and trials != len(seed_list):
            raise ValueError(
                f"trials={trials} contradicts len(seeds)={len(seed_list)}; "
                f"give one or the other"
            )
        return list(seed_list)
    count = trials if trials is not None else spec.trials
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise ValueError(
            f"trials must be an integer >= 1, got {count!r}"
        )
    return [derive_seed(spec.seed, index) for index in range(count)]


def scenario_context(scenario: Scenario, schedules: Dict[str, ModeSchedule]) -> dict:
    """The JSON context trial workers rebuild deployments from.

    Public building block for custom evaluation loops: feed the result
    to :func:`repro.runtime.trial.build_context` to get the
    :class:`~repro.runtime.trial.TrialContext` (deployments, compiled
    round program, simulation parameters) that
    :func:`~repro.runtime.trial.run_trial` executes against.
    """
    system = scenario.to_system()  # assigns mode-graph ids
    spec = scenario.simulation
    assert spec is not None
    topology = scenario.build_topology()
    radio = scenario.build_radio(topology)
    return {
        "modes": [mode_to_dict(mode) for mode in system.modes],
        "schedules": {
            name: schedule_to_dict(schedule)
            for name, schedule in schedules.items()
        },
        "sim": spec.to_dict(),
        "radio": (
            {"payload_bytes": radio.payload_bytes, "diameter": radio.diameter}
            if radio is not None
            else None
        ),
        "topology": scenario.topology.to_dict() if scenario.topology else None,
    }


def _point_loss(
    scenario: Scenario,
    point: Dict[str, object],
    seed: Optional[int],
) -> Optional[dict]:
    """The loss description of one trial: base params + grid point + seed."""
    if scenario.loss is None:
        if point:
            raise ScenarioError(
                f"scenario {scenario.name!r} has no loss model to sweep "
                f"over; set Scenario.loss"
            )
        return None
    kind = scenario.loss.kind
    params = dict(scenario.loss.params)
    params.update(point)
    if seed is not None:
        params = reseeded(kind, params, seed)  # no-op for seedless kinds
    return {"kind": kind, "params": params}


def run_campaigns(
    scenarios: Sequence[Scenario],
    trials: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    sweep: Optional[Dict[str, Sequence]] = None,
    jobs: int = 1,
    cache: Optional[ScheduleCache] = None,
    cache_dir: "Optional[str | Path]" = None,
    warm_start: bool = True,
    stats: Optional[EngineStats] = None,
    engine: str = "fast",
    pool=None,
) -> CampaignResult:
    """Run a Monte-Carlo campaign over many scenarios.

    Args:
        scenarios: Scenario descriptions; each needs a simulation
            phase.
        trials: Trials per grid point (default: each scenario's
            ``simulation.trials``).
        seeds: Explicit per-trial seeds, overriding the deterministic
            derivation from ``simulation.seed`` (the list is reused at
            every grid point — common random numbers).
        sweep: ``{loss_param: [values, ...]}`` grid; the cartesian
            product of all parameters is evaluated per scenario.
        jobs: Worker processes shared by synthesis *and* trial
            execution; ``1`` runs everything in-process.
        cache: An existing schedule cache to share.
        cache_dir: Build a persistent cache here (ignored when
            ``cache`` is given).
        warm_start: Seed Algorithm 1 at the demand lower bound.
        stats: Engine counters to update in place.
        engine: Trial engine — ``"fast"`` (default) lowers each
            scenario into a compiled round program once per worker
            (via the trial pool's context cache) and runs trials
            trace-free, falling back to the reference simulator for
            unsupported features; ``"vectorized"`` additionally
            executes all trials of a grid point as batched tensor
            programs (distribution-equivalent to the other engines,
            not bit-identical; falls back ``vectorized -> fast ->
            reference``); ``"reference"`` always walks the
            object-level simulator.  ``fast`` and ``reference``
            results are bit-identical; :attr:`CampaignResult.engines`
            records what actually ran.
        pool: Optional :class:`~repro.engine.trials.ResidentPool`
            (built with :func:`~repro.runtime.trial.build_context` and
            :func:`~repro.runtime.trial.execute_trial_task`) to run
            trials on instead of a per-call :class:`TrialPool` — a
            long-lived executor whose workers cache built contexts
            across calls; ``jobs`` then only governs synthesis.

    Returns:
        A :class:`CampaignResult`; scenarios whose schedules fail
        verification contribute reports but no trials.

    Raises:
        ScenarioError: on inconsistent scenarios (no simulation phase,
            sweeping a scenario without a loss model, ...).
        ValueError: on invalid ``trials`` / ``seeds`` / ``sweep`` /
            ``engine``.
    """
    if not scenarios:
        raise ValueError("run_campaigns needs at least one scenario")
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {', '.join(ENGINES)}, got {engine!r}"
        )
    for scenario in scenarios:
        scenario.validate()
        if scenario.simulation is None:
            raise ScenarioError(
                f"scenario {scenario.name!r} has no simulation phase; a "
                f"campaign needs Scenario.simulation (duration, trials, seed)"
            )
    points = _expand_sweep(sweep)
    seeds_by_scenario = {
        scenario.name: _resolve_seeds(scenario, trials, seeds)
        for scenario in scenarios
    }
    emit(
        "campaign.begin",
        scenarios=[scenario.name for scenario in scenarios],
        points=len(points),
        engine=engine,
        jobs=jobs,
        trials=sum(len(s) for s in seeds_by_scenario.values()) * len(points),
    )

    # Phase 1 — synthesis: one cached batch over every mode of every
    # scenario (shared with Experiment.run); identical problems — all
    # grid points, all trials — are solved exactly once.
    cache = cache if cache is not None else (
        ScheduleCache(cache_dir) if cache_dir is not None else None
    )
    synthesis_started = time.perf_counter()
    all_schedules, all_reports, stats = synthesize_scenarios(
        scenarios, jobs=jobs, cache=cache, warm_start=warm_start, stats=stats
    )
    wall_seconds = {"synthesis": time.perf_counter() - synthesis_started}

    result = CampaignResult(
        schedules=all_schedules, reports=all_reports, stats=stats,
        wall_seconds=wall_seconds,
    )
    contexts: Dict[str, dict] = {}
    tasks: List[Tuple[str, dict]] = []
    for scenario in scenarios:
        schedules = all_schedules[scenario.name]
        if not all(r.ok for r in all_reports[scenario.name].values()):
            continue  # reports record the failure; no trials to run

        # Validate every grid point eagerly, in the parent, where the
        # error message can name the scenario — not deep in a worker.
        topology = scenario.build_topology()
        for point in points:
            loss = _point_loss(scenario, point, seed=0)
            if loss is not None:
                try:
                    build_loss(loss["kind"], loss["params"], topology)
                except ValueError as exc:
                    raise ScenarioError(
                        f"scenario {scenario.name!r}: {exc}"
                    ) from None

        contexts[scenario.name] = scenario_context(scenario, schedules)
        scenario_seeds = seeds_by_scenario[scenario.name]
        for point_index, point in enumerate(points):
            emit("campaign.point.begin", scenario=scenario.name,
                 point=point_index, trials=len(scenario_seeds))
            if engine == "vectorized":
                # The vectorized kernel amortizes tensor setup over
                # many trials, so a grid point becomes a few *batch*
                # tasks (one per worker share) instead of one task per
                # trial.  Per-trial seeding keeps results identical
                # however the batches are cut.
                indexed = list(enumerate(scenario_seeds))
                shares = max(1, min(jobs, len(indexed)))
                size = (len(indexed) + shares - 1) // shares
                for lo in range(0, len(indexed), size):
                    tasks.append((
                        scenario.name,
                        {
                            "scenario": scenario.name,
                            "point": point_index,
                            "trials": indexed[lo : lo + size],
                            "loss": _point_loss(scenario, point, seed=None),
                            "engine": engine,
                        },
                    ))
            else:
                for trial_index, seed in enumerate(scenario_seeds):
                    tasks.append((
                        scenario.name,
                        {
                            "scenario": scenario.name,
                            "point": point_index,
                            "trial": trial_index,
                            "seed": seed,
                            "loss": _point_loss(scenario, point, seed),
                            "engine": engine,
                        },
                    ))

    # Phase 2 — evaluation: every trial of every scenario and grid
    # point drains through one shared pool.
    with timed_span("simulate") as simulate_span:
        if pool is not None:
            # Resident executor: group tasks per scenario (one shared
            # context each) and drain them through the caller's
            # long-lived pool, whose workers cache built contexts under
            # their content key — repeated campaigns over the same
            # scenario never rebuild deployments.  Aggregation below
            # groups by the (scenario, point) keys echoed into every
            # outcome, so the per-scenario ordering is equivalent to
            # the flat task list.
            import hashlib
            import json

            by_scenario: Dict[str, List[dict]] = {}
            for name, task in tasks:
                by_scenario.setdefault(name, []).append(task)
            outcomes = []
            for name, scenario_tasks in by_scenario.items():
                context_data = contexts[name]
                context_key = hashlib.sha256(
                    json.dumps(context_data, sort_keys=True).encode("utf-8")
                ).hexdigest()
                outcomes.extend(
                    pool.run(context_key, context_data, scenario_tasks)
                )
        else:
            executor = (
                execute_trial_batch if engine == "vectorized" else execute_trial
            )
            trial_pool = TrialPool(build_context, executor, contexts, jobs=jobs)
            outcomes = trial_pool.map(tasks)
    wall_seconds["simulation"] = simulate_span.seconds

    # Phase 3 — aggregation, grouped by (scenario, grid point).  Batch
    # outcomes flatten to the same per-trial payload shape first.
    with timed_span("aggregate") as aggregate_span:
        flat: List[dict] = []
        fallback_reasons: Dict[str, str] = {}
        for outcome in outcomes:
            flat.extend(outcome.get("results", [outcome]))
            # Batch outcomes carry the reason at the envelope level —
            # it would be lost in the per-trial flatten below.
            reason = outcome.get("engine_reason")
            if reason is not None and outcome.get("scenario") is not None:
                fallback_reasons[outcome["scenario"]] = reason
        grouped: Dict[Tuple[str, int], List[TrialResult]] = {}
        for outcome in flat:
            key = (outcome["scenario"], outcome["point"])
            grouped.setdefault(key, []).append(TrialResult.from_dict(outcome))
            used = outcome.get("engine_used")
            if used is not None:
                result.engines[outcome["scenario"]] = used
            reason = outcome.get("engine_reason")
            if reason is not None:
                fallback_reasons[outcome["scenario"]] = reason
        for scenario in scenarios:
            if scenario.name not in contexts:
                continue
            for point_index, point in enumerate(points):
                trial_results = grouped.get((scenario.name, point_index), [])
                stats_point = CampaignStats.aggregate(trial_results)
                result.points.append(
                    PointResult(
                        scenario=scenario.name,
                        point=dict(point),
                        seeds=list(seeds_by_scenario[scenario.name]),
                        stats=stats_point,
                        trials=trial_results,
                    )
                )
                emit("campaign.point.end", scenario=scenario.name,
                     point=point_index, trials=len(trial_results),
                     collisions=stats_point.collisions)
    wall_seconds["aggregation"] = aggregate_span.seconds

    # The engine-resolution ladder's outcome, per scenario: what ran,
    # and — when a rung was taken — why.
    for name, used in result.engines.items():
        emit("engine.resolved", scenario=name, requested=engine, used=used)
        if used != engine:
            emit("engine.fallback", scenario=name, requested=engine,
                 used=used, reason=fallback_reasons.get(name))
    emit("campaign.end", points=len(result.points), ok=result.ok,
         wall_seconds=wall_seconds)
    return result


def run_campaign(
    scenario: Scenario,
    trials: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    sweep: Optional[Dict[str, Sequence]] = None,
    jobs: int = 1,
    cache: Optional[ScheduleCache] = None,
    cache_dir: "Optional[str | Path]" = None,
    warm_start: bool = True,
    engine: str = "fast",
) -> CampaignResult:
    """One-scenario convenience wrapper over :func:`run_campaigns`."""
    return run_campaigns(
        [scenario],
        trials=trials,
        seeds=seeds,
        sweep=sweep,
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        warm_start=warm_start,
        engine=engine,
    )
