"""Trace-free trial execution over compiled round programs.

This is the dynamic half of the Monte-Carlo fast path (the static half
— :func:`repro.runtime.compiled.compile_program` — lowers a scenario
into arrays once).  :func:`run_program` executes one seeded trial and
accumulates a :class:`~repro.runtime.trial.TrialResult` **directly**:
no ``Trace``, no ``SlotRecord``/``MessageInstanceRecord`` objects, no
post-hoc ``summarize_trace`` pass.  Receiver sets are integer bitmasks,
message/chain statistics are flat counters indexed by compiled ids, and
radio-on time is accumulated per node in chronological order (so the
floating-point sums match the reference's addition order bit for bit).

Bit-identity is the design constraint that shapes the samplers: the
reference loss models consume a scalar ``random.Random`` stream one
draw per (node, flood) in sorted-node order, so the fast path cannot
resample with numpy — instead each supported loss kind gets a
*sampler* that consumes **the same stream in the same order** while
writing bitmasks instead of building Python sets (`_BernoulliSampler`,
`_GilbertElliottSampler`, ...).  ``glossy`` floods are genuinely
topology-dependent and run through the model itself via
`_ModelSampler`.  A loss kind without a registered sampler is reported
unsupported and the caller falls back to the reference simulator —
that is the extension point future loss models hit by default.

Equal seeds therefore give equal summaries across engines, which the
equivalence suite (``tests/mc/test_fastpath.py``) asserts over a
seed × policy × loss-model × mode-change matrix.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from ..runtime.compiled import SystemProgram, names_to_mask
from ..runtime.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    InterferenceLoss,
    LossModel,
    MatrixTraceLoss,
    PerfectLinks,
    ScriptedBeaconLoss,
    SpatialLoss,
    TimeVaryingLoss,
    TraceExhaustedError,
    TraceReplayLoss,
)
from ..runtime.simulator import EPS, ModeRequest, NodePolicy
from ..runtime.trial import TrialResult


# -- loss samplers -----------------------------------------------------------


class _PerfectSampler:
    """No loss: every flood reaches every node, no stream consumed."""

    def __init__(self, model, program: SystemProgram) -> None:
        self._full = program.full_mask

    def beacon_mask(self, host_index: int) -> int:
        return self._full

    def data_mask(self, sender_index: int) -> int:
        return self._full


class _BernoulliSampler:
    """Bitmask twin of :class:`BernoulliLoss`.

    Consumes ``model._rng`` exactly like ``BernoulliLoss._sample``:
    one draw per non-``always`` node in sorted order, and **zero**
    draws when the loss probability is ``<= 0`` (the reference
    short-circuits before touching the stream).
    """

    def __init__(self, model: BernoulliLoss, program: SystemProgram) -> None:
        self._random = model._rng.random
        self._beacon_loss = model.beacon_loss
        self._data_loss = model.data_loss
        self._full = program.full_mask
        self._count = len(program.node_names)
        # Per ``always`` node: the other nodes' bits in sorted order
        # (so the draw loop needs no index comparison), built lazily —
        # only the host and actual senders ever appear here.
        self._orders: Dict[int, tuple] = {}

    def _order(self, always_index: int) -> tuple:
        order = self._orders.get(always_index)
        if order is None:
            order = tuple(
                1 << index
                for index in range(self._count)
                if index != always_index
            )
            self._orders[always_index] = order
        return order

    def _sample(self, loss: float, always_index: int) -> int:
        if loss <= 0.0:
            return self._full
        mask = 1 << always_index
        random = self._random
        for bit in self._order(always_index):
            if random() >= loss:
                mask |= bit
        return mask

    def beacon_mask(self, host_index: int) -> int:
        return self._sample(self._beacon_loss, host_index)

    def data_mask(self, sender_index: int) -> int:
        return self._sample(self._data_loss, sender_index)


class _GilbertElliottSampler:
    """Bitmask twin of :class:`GilbertElliottLoss`.

    The per-node Markov channels advance once per beacon, every node
    including the host, in sorted order — one ``random()`` per advance
    plus one per loss decision, exactly the reference's consumption.
    """

    def __init__(
        self, model: GilbertElliottLoss, program: SystemProgram
    ) -> None:
        self._random = model._rng.random
        self._p_gb = model.p_good_to_bad
        self._p_bg = model.p_bad_to_good
        self._loss_good = model.loss_good
        self._loss_bad = model.loss_bad
        self._count = len(program.node_names)
        self._bad = [False] * self._count

    def beacon_mask(self, host_index: int) -> int:
        mask = 1 << host_index
        random = self._random
        bad = self._bad
        for index in range(self._count):
            if bad[index]:
                if random() < self._p_bg:
                    bad[index] = False
            else:
                if random() < self._p_gb:
                    bad[index] = True
            if index == host_index:
                continue
            loss = self._loss_bad if bad[index] else self._loss_good
            if random() >= loss:
                mask |= 1 << index
        return mask

    def data_mask(self, sender_index: int) -> int:
        mask = 1 << sender_index
        random = self._random
        bad = self._bad
        for index in range(self._count):
            if index == sender_index:
                continue
            loss = self._loss_bad if bad[index] else self._loss_good
            if random() >= loss:
                mask |= 1 << index
        return mask


class _ScriptedBeaconSampler:
    """Bitmask twin of :class:`ScriptedBeaconLoss` (deterministic)."""

    def __init__(
        self, model: ScriptedBeaconLoss, program: SystemProgram
    ) -> None:
        self._full = program.full_mask
        self._drops = {
            index: _mask_of(names, program)
            for index, names in model.drops.items()
        }
        self._counter = model._beacon_counter

    def beacon_mask(self, host_index: int) -> int:
        dropped = self._drops.get(self._counter, 0)
        self._counter += 1
        return (self._full & ~dropped) | (1 << host_index)

    def data_mask(self, sender_index: int) -> int:
        return self._full


class _TraceReplaySampler:
    """Bitmask twin of :class:`TraceReplayLoss` (deterministic)."""

    def __init__(self, model: TraceReplayLoss, program: SystemProgram) -> None:
        self._full = program.full_mask
        self._beacon = [_mask_of(event, program) for event in model.beacon_events]
        self._data = [_mask_of(event, program) for event in model.data_events]
        self._on_end = model.on_end
        self._beacon_cursor = model._beacon_cursor
        self._data_cursor = model._data_cursor

    def _next(self, masks: List[int], cursor: int, label: str):
        if not masks:
            if self._on_end == "error":
                raise TraceExhaustedError(
                    f"trace_replay: empty {label} trace with on_end='error'"
                )
            return None, cursor
        if cursor >= len(masks):
            if self._on_end == "perfect":
                return None, cursor
            if self._on_end == "error":
                raise TraceExhaustedError(
                    f"trace_replay: {label} trace exhausted after "
                    f"{len(masks)} events (on_end='error'); provide a "
                    f"longer trace or choose on_end='wrap'/'perfect'"
                )
            cursor = cursor % len(masks)
        return masks[cursor], cursor + 1

    def beacon_mask(self, host_index: int) -> int:
        event, self._beacon_cursor = self._next(
            self._beacon, self._beacon_cursor, "beacon"
        )
        if event is None:
            return self._full
        return event | (1 << host_index)

    def data_mask(self, sender_index: int) -> int:
        event, self._data_cursor = self._next(
            self._data, self._data_cursor, "data"
        )
        if event is None:
            return self._full
        return event | (1 << sender_index)


class _SpatialSampler:
    """Bitmask twin of :class:`SpatialLoss`.

    The PDR matrix is a construction-time constant; per flood the
    sampler walks the source's precomputed per-receiver loss row in
    node-index order (== sorted name order), consuming ``model._rng``
    exactly like ``SpatialLoss._sample``: one draw per receiver whose
    loss is ``> 0``, zero draws otherwise.
    """

    def __init__(self, model: SpatialLoss, program: SystemProgram) -> None:
        self._random = model._rng.random
        self._count = len(program.node_names)
        pdr = model._pdr
        # loss rows indexed [source][receiver] by compiled node index.
        self._loss = [
            [1.0 - pdr[src][dst] for dst in program.node_names]
            for src in program.node_names
        ]

    def _sample(self, source_index: int) -> int:
        mask = 1 << source_index
        random = self._random
        row = self._loss[source_index]
        for index in range(self._count):
            if index == source_index:
                continue
            loss = row[index]
            if loss <= 0.0 or random() >= loss:
                mask |= 1 << index
        return mask

    def beacon_mask(self, host_index: int) -> int:
        return self._sample(host_index)

    def data_mask(self, sender_index: int) -> int:
        return self._sample(sender_index)


class _MatrixTraceSampler:
    """Bitmask twin of :class:`MatrixTraceLoss`.

    Every trace entry is lowered once into per-source loss rows indexed
    by compiled node index; the round cursor and the exhaustion policy
    (``wrap``/``perfect``/``error``) mirror the model exactly —
    including raising the model's own :class:`TraceExhaustedError`.
    """

    def __init__(self, model: MatrixTraceLoss, program: SystemProgram) -> None:
        self._model = model
        self._random = model._rng.random
        self._full = program.full_mask
        self._count = len(program.node_names)
        self._on_end = model.on_end
        names = program.node_names
        self._losses = [
            [
                [1.0 - rows.get(src, {}).get(dst, default) for dst in names]
                for src in names
            ]
            for rows, default in model._entries
        ]
        self._beacon_count = model._beacon_count

    def _rows_for_round(self, round_index: int):
        count = len(self._losses)
        if round_index < count:
            return self._losses[round_index]
        if self._on_end == "wrap":
            return self._losses[round_index % count]
        if self._on_end == "error":
            self._model.matrix_for_round(round_index)  # raises
        return None

    def _sample(self, source_index: int, round_index: int) -> int:
        rows = self._rows_for_round(round_index)
        if rows is None:
            return self._full
        mask = 1 << source_index
        random = self._random
        row = rows[source_index]
        for index in range(self._count):
            if index == source_index:
                continue
            loss = row[index]
            if loss <= 0.0 or random() >= loss:
                mask |= 1 << index
        return mask

    def beacon_mask(self, host_index: int) -> int:
        round_index = self._beacon_count
        self._beacon_count += 1
        return self._sample(host_index, round_index)

    def data_mask(self, sender_index: int) -> int:
        return self._sample(sender_index, max(0, self._beacon_count - 1))


class _TimeVaryingSampler:
    """Bitmask twin of :class:`TimeVaryingLoss`.

    Keeps its own round counter and calls the model's pure
    ``loss_at`` so the float math — and therefore the draw-skip
    decision at ``loss <= 0`` — is identical to the reference.
    """

    def __init__(self, model: TimeVaryingLoss, program: SystemProgram) -> None:
        self._model = model
        self._random = model._rng.random
        self._count = len(program.node_names)
        self._round = model._round

    def _sample(self, loss: float, always_index: int) -> int:
        mask = 1 << always_index
        random = self._random
        for index in range(self._count):
            if index == always_index:
                continue
            if loss <= 0.0 or random() >= loss:
                mask |= 1 << index
        return mask

    def beacon_mask(self, host_index: int) -> int:
        round_index = self._round
        self._round += 1
        loss = self._model.loss_at(round_index, self._model.beacon_loss)
        return self._sample(loss, host_index)

    def data_mask(self, sender_index: int) -> int:
        round_index = max(0, self._round - 1)
        loss = self._model.loss_at(round_index, self._model.data_loss)
        return self._sample(loss, sender_index)


class _InterferenceSampler:
    """Bitmask twin of :class:`InterferenceLoss`.

    The jammer's duty-cycle state comes from the model's pure
    ``jammed``; the per-node affected set is precomputed as a flag per
    compiled node index.  Draw consumption mirrors the reference: one
    draw per non-``always`` node whose effective loss is ``> 0``.
    """

    def __init__(self, model: InterferenceLoss, program: SystemProgram) -> None:
        self._model = model
        self._random = model._rng.random
        self._count = len(program.node_names)
        self._jam_loss = model.jam_loss
        self._base_beacon = model.base_beacon_loss
        self._base_data = model.base_data_loss
        self._affected = [
            model.affected is None or name in model.affected
            for name in program.node_names
        ]
        self._round = model._round

    def _sample(self, round_index: int, base: float, always_index: int) -> int:
        mask = 1 << always_index
        random = self._random
        jammed = self._model.jammed(round_index)
        affected = self._affected
        jam_loss = self._jam_loss
        for index in range(self._count):
            if index == always_index:
                continue
            loss = jam_loss if jammed and affected[index] else base
            if loss <= 0.0 or random() >= loss:
                mask |= 1 << index
        return mask

    def beacon_mask(self, host_index: int) -> int:
        round_index = self._round
        self._round += 1
        return self._sample(round_index, self._base_beacon, host_index)

    def data_mask(self, sender_index: int) -> int:
        round_index = max(0, self._round - 1)
        return self._sample(round_index, self._base_data, sender_index)


class _ModelSampler:
    """Generic adapter: drive the loss model itself, convert to masks.

    Used for flood-accurate kinds (``glossy``) whose realization
    depends on the topology — the model's own RNG stream is consumed
    by the model, so bit-identity holds by construction.
    """

    def __init__(self, model: LossModel, program: SystemProgram) -> None:
        self._model = model
        self._names = program.node_names
        self._nodes = set(program.node_names)
        self._index = program.node_index
        self._payload = program.payload_bytes

    def beacon_mask(self, host_index: int) -> int:
        received = self._model.beacon_receivers(
            self._names[host_index], self._nodes
        )
        return names_to_mask(received, self._index)

    def data_mask(self, sender_index: int) -> int:
        received = self._model.data_receivers(
            self._names[sender_index], self._nodes,
            payload_bytes=self._payload,
        )
        return names_to_mask(received, self._index)


def _mask_of(names, program: SystemProgram) -> int:
    return names_to_mask(names, program.node_index)


def _perfect_builder(model, program):
    return _PerfectSampler(model, program)


#: loss kind -> sampler builder.  ``None`` (no loss) maps to perfect.
#: A kind absent here is *unsupported*: :func:`supports_loss_kind`
#: returns False and the trial entry point falls back to the
#: reference simulator.
SAMPLER_BUILDERS: Dict[Optional[str], Callable] = {
    None: _perfect_builder,
    "perfect": _perfect_builder,
    "bernoulli": _BernoulliSampler,
    "gilbert_elliott": _GilbertElliottSampler,
    "scripted_beacon": _ScriptedBeaconSampler,
    "trace_replay": _TraceReplaySampler,
    "glossy": _ModelSampler,
    "spatial": _SpatialSampler,
    "matrix_trace": _MatrixTraceSampler,
    "time_varying": _TimeVaryingSampler,
    "interference": _InterferenceSampler,
}


def supports_loss_kind(kind: Optional[str]) -> bool:
    """Whether the fast path has a sampler for this loss kind."""
    return kind in SAMPLER_BUILDERS


def build_sampler(
    kind: Optional[str], model: Optional[LossModel], program: SystemProgram
):
    """Build the bitmask sampler for a freshly built loss model.

    Raises:
        KeyError: unknown kind — callers check
            :func:`supports_loss_kind` first and fall back.
    """
    if model is None:
        model = PerfectLinks()
    return SAMPLER_BUILDERS[kind](model, program)


# -- the executor ------------------------------------------------------------


def run_program(
    program: SystemProgram,
    sampler,
    duration: float,
    mode_requests: Sequence[ModeRequest] = (),
    host_node: Optional[str] = None,
) -> TrialResult:
    """Execute one trial of a compiled program and summarize it.

    Semantically equal to ``summarize_trace(RuntimeSimulator(...).run(
    duration, mode_requests, host_node))`` — bit for bit, including
    the floating-point accumulation order of radio-on time — but
    without constructing any trace objects.
    """
    host_index = program.resolve_host(host_node)
    if host_index is None:
        raise KeyError(
            f"host {host_node!r} is not a compiled node; callers gate on "
            f"trial_engine() and fall back to the reference simulator"
        )
    node_count = len(program.node_names)
    local_belief = program.policy is NodePolicy.LOCAL_BELIEF

    beacon_on = program.radio_beacon_on
    data_on = program.radio_data_on
    radio = [0.0] * node_count if beacon_on is not None else None

    requests = sorted(mode_requests, key=lambda r: r.time)
    request_count = len(requests)
    request_idx = 0

    mode_programs = program.modes
    uid_mode = program.uid_mode
    uid_index = program.uid_index
    drain_rows = program.drain_rows

    current_id = program.initial_mode
    mode_program = mode_programs[current_id]
    mode_origin = 0.0

    pending_target: Optional[int] = None
    requested_at = 0.0
    announced_at: Optional[float] = None
    drain_deadline: Optional[float] = None
    app_stop_time: Dict[int, float] = {}

    occurrence = 0
    round_cursor = 0

    rounds = 0
    heard = 0
    collisions = 0
    switches: List[tuple] = []

    gid_count = len(program.message_names)
    on_time_counts = [0] * gid_count
    delivered_counts = [0] * gid_count
    total_counts = [0] * gid_count
    seen = [False] * gid_count
    seen_order: List[int] = []
    msg_on_time: Dict[tuple, int] = {}

    beliefs = [-1] * node_count if local_belief else None

    while True:
        if mode_program.num_rounds == 0:
            break
        round_time = (
            mode_origin
            + occurrence * mode_program.hyperperiod
            + mode_program.round_starts_list[round_cursor]
        )
        if round_time >= duration - EPS:
            break

        # Service mode requests that arrived before this round.
        while (
            request_idx < request_count
            and requests[request_idx].time <= round_time + EPS
        ):
            request = requests[request_idx]
            request_idx += 1
            if pending_target is None and request.target_mode_id != current_id:
                if request.target_mode_id not in mode_programs:
                    raise ValueError(
                        f"mode request for unknown id {request.target_mode_id}"
                    )
                pending_target = request.target_mode_id
                requested_at = request.time

        # Host transition bookkeeping (announce, drain, trigger).
        trigger = False
        if pending_target is not None:
            if announced_at is None:
                announced_at = round_time
                drain = announced_at
                for period, deadline in drain_rows[current_id]:
                    elapsed = max(0.0, announced_at - mode_origin)
                    last_release = (
                        mode_origin + math.floor(elapsed / period) * period
                    )
                    drain = max(drain, last_release + deadline)
                drain_deadline = drain
                app_stop_time[current_id] = announced_at
            if drain_deadline is not None and round_time >= drain_deadline - EPS:
                trigger = True
        stop_time = app_stop_time.get(current_id)

        # Beacon flood.
        beacon_mask = sampler.beacon_mask(host_index)
        rounds += 1
        heard += beacon_mask.bit_count()

        if radio is not None:
            for index in range(node_count):
                radio[index] += beacon_on

        # LOCAL_BELIEF: resolve each node's predicted round once.
        if local_belief:
            current_uid = mode_program.uid_base + round_cursor
            tx_masks = mode_program.tx_slot_masks
            predicted_masks = []
            for index in range(node_count):
                if beacon_mask >> index & 1:
                    beliefs[index] = current_uid
                    predicted_masks.append(tx_masks[round_cursor][index])
                else:
                    belief = beliefs[index]
                    if belief < 0:
                        predicted_masks.append(0)
                        continue
                    belief_mode = uid_mode[belief]
                    belief_program = mode_programs[belief_mode]
                    next_uid = belief_program.uid_base + (
                        (uid_index[belief] + 1) % belief_program.num_rounds
                    )
                    beliefs[index] = next_uid
                    predicted_masks.append(
                        belief_program.tx_slot_masks[uid_index[next_uid]][index]
                    )

        # Data slots.
        for slot_index, row in enumerate(mode_program.slot_rows[round_cursor]):
            (
                gid,
                sender_index,
                sender_bit,
                consumers_mask,
                record,
                period,
                offset,
                deadline,
                per_hp,
                pos_minus_leftover,
                shift,
            ) = row

            if local_belief:
                tx_mask = 0
                tx_count = 0
                tx_index = -1
                for index, predicted in enumerate(predicted_masks):
                    if predicted >> slot_index & 1:
                        tx_mask |= 1 << index
                        tx_count += 1
                        tx_index = index
                if tx_count > 1:
                    collisions += 1
                delivering = tx_count == 1 and tx_index == sender_index
            else:
                # BEACON_GATED: the only candidate transmitter of a slot
                # is its scheduled sender, gated on this round's beacon.
                delivering = (beacon_mask & sender_bit) != 0
                tx_mask = sender_bit if delivering else 0

            receive_mask = sampler.data_mask(sender_index) if delivering else 0

            if radio is not None and (beacon_mask or tx_mask):
                participants = beacon_mask | tx_mask
                while participants:
                    low = participants & -participants
                    radio[low.bit_length() - 1] += data_on
                    participants ^= low

            if not record:
                continue
            instance = occurrence * per_hp + pos_minus_leftover
            if instance < 0:
                continue  # serves an instance from before the mode started
            if stop_time is not None:
                app_release = mode_origin + (instance - shift) * period
                if app_release >= stop_time - EPS:
                    continue
            release = mode_origin + instance * period + offset
            if (
                delivering
                and consumers_mask
                and receive_mask & consumers_mask == consumers_mask
            ):
                delivered = 1
                abs_deadline = release + deadline
                on_time = 1 if round_time <= abs_deadline + 1e-9 else 0
            else:
                delivered = 0
                on_time = 0
            total_counts[gid] += 1
            delivered_counts[gid] += delivered
            on_time_counts[gid] += on_time
            if not seen[gid]:
                seen[gid] = True
                seen_order.append(gid)
            msg_on_time[(gid, instance)] = on_time

        if trigger and pending_target is not None:
            # New mode starts directly after this round ends.
            new_origin = round_time + mode_program.round_length
            switches.append(
                (requested_at, new_origin, current_id, pending_target)
            )
            current_id = pending_target
            mode_program = mode_programs[current_id]
            mode_origin = new_origin
            occurrence = 0
            round_cursor = 0
            pending_target = None
            announced_at = None
            drain_deadline = None
            if local_belief:
                # Nodes that heard the SB beacon switch; for prediction
                # the next round is round 0 of the new mode, i.e. the
                # successor of its last round in cyclic order.
                last_uid = mode_program.uid_base + mode_program.num_rounds - 1
                for index in range(node_count):
                    if beacon_mask >> index & 1:
                        beliefs[index] = last_uid
            continue

        round_cursor += 1
        if round_cursor >= mode_program.num_rounds:
            round_cursor = 0
            occurrence += 1

    # -- chain accounting (the reference's _account_chains) ---------------
    chains_complete: Dict[str, int] = {}
    chains_total: Dict[str, int] = {}
    segments: List[tuple] = []
    start = 0.0
    segment_mode = program.initial_mode
    for req_at, new_start, _from_mode, to_mode in switches:
        segments.append((segment_mode, start, new_start))
        start = new_start
        segment_mode = to_mode
    segments.append((segment_mode, start, duration))

    for mode_id, seg_start, seg_end in segments:
        stop = app_stop_time.get(mode_id, math.inf)
        horizon = min(seg_end, stop, duration)
        for app_name, period, chains in program.chain_rows[mode_id]:
            for first_offset, latency, checks in chains:
                k = 0
                while True:
                    app_release = seg_start + k * period
                    release = app_release + first_offset
                    if app_release >= horizon - EPS:
                        break
                    completion = release + latency
                    if completion > duration + EPS:
                        # Cannot be judged within the horizon.
                        break
                    complete = True
                    for gid, shift in checks:
                        if not msg_on_time.get((gid, k + shift)):
                            complete = False
                            break
                    chains_total[app_name] = chains_total.get(app_name, 0) + 1
                    if complete:
                        chains_complete[app_name] = (
                            chains_complete.get(app_name, 0) + 1
                        )
                    k += 1

    # -- assemble the summary ---------------------------------------------
    result = TrialResult(duration=duration)
    result.rounds = rounds
    result.collisions = collisions
    result.beacon_heard = (heard, node_count * rounds)
    result.messages = {
        program.message_names[gid]: (
            on_time_counts[gid],
            delivered_counts[gid],
            total_counts[gid],
        )
        for gid in seen_order
    }
    result.chains = {
        app: (chains_complete.get(app, 0), total)
        for app, total in chains_total.items()
    }
    if radio is not None:
        result.radio_on = {
            name: radio[index]
            for index, name in enumerate(program.node_names)
        }
    else:
        result.radio_on = {name: 0.0 for name in program.node_names}
    result.switch_delays = [
        new_start - req_at for req_at, new_start, _f, _t in switches
    ]
    return result
