"""Vectorized campaign kernel — all trials of a grid point at once.

The compiled fast path (:mod:`repro.mc.fastpath`) removed the trace but
still runs **one Python loop per trial**.  This module removes that
loop too, exploiting a structural fact of beacon-gated execution: the
round timeline — which round of which mode executes when, when mode
changes trigger, which slot records which message instance against
which deadline — is **fully deterministic**.  Loss only decides who
*receives* each flood, never what the host schedules.  So a grid point
factors into three array-programming stages:

1. :func:`unroll_timeline` — walk the compiled round program once
   (exactly :func:`repro.mc.fastpath.run_program`'s control flow, with
   the sampling stripped out) into a :class:`Timeline`: flat arrays
   over the executed rounds and slots, the deterministic per-flow
   instance totals, the chain-check index matrices, and the switch
   delays.  Computed once per scenario and cached on the
   :class:`~repro.runtime.trial.TrialContext`.
2. **Sampling** — the full loss bitmask tensor for every trial up
   front: ``beacon[trials, rounds, nodes]`` and ``data[trials, slots,
   nodes]`` boolean arrays, drawn per trial from that trial's own
   ``numpy.random.default_rng(seed)`` in a fixed intra-trial order
   (so results are independent of how trials are batched across pool
   workers).
3. :func:`accumulate_trials` — pure array reductions: delivery is a
   fancy-index gather plus an ``all`` over consumer bits, radio-on
   time is an integer round-participation count times the slot
   constants, chain completeness is an ``all`` over precomputed
   check-index matrices.  All reductions stay in integers until the
   final per-trial scalars, so no chunking strategy can perturb a
   floating-point sum.

The contract is **distribution equivalence, not bit identity**: the
vectorized samplers draw from numpy streams, not the reference models'
``random.Random`` streams, so per-seed results differ from the
``fast``/``reference`` engines while every *deterministic* quantity
(instance totals, rounds, switch delays, deadline flags) matches
exactly and every sampled *distribution* (miss rates, radio-on, burst
structure) agrees statistically.  :mod:`repro.mc.equivalence` is the
harness that makes this claim testable; ``fast`` stays the bit-exact
default engine.

Within one seed the engine is fully deterministic: equal seeds give
byte-identical :class:`~repro.runtime.trial.TrialResult`\\ s across
repeated runs, ``jobs`` settings, and trial-batch splits.

Unsupported features fall back along ``vectorized -> fast ->
reference`` (see :func:`repro.runtime.trial.trial_engine`): loss kinds
without a vector sampler (``glossy`` floods are topology-sequential),
the ``LOCAL_BELIEF`` ablation (per-round belief recurrences), scenarios
the compiler rejects, and out-of-deployment beacon hosts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.compiled import SystemProgram, names_to_mask
from ..runtime.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    InterferenceLoss,
    LossModel,
    MatrixTraceLoss,
    PerfectLinks,
    ScriptedBeaconLoss,
    SpatialLoss,
    TimeVaryingLoss,
    TraceExhaustedError,
    TraceReplayLoss,
    build_loss,
)
from ..runtime.simulator import EPS, ModeRequest, NodePolicy
from ..runtime.trial import TrialResult


class VectorizeError(Exception):
    """A feature the vectorized kernel does not support.

    Like :class:`~repro.runtime.compiled.CompileError`, raising this is
    not an error condition for campaign callers: the trial entry point
    gates on :func:`repro.runtime.trial.trial_engine` and falls back to
    the ``fast`` engine instead.
    """


#: Approximate per-chunk tensor budget (bytes).  Trials are processed
#: in chunks so the uniform-draw and bitmask tensors of huge campaigns
#: stay bounded; chunking cannot change results because every trial
#: draws from its own seeded generator.
TENSOR_BUDGET_BYTES = 128 * 1024 * 1024

#: ``numpy.random.default_rng`` rejects negative seeds while
#: ``random.Random`` accepts them; explicit user seeds are normalized
#: into the SeedSequence domain with this mask.
_SEED_MASK = (1 << 128) - 1


# -- the deterministic timeline ----------------------------------------------


@dataclass(frozen=True)
class Timeline:
    """The deterministic skeleton shared by every trial of a scenario.

    Everything :func:`repro.mc.fastpath.run_program` derives per trial
    that does *not* depend on the loss realization, flattened over the
    executed rounds (``R``) and data slots (``S``) of the full horizon.

    Attributes:
        num_rounds: Executed rounds ``R``.
        num_slots: Executed data slots ``S`` (every slot, recorded or
            not — replay cursors and radio accounting see them all).
        slots_per_round: ``(R,)`` int64 slot count per round — the
            radio-accounting weights.
        slot_round: ``(S,)`` executed-round index of each slot.
        slot_sender: ``(S,)`` transmitting node index of each slot.
        slot_deadline_ok: ``(S,)`` whether a delivery in this slot
            meets its instance's deadline (deterministic).
        flow_slots: ``(gid, slot-index array)`` per recorded flow, in
            first-recorded order (the reference's ``seen_order``); the
            array length is the flow's deterministic instance total.
        consumers: ``(S, N)`` consumer membership per slot.
        has_consumers: ``(S,)`` consumer set non-empty per slot.
        chain_programs: ``(app_name, total, checks)`` per application
            with judged chain instances, in the reference's accounting
            order; ``checks`` is an ``(instances, max_checks)`` index
            matrix into the padded per-slot on-time matrix — index
            ``S`` means a missing instance (never on time), ``S + 1``
            is padding (trivially satisfied).
        switch_delays: Mode-change delays — identical in every trial.
    """

    num_rounds: int
    num_slots: int
    slots_per_round: np.ndarray
    slot_round: np.ndarray
    slot_sender: np.ndarray
    slot_deadline_ok: np.ndarray
    flow_slots: Tuple[Tuple[int, np.ndarray], ...]
    consumers: np.ndarray
    has_consumers: np.ndarray
    chain_programs: Tuple[Tuple[str, int, np.ndarray], ...]
    switch_delays: Tuple[float, ...]


def unroll_timeline(
    program: SystemProgram,
    duration: float,
    mode_requests: Sequence[ModeRequest] = (),
) -> Timeline:
    """Walk the compiled program once into its :class:`Timeline`.

    Replays :func:`repro.mc.fastpath.run_program`'s control flow —
    round scheduling, mode-request servicing, drain deadlines, the
    instance/stop-time gating of every slot, chain accounting — with
    identical plain-float arithmetic, so the deterministic outputs
    (instance totals, deadline flags, switch delays) equal the fast
    engine's exactly.

    Raises:
        VectorizeError: for the ``LOCAL_BELIEF`` ablation, whose
            belief recurrence couples transmission to the loss
            realization — there the timeline is *not* deterministic
            and callers fall back to the ``fast`` engine.
    """
    if program.policy is not NodePolicy.BEACON_GATED:
        raise VectorizeError(
            f"vectorized kernel supports the beacon_gated policy only, "
            f"got {program.policy.value!r}; falling back to the fast engine"
        )

    requests = sorted(mode_requests, key=lambda r: r.time)
    request_count = len(requests)
    request_idx = 0

    mode_programs = program.modes
    drain_rows = program.drain_rows

    current_id = program.initial_mode
    mode_program = mode_programs[current_id]
    mode_origin = 0.0

    pending_target: Optional[int] = None
    requested_at = 0.0
    announced_at: Optional[float] = None
    drain_deadline: Optional[float] = None
    app_stop_time: Dict[int, float] = {}

    occurrence = 0
    round_cursor = 0

    slots_per_round: List[int] = []
    slot_round: List[int] = []
    slot_sender: List[int] = []
    slot_deadline_ok: List[bool] = []
    consumer_masks: List[int] = []
    switches: List[tuple] = []

    flow_lists: Dict[int, List[int]] = {}
    seen_order: List[int] = []
    occ_of: Dict[tuple, int] = {}

    while True:
        if mode_program.num_rounds == 0:
            break
        round_time = (
            mode_origin
            + occurrence * mode_program.hyperperiod
            + mode_program.round_starts_list[round_cursor]
        )
        if round_time >= duration - EPS:
            break

        # Service mode requests that arrived before this round.
        while (
            request_idx < request_count
            and requests[request_idx].time <= round_time + EPS
        ):
            request = requests[request_idx]
            request_idx += 1
            if pending_target is None and request.target_mode_id != current_id:
                if request.target_mode_id not in mode_programs:
                    raise ValueError(
                        f"mode request for unknown id {request.target_mode_id}"
                    )
                pending_target = request.target_mode_id
                requested_at = request.time

        # Host transition bookkeeping (announce, drain, trigger).
        trigger = False
        if pending_target is not None:
            if announced_at is None:
                announced_at = round_time
                drain = announced_at
                for period, deadline in drain_rows[current_id]:
                    elapsed = max(0.0, announced_at - mode_origin)
                    last_release = (
                        mode_origin + math.floor(elapsed / period) * period
                    )
                    drain = max(drain, last_release + deadline)
                drain_deadline = drain
                app_stop_time[current_id] = announced_at
            if drain_deadline is not None and round_time >= drain_deadline - EPS:
                trigger = True
        stop_time = app_stop_time.get(current_id)

        round_index = len(slots_per_round)
        rows = mode_program.slot_rows[round_cursor]
        slots_per_round.append(len(rows))

        for row in rows:
            (
                gid,
                sender_index,
                _sender_bit,
                consumers_mask,
                record,
                period,
                offset,
                deadline,
                per_hp,
                pos_minus_leftover,
                shift,
            ) = row
            slot = len(slot_round)
            slot_round.append(round_index)
            slot_sender.append(sender_index)
            consumer_masks.append(consumers_mask)

            deadline_ok = False
            if record:
                instance = occurrence * per_hp + pos_minus_leftover
                if instance >= 0:
                    skip = False
                    if stop_time is not None:
                        app_release = mode_origin + (instance - shift) * period
                        if app_release >= stop_time - EPS:
                            skip = True
                    if not skip:
                        release = mode_origin + instance * period + offset
                        deadline_ok = round_time <= release + deadline + 1e-9
                        occ_of[(gid, instance)] = slot
                        if gid not in flow_lists:
                            flow_lists[gid] = []
                            seen_order.append(gid)
                        flow_lists[gid].append(slot)
            slot_deadline_ok.append(deadline_ok)

        if trigger and pending_target is not None:
            # New mode starts directly after this round ends.
            new_origin = round_time + mode_program.round_length
            switches.append(
                (requested_at, new_origin, current_id, pending_target)
            )
            current_id = pending_target
            mode_program = mode_programs[current_id]
            mode_origin = new_origin
            occurrence = 0
            round_cursor = 0
            pending_target = None
            announced_at = None
            drain_deadline = None
            continue

        round_cursor += 1
        if round_cursor >= mode_program.num_rounds:
            round_cursor = 0
            occurrence += 1

    num_slots = len(slot_round)
    node_count = len(program.node_names)

    # Consumer bitmasks -> a (S, N) membership matrix.
    consumers = np.zeros((num_slots, node_count), dtype=bool)
    for slot, mask in enumerate(consumer_masks):
        while mask:
            low = mask & -mask
            consumers[slot, low.bit_length() - 1] = True
            mask ^= low

    # Chain accounting (the reference's _account_chains), indices only:
    # each chain check becomes an index into the padded per-slot
    # on-time matrix.  occ_of is last-write-wins, exactly like the
    # reference's msg_on_time dict.
    chains_rows: Dict[str, List[List[int]]] = {}
    chains_order: List[str] = []
    segments: List[tuple] = []
    start = 0.0
    segment_mode = program.initial_mode
    for req_at, new_start, _from_mode, to_mode in switches:
        segments.append((segment_mode, start, new_start))
        start = new_start
        segment_mode = to_mode
    segments.append((segment_mode, start, duration))

    for mode_id, seg_start, seg_end in segments:
        stop = app_stop_time.get(mode_id, math.inf)
        horizon = min(seg_end, stop, duration)
        for app_name, period, chains in program.chain_rows[mode_id]:
            for first_offset, latency, checks in chains:
                k = 0
                while True:
                    app_release = seg_start + k * period
                    release = app_release + first_offset
                    if app_release >= horizon - EPS:
                        break
                    completion = release + latency
                    if completion > duration + EPS:
                        # Cannot be judged within the horizon.
                        break
                    row = [
                        occ_of.get((gid, k + shift), num_slots)
                        for gid, shift in checks
                    ]
                    if app_name not in chains_rows:
                        chains_rows[app_name] = []
                        chains_order.append(app_name)
                    chains_rows[app_name].append(row)
                    k += 1

    pad_index = num_slots + 1  # the always-on-time padding column
    chain_programs = []
    for app_name in chains_order:
        rows = chains_rows[app_name]
        width = max((len(row) for row in rows), default=0)
        matrix = np.full((len(rows), width), pad_index, dtype=np.intp)
        for i, row in enumerate(rows):
            matrix[i, : len(row)] = row
        chain_programs.append((app_name, len(rows), matrix))

    return Timeline(
        num_rounds=len(slots_per_round),
        num_slots=num_slots,
        slots_per_round=np.asarray(slots_per_round, dtype=np.int64),
        slot_round=np.asarray(slot_round, dtype=np.intp),
        slot_sender=np.asarray(slot_sender, dtype=np.intp),
        slot_deadline_ok=np.asarray(slot_deadline_ok, dtype=bool),
        flow_slots=tuple(
            (gid, np.asarray(flow_lists[gid], dtype=np.intp))
            for gid in seen_order
        ),
        consumers=consumers,
        has_consumers=consumers.any(axis=1),
        chain_programs=tuple(chain_programs),
        switch_delays=tuple(
            new_start - req_at for req_at, new_start, _f, _t in switches
        ),
    )


# -- vectorized loss samplers -------------------------------------------------
#
# A vector sampler turns per-trial generators into the full loss
# bitmask tensor: sample(rngs) -> (beacon, data) with beacon of shape
# (trials, rounds, nodes) and data of shape (trials, slots, nodes),
# both boolean.  The beacon host bit and the data sender bit are always
# set, mirroring the reference models' ``always`` node.  Each trial
# consumes only its own generator, in a fixed intra-trial draw order —
# the property that makes results invariant to trial batching.
# Deterministic kinds return broadcast views (one realization, shared
# by every trial, at no memory cost).


class _PerfectVector:
    """No loss: every flood reaches every node, no stream consumed."""

    def __init__(self, model, program, timeline, host_index) -> None:
        self._shape_b = (timeline.num_rounds, len(program.node_names))
        self._shape_d = (timeline.num_slots, len(program.node_names))

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        beacon = np.broadcast_to(True, (trials,) + self._shape_b)
        data = np.broadcast_to(True, (trials,) + self._shape_d)
        return beacon, data


class _BernoulliVector:
    """Tensor twin of :class:`BernoulliLoss`: i.i.d. uniform draws.

    Intra-trial draw order: beacon uniforms ``(R, N)`` first, then
    data uniforms ``(S, N)``.  A loss probability of 0 keeps the
    comparison (``u >= 0`` is always true) — same distribution as the
    reference's draw-skipping short-circuit.
    """

    def __init__(
        self,
        model: BernoulliLoss,
        program: SystemProgram,
        timeline: Timeline,
        host_index: int,
    ) -> None:
        self._beacon_loss = model.beacon_loss
        self._data_loss = model.data_loss
        self._rounds = timeline.num_rounds
        self._slots = timeline.num_slots
        self._nodes = len(program.node_names)
        self._host = host_index
        self._senders = timeline.slot_sender

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        beacon = np.empty((trials, self._rounds, self._nodes), dtype=bool)
        data = np.empty((trials, self._slots, self._nodes), dtype=bool)
        for t, rng in enumerate(rngs):
            beacon[t] = (
                rng.random((self._rounds, self._nodes)) >= self._beacon_loss
            )
            data[t] = rng.random((self._slots, self._nodes)) >= self._data_loss
        beacon[:, :, self._host] = True
        data[:, np.arange(self._slots), self._senders] = True
        return beacon, data


class _GilbertElliottVector:
    """Tensor twin of :class:`GilbertElliottLoss`.

    Per trial the draw order is: channel-advance uniforms ``(R, N)``,
    beacon-loss uniforms ``(R, N)``, data-loss uniforms ``(S, N)``.
    The two-state Markov recurrence is inherently sequential over
    rounds, so it runs as **one** loop over ``R`` operating on whole
    ``(trials, nodes)`` state matrices — never per trial.  All nodes
    (including the host) advance once per round; data floods reuse the
    round's post-advance state, exactly the reference semantics.
    """

    def __init__(
        self,
        model: GilbertElliottLoss,
        program: SystemProgram,
        timeline: Timeline,
        host_index: int,
    ) -> None:
        self._p_gb = model.p_good_to_bad
        self._p_bg = model.p_bad_to_good
        self._loss_good = model.loss_good
        self._loss_bad = model.loss_bad
        self._rounds = timeline.num_rounds
        self._slots = timeline.num_slots
        self._nodes = len(program.node_names)
        self._host = host_index
        self._senders = timeline.slot_sender
        self._slot_round = timeline.slot_round

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        shape_r = (trials, self._rounds, self._nodes)
        advance = np.empty(shape_r, dtype=np.float64)
        u_beacon = np.empty(shape_r, dtype=np.float64)
        u_data = np.empty((trials, self._slots, self._nodes), dtype=np.float64)
        for t, rng in enumerate(rngs):
            advance[t] = rng.random((self._rounds, self._nodes))
            u_beacon[t] = rng.random((self._rounds, self._nodes))
            u_data[t] = rng.random((self._slots, self._nodes))

        # Evolve every (trial, node) channel round by round: from BAD,
        # recover when u < p_bg; from GOOD, degrade when u < p_gb.
        bad = np.zeros((trials, self._nodes), dtype=bool)
        bad_rounds = np.empty(shape_r, dtype=bool)
        for r in range(self._rounds):
            u = advance[:, r, :]
            bad = np.where(bad, u >= self._p_bg, u < self._p_gb)
            bad_rounds[:, r, :] = bad

        loss_r = np.where(bad_rounds, self._loss_bad, self._loss_good)
        beacon = u_beacon >= loss_r
        beacon[:, :, self._host] = True
        loss_s = loss_r[:, self._slot_round, :]
        data = u_data >= loss_s
        data[:, np.arange(self._slots), self._senders] = True
        return beacon, data


class _ScriptedBeaconVector:
    """Tensor twin of :class:`ScriptedBeaconLoss` (deterministic).

    Beacon ``n`` (0-based over the run) is missed by exactly
    ``drops[n]``; data floods are lossless.  One realization is shared
    by every trial as a broadcast view.
    """

    def __init__(
        self,
        model: ScriptedBeaconLoss,
        program: SystemProgram,
        timeline: Timeline,
        host_index: int,
    ) -> None:
        beacon = np.ones((timeline.num_rounds, len(program.node_names)), bool)
        for counter, names in model.drops.items():
            if 0 <= counter < timeline.num_rounds:
                mask = names_to_mask(names, program.node_index)
                while mask:
                    low = mask & -mask
                    beacon[counter, low.bit_length() - 1] = False
                    mask ^= low
        beacon[:, host_index] = True
        self._beacon = beacon
        self._shape_d = (timeline.num_slots, len(program.node_names))

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        beacon = np.broadcast_to(self._beacon, (trials,) + self._beacon.shape)
        data = np.broadcast_to(True, (trials,) + self._shape_d)
        return beacon, data


class _TraceReplayVector:
    """Tensor twin of :class:`TraceReplayLoss` (deterministic).

    The beacon cursor advances once per round; the data cursor advances
    only for *delivering* slots — and under beacon gating, with a
    deterministic beacon sequence, which slots deliver is itself
    deterministic, so the whole cursor walk happens here, once.
    Non-delivering slots never read their data row (the accumulator
    masks them out) and are filled permissively.
    """

    def __init__(
        self,
        model: TraceReplayLoss,
        program: SystemProgram,
        timeline: Timeline,
        host_index: int,
    ) -> None:
        nodes = len(program.node_names)

        def rows_of(events):
            rows = []
            for event in events:
                row = np.zeros(nodes, dtype=bool)
                mask = names_to_mask(event, program.node_index)
                while mask:
                    low = mask & -mask
                    row[low.bit_length() - 1] = True
                    mask ^= low
                rows.append(row)
            return rows

        beacon_rows = rows_of(model.beacon_events)
        data_rows = rows_of(model.data_events)
        on_end = model.on_end

        def walk(rows, cursor, label):
            # TraceReplayLoss._next: past the end, wrap around (cursor
            # modulo length), fall open to perfect reception, or raise
            # the model's own TraceExhaustedError — deliberately *not*
            # a VectorizeError, so the strict exhaustion policy fails
            # identically on every engine instead of silently
            # downgrading along the fallback ladder.
            if not rows:
                if on_end == "error":
                    raise TraceExhaustedError(
                        f"trace_replay: empty {label} trace with "
                        f"on_end='error'"
                    )
                return None, cursor
            if cursor >= len(rows):
                if on_end == "perfect":
                    return None, cursor
                if on_end == "error":
                    raise TraceExhaustedError(
                        f"trace_replay: {label} trace exhausted after "
                        f"{len(rows)} events (on_end='error'); provide a "
                        f"longer trace or choose on_end='wrap'/'perfect'"
                    )
                cursor = cursor % len(rows)
            return rows[cursor], cursor + 1

        beacon = np.empty((timeline.num_rounds, nodes), dtype=bool)
        cursor = 0
        for r in range(timeline.num_rounds):
            row, cursor = walk(beacon_rows, cursor, "beacon")
            beacon[r] = True if row is None else row
        beacon[:, host_index] = True

        delivering = beacon[timeline.slot_round, timeline.slot_sender]
        data = np.ones((timeline.num_slots, nodes), dtype=bool)
        cursor = 0
        for slot in np.flatnonzero(delivering):
            row, cursor = walk(data_rows, cursor, "data")
            if row is not None:
                data[slot] = row
                data[slot, timeline.slot_sender[slot]] = True

        self._beacon = beacon
        self._data = data

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        beacon = np.broadcast_to(self._beacon, (trials,) + self._beacon.shape)
        data = np.broadcast_to(self._data, (trials,) + self._data.shape)
        return beacon, data


class _SpatialVector:
    """Tensor twin of :class:`SpatialLoss`.

    The PDR matrix is a construction-time constant shared by every
    trial; per trial the draw order is beacon uniforms ``(R, N)`` then
    data uniforms ``(S, N)``, compared against the host's loss row
    (beacons) and each slot sender's loss row (data).
    """

    def __init__(
        self,
        model: SpatialLoss,
        program: SystemProgram,
        timeline: Timeline,
        host_index: int,
    ) -> None:
        names = program.node_names
        pdr = model._pdr
        loss = np.array(
            [[1.0 - pdr[src][dst] for dst in names] for src in names],
            dtype=np.float64,
        )
        self._beacon_loss = loss[host_index]  # (N,)
        self._data_loss = loss[timeline.slot_sender]  # (S, N)
        self._rounds = timeline.num_rounds
        self._slots = timeline.num_slots
        self._nodes = len(names)
        self._host = host_index
        self._senders = timeline.slot_sender

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        beacon = np.empty((trials, self._rounds, self._nodes), dtype=bool)
        data = np.empty((trials, self._slots, self._nodes), dtype=bool)
        for t, rng in enumerate(rngs):
            beacon[t] = (
                rng.random((self._rounds, self._nodes))
                >= self._beacon_loss[None, :]
            )
            data[t] = rng.random((self._slots, self._nodes)) >= self._data_loss
        beacon[:, :, self._host] = True
        data[:, np.arange(self._slots), self._senders] = True
        return beacon, data


class _MatrixTraceVector:
    """Tensor twin of :class:`MatrixTraceLoss`.

    The round cursor is deterministic (one advance per beacon), so the
    whole wrap/perfect/error walk happens at construction, producing
    per-round beacon loss rows ``(R, N)`` and per-slot data loss rows
    ``(S, N)``.  ``on_end="error"`` raises the model's own
    :class:`TraceExhaustedError` — deliberately *not* a
    :class:`VectorizeError`, so the strict policy fails identically on
    every engine instead of silently downgrading along the ladder.
    """

    def __init__(
        self,
        model: MatrixTraceLoss,
        program: SystemProgram,
        timeline: Timeline,
        host_index: int,
    ) -> None:
        names = program.node_names
        node_count = len(names)

        def loss_row(round_index: int, source: str) -> np.ndarray:
            entry = model.matrix_for_round(round_index)  # raises on error
            if entry is None:
                return np.zeros(node_count, dtype=np.float64)
            rows, default = entry
            row = rows.get(source, {})
            return np.array(
                [1.0 - row.get(dst, default) for dst in names],
                dtype=np.float64,
            )

        host_name = names[host_index]
        self._beacon_loss = np.stack([
            loss_row(r, host_name) for r in range(timeline.num_rounds)
        ]) if timeline.num_rounds else np.zeros((0, node_count))
        self._data_loss = np.stack([
            loss_row(int(timeline.slot_round[s]),
                     names[int(timeline.slot_sender[s])])
            for s in range(timeline.num_slots)
        ]) if timeline.num_slots else np.zeros((0, node_count))
        self._rounds = timeline.num_rounds
        self._slots = timeline.num_slots
        self._nodes = node_count
        self._host = host_index
        self._senders = timeline.slot_sender

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        beacon = np.empty((trials, self._rounds, self._nodes), dtype=bool)
        data = np.empty((trials, self._slots, self._nodes), dtype=bool)
        for t, rng in enumerate(rngs):
            beacon[t] = (
                rng.random((self._rounds, self._nodes)) >= self._beacon_loss
            )
            data[t] = rng.random((self._slots, self._nodes)) >= self._data_loss
        beacon[:, :, self._host] = True
        data[:, np.arange(self._slots), self._senders] = True
        return beacon, data


class _TimeVaryingVector:
    """Tensor twin of :class:`TimeVaryingLoss`.

    The per-round modulation factor is deterministic; the model's pure
    ``loss_at`` computes every round's effective loss once (identical
    float math to the scalar engines), leaving per-trial work as plain
    uniform comparisons.
    """

    def __init__(
        self,
        model: TimeVaryingLoss,
        program: SystemProgram,
        timeline: Timeline,
        host_index: int,
    ) -> None:
        self._beacon_loss = np.array(
            [model.loss_at(r, model.beacon_loss)
             for r in range(timeline.num_rounds)],
            dtype=np.float64,
        )
        data_loss_per_round = [
            model.loss_at(r, model.data_loss)
            for r in range(timeline.num_rounds)
        ]
        self._data_loss = np.array(
            [data_loss_per_round[int(r)] for r in timeline.slot_round],
            dtype=np.float64,
        )
        self._rounds = timeline.num_rounds
        self._slots = timeline.num_slots
        self._nodes = len(program.node_names)
        self._host = host_index
        self._senders = timeline.slot_sender

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        beacon = np.empty((trials, self._rounds, self._nodes), dtype=bool)
        data = np.empty((trials, self._slots, self._nodes), dtype=bool)
        for t, rng in enumerate(rngs):
            beacon[t] = (
                rng.random((self._rounds, self._nodes))
                >= self._beacon_loss[:, None]
            )
            data[t] = (
                rng.random((self._slots, self._nodes))
                >= self._data_loss[:, None]
            )
        beacon[:, :, self._host] = True
        data[:, np.arange(self._slots), self._senders] = True
        return beacon, data


class _InterferenceVector:
    """Tensor twin of :class:`InterferenceLoss`.

    The jammer's duty cycle is deterministic: the model's pure
    ``jammed`` yields a per-round indicator, outer-combined with the
    affected-node mask into per-round, per-node loss matrices computed
    once at construction.
    """

    def __init__(
        self,
        model: InterferenceLoss,
        program: SystemProgram,
        timeline: Timeline,
        host_index: int,
    ) -> None:
        names = program.node_names
        jammed = np.array(
            [model.jammed(r) for r in range(timeline.num_rounds)], dtype=bool
        )
        affected = np.array(
            [model.affected is None or name in model.affected
             for name in names],
            dtype=bool,
        )
        hit = jammed[:, None] & affected[None, :]  # (R, N)
        self._beacon_loss = np.where(
            hit, model.jam_loss, model.base_beacon_loss
        )
        data_loss_rounds = np.where(hit, model.jam_loss, model.base_data_loss)
        self._data_loss = data_loss_rounds[timeline.slot_round]  # (S, N)
        self._rounds = timeline.num_rounds
        self._slots = timeline.num_slots
        self._nodes = len(names)
        self._host = host_index
        self._senders = timeline.slot_sender

    def sample(self, rngs: Sequence[np.random.Generator]):
        trials = len(rngs)
        beacon = np.empty((trials, self._rounds, self._nodes), dtype=bool)
        data = np.empty((trials, self._slots, self._nodes), dtype=bool)
        for t, rng in enumerate(rngs):
            beacon[t] = (
                rng.random((self._rounds, self._nodes)) >= self._beacon_loss
            )
            data[t] = rng.random((self._slots, self._nodes)) >= self._data_loss
        beacon[:, :, self._host] = True
        data[:, np.arange(self._slots), self._senders] = True
        return beacon, data


def _perfect_builder(model, program, timeline, host_index):
    return _PerfectVector(model, program, timeline, host_index)


#: loss kind -> vector sampler builder.  ``None`` (no loss) maps to
#: perfect.  A kind absent here is *unsupported*:
#: :func:`supports_loss_kind` returns False and the trial entry point
#: falls back to the ``fast`` engine (``glossy`` floods are genuinely
#: topology-sequential and stay scalar).
VECTOR_SAMPLERS: Dict[Optional[str], Callable] = {
    None: _perfect_builder,
    "perfect": _perfect_builder,
    "bernoulli": _BernoulliVector,
    "gilbert_elliott": _GilbertElliottVector,
    "scripted_beacon": _ScriptedBeaconVector,
    "trace_replay": _TraceReplayVector,
    "spatial": _SpatialVector,
    "matrix_trace": _MatrixTraceVector,
    "time_varying": _TimeVaryingVector,
    "interference": _InterferenceVector,
}


def supports_loss_kind(kind: Optional[str]) -> bool:
    """Whether the vectorized kernel has a sampler for this loss kind."""
    return kind in VECTOR_SAMPLERS


# -- accumulation and the executor -------------------------------------------


def accumulate_trials(
    program: SystemProgram,
    timeline: Timeline,
    beacon: np.ndarray,
    data: np.ndarray,
    duration: float,
) -> List[TrialResult]:
    """Reduce the sampled bitmask tensors to one summary per trial.

    All reductions are integer (boolean sums, int64 participation
    counts); floats appear only in the final per-trial scalar
    conversions — which is why results cannot depend on how trials were
    chunked into tensors.
    """
    trials = beacon.shape[0]
    node_count = len(program.node_names)

    # A slot delivers iff its scheduled sender heard this round's
    # beacon (beacon gating); it counts as delivered when every
    # consumer receives the data flood.
    delivering = beacon[:, timeline.slot_round, timeline.slot_sender]
    covered = ~np.any(timeline.consumers[None, :, :] & ~data, axis=2)
    delivered = delivering & covered & timeline.has_consumers[None, :]
    on_time = delivered & timeline.slot_deadline_ok[None, :]

    heard = beacon.sum(axis=(1, 2), dtype=np.int64)

    per_flow = [
        (
            program.message_names[gid],
            on_time[:, idx].sum(axis=1, dtype=np.int64),
            delivered[:, idx].sum(axis=1, dtype=np.int64),
            int(idx.size),
        )
        for gid, idx in timeline.flow_slots
    ]

    # Radio accounting: every node is on for every beacon; during data
    # slots exactly the nodes that heard the round's beacon participate
    # (the delivering sender is always among them).
    if program.radio_beacon_on is not None:
        participation = np.tensordot(
            beacon.astype(np.int64), timeline.slots_per_round, axes=([1], [0])
        )
        radio = (
            timeline.num_rounds * program.radio_beacon_on
            + participation * program.radio_data_on
        )
    else:
        radio = None

    # Chain completeness: gather each instance's check slots from the
    # padded on-time matrix (column S = missing instance, S + 1 = pad).
    pad = np.zeros((trials, 2), dtype=bool)
    pad[:, 1] = True
    padded = np.concatenate([on_time, pad], axis=1)
    per_chain = [
        (app_name, padded[:, matrix].all(axis=2).sum(axis=1), total)
        for app_name, total, matrix in timeline.chain_programs
    ]

    expected = node_count * timeline.num_rounds
    switch_delays = list(timeline.switch_delays)
    results = []
    for t in range(trials):
        result = TrialResult(duration=duration)
        result.rounds = timeline.num_rounds
        result.collisions = 0  # beacon gating is collision-free
        result.beacon_heard = (int(heard[t]), expected)
        result.messages = {
            name: (int(on[t]), int(deliv[t]), total)
            for name, on, deliv, total in per_flow
        }
        result.chains = {
            app: (int(complete[t]), total)
            for app, complete, total in per_chain
        }
        if radio is not None:
            result.radio_on = {
                name: float(radio[t, index])
                for index, name in enumerate(program.node_names)
            }
        else:
            result.radio_on = {name: 0.0 for name in program.node_names}
        result.switch_delays = list(switch_delays)
        results.append(result)
    return results


def _normalize_seed(seed):
    if seed is None:
        return None
    if isinstance(seed, int):
        return seed & _SEED_MASK
    return seed  # Generators/SeedSequences pass straight through


def _chunk_size(timeline: Timeline, node_count: int) -> int:
    """Trials per tensor chunk under :data:`TENSOR_BUDGET_BYTES`."""
    cells = (timeline.num_rounds + timeline.num_slots) * max(node_count, 1)
    # ~3 float64 draw tensors + bool masks per cell, rounded up.
    per_trial = max(cells * 32, 1)
    return max(1, TENSOR_BUDGET_BYTES // per_trial)


def run_trials_vectorized(
    context,
    loss_kind: Optional[str],
    loss_params: Optional[dict],
    seeds: Sequence[Optional[int]],
) -> List[TrialResult]:
    """Execute many trials of one scenario as one tensor program.

    Args:
        context: The scenario's :class:`~repro.runtime.trial.TrialContext`.
        loss_kind: Loss model kind, or ``None`` for perfect links.
        loss_params: Loss model parameters **without** a per-trial
            ``seed`` — seeds are the explicit last argument here.
        seeds: One seed per trial (``None`` draws OS entropy, like the
            reference models).  Each trial gets its own generator, so
            the result list is byte-identical however the trials are
            split across calls or processes.

    Raises:
        VectorizeError: when the scenario or loss kind is unsupported —
            callers normally gate on
            :func:`repro.runtime.trial.trial_engine` first.
    """
    if not supports_loss_kind(loss_kind):
        raise VectorizeError(
            f"no vectorized sampler for loss kind {loss_kind!r}"
        )
    program = context.compiled()
    if program is None:
        raise VectorizeError(
            f"scenario does not compile: {context.compile_error}"
        )
    host_index = program.resolve_host(context.host_node)
    if host_index is None:
        raise VectorizeError(
            f"host {context.host_node!r} is outside the compiled node "
            f"universe; the reference simulator handles it"
        )
    timeline = context.timeline()
    if timeline is None:
        raise VectorizeError(str(context.timeline_error))

    # Build the model once for validation and for the deterministic
    # kinds' scripts/events; the stochastic kinds only contribute their
    # parameters (their scalar RNG is never consumed here).
    model: LossModel = (
        build_loss(loss_kind, loss_params, context.topology)
        if loss_kind is not None
        else PerfectLinks()
    )
    sampler = VECTOR_SAMPLERS[loss_kind](model, program, timeline, host_index)

    results: List[TrialResult] = []
    chunk = _chunk_size(timeline, len(program.node_names))
    for start in range(0, len(seeds), chunk):
        batch = seeds[start : start + chunk]
        rngs = [
            np.random.default_rng(_normalize_seed(seed)) for seed in batch
        ]
        beacon, data = sampler.sample(rngs)
        results.extend(
            accumulate_trials(program, timeline, beacon, data, context.duration)
        )
    return results
