"""TTW runtime: beacons, deployment tables, loss models, and the
discrete-event protocol simulator (paper Sec. II)."""

from .beacon import Beacon, encoded_size
from .deployment import ModeDeployment, NodeTable, SlotAssignment, build_deployment
from .loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    GlossyLoss,
    LossModel,
    PerfectLinks,
    ScriptedBeaconLoss,
)
from .simulator import ModeRequest, NodePolicy, RadioTiming, RuntimeSimulator
from .sync import (
    DEFAULT_DRIFT_PPM,
    SyncAnalysis,
    analyze_sync,
    max_gap_for_guard,
    required_guard_time,
    worst_case_offset,
)
from .trace import (
    ChainInstanceRecord,
    MessageInstanceRecord,
    ModeSwitchRecord,
    RoundRecord,
    SlotRecord,
    Trace,
)

__all__ = [
    "Beacon",
    "DEFAULT_DRIFT_PPM",
    "BernoulliLoss",
    "ChainInstanceRecord",
    "GilbertElliottLoss",
    "GlossyLoss",
    "LossModel",
    "MessageInstanceRecord",
    "ModeDeployment",
    "ModeRequest",
    "ModeSwitchRecord",
    "NodePolicy",
    "NodeTable",
    "PerfectLinks",
    "RadioTiming",
    "RoundRecord",
    "RuntimeSimulator",
    "ScriptedBeaconLoss",
    "SlotAssignment",
    "SlotRecord",
    "SyncAnalysis",
    "analyze_sync",
    "Trace",
    "build_deployment",
    "max_gap_for_guard",
    "required_guard_time",
    "worst_case_offset",
    "encoded_size",
]
