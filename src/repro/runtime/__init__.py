"""TTW runtime: beacons, deployment tables, loss models, and the
discrete-event protocol simulator (paper Sec. II)."""

from .beacon import Beacon, encoded_size
from .compiled import CompileError, SystemProgram, compile_program
from .deployment import ModeDeployment, NodeTable, SlotAssignment, build_deployment
from .loss import (
    SEEDABLE_KINDS,
    BernoulliLoss,
    GilbertElliottLoss,
    GlossyLoss,
    LossModel,
    PerfectLinks,
    ScriptedBeaconLoss,
    TraceReplayLoss,
    available_loss_kinds,
    build_loss,
    reseeded,
)
from .simulator import ModeRequest, NodePolicy, RadioTiming, RuntimeSimulator
from .trial import TrialContext, TrialResult, run_trial, summarize_trace
from .sync import (
    DEFAULT_DRIFT_PPM,
    SyncAnalysis,
    analyze_sync,
    max_gap_for_guard,
    required_guard_time,
    worst_case_offset,
)
from .trace import (
    ChainInstanceRecord,
    MessageInstanceRecord,
    ModeSwitchRecord,
    RoundRecord,
    SlotRecord,
    Trace,
)

__all__ = [
    "Beacon",
    "CompileError",
    "DEFAULT_DRIFT_PPM",
    "BernoulliLoss",
    "ChainInstanceRecord",
    "GilbertElliottLoss",
    "GlossyLoss",
    "LossModel",
    "MessageInstanceRecord",
    "ModeDeployment",
    "ModeRequest",
    "ModeSwitchRecord",
    "NodePolicy",
    "NodeTable",
    "PerfectLinks",
    "RadioTiming",
    "RoundRecord",
    "RuntimeSimulator",
    "SEEDABLE_KINDS",
    "ScriptedBeaconLoss",
    "SlotAssignment",
    "SlotRecord",
    "SyncAnalysis",
    "SystemProgram",
    "Trace",
    "TraceReplayLoss",
    "TrialContext",
    "TrialResult",
    "analyze_sync",
    "available_loss_kinds",
    "build_deployment",
    "build_loss",
    "compile_program",
    "reseeded",
    "run_trial",
    "summarize_trace",
    "max_gap_for_guard",
    "required_guard_time",
    "worst_case_offset",
    "encoded_size",
]
