"""Execution traces of the runtime simulator.

The trace records everything the evaluation needs: which rounds ran,
who heard the beacon, who transmitted in each slot (for collision
detection), message-instance delivery, mode switches, and per-node
radio-on time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class SlotRecord:
    """One data slot of one executed round.

    Attributes:
        slot_index: Position within the round.
        message: Message scheduled in the slot.
        transmitters: Nodes that actually started transmitting — more
            than one is a collision (must never happen in TTW).
        receivers: Nodes that received the flood.
    """

    slot_index: int
    message: str
    transmitters: List[str] = field(default_factory=list)
    receivers: Set[str] = field(default_factory=set)

    @property
    def collided(self) -> bool:
        return len(self.transmitters) > 1

    @property
    def silent(self) -> bool:
        """No transmitter showed up (sender missed the beacon)."""
        return not self.transmitters


@dataclass
class RoundRecord:
    """One executed communication round."""

    time: float
    mode_id: int
    round_id: int
    beacon_mode_id: int
    trigger: bool
    beacon_receivers: Set[str] = field(default_factory=set)
    slots: List[SlotRecord] = field(default_factory=list)

    @property
    def collisions(self) -> List[SlotRecord]:
        return [s for s in self.slots if s.collided]


@dataclass
class MessageInstanceRecord:
    """One message instance's fate."""

    message: str
    instance: int
    release_time: float
    abs_deadline: float
    served_round_time: Optional[float] = None
    delivered_to: Set[str] = field(default_factory=set)
    consumers: Set[str] = field(default_factory=set)

    @property
    def delivered(self) -> bool:
        return bool(self.consumers) and self.consumers <= self.delivered_to

    @property
    def on_time(self) -> bool:
        return (
            self.delivered
            and self.served_round_time is not None
            and self.served_round_time <= self.abs_deadline + 1e-9
        )


@dataclass
class ChainInstanceRecord:
    """One end-to-end chain instance."""

    app: str
    chain: Tuple[str, ...]
    instance: int
    release_time: float
    completion_time: Optional[float] = None
    complete: bool = False

    @property
    def latency(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.release_time


@dataclass
class ModeSwitchRecord:
    """One completed mode change."""

    requested_at: float
    announced_at: float
    trigger_round_time: float
    new_mode_start: float
    from_mode: int
    to_mode: int

    @property
    def switch_delay(self) -> float:
        """Request-to-new-mode-start delay."""
        return self.new_mode_start - self.requested_at


@dataclass
class Trace:
    """Full record of one simulation run."""

    rounds: List[RoundRecord] = field(default_factory=list)
    messages: List[MessageInstanceRecord] = field(default_factory=list)
    chains: List[ChainInstanceRecord] = field(default_factory=list)
    mode_switches: List[ModeSwitchRecord] = field(default_factory=list)
    radio_on: Dict[str, float] = field(default_factory=dict)
    duration: float = 0.0

    # -- aggregate queries ------------------------------------------------
    def collisions(self) -> List[Tuple[RoundRecord, SlotRecord]]:
        """All collided slots — an empty list is the TTW safety claim."""
        found = []
        for rnd in self.rounds:
            for slot in rnd.collisions:
                found.append((rnd, slot))
        return found

    @property
    def collision_free(self) -> bool:
        return not self.collisions()

    def delivery_rate(self) -> float:
        """Fraction of message instances delivered to all consumers."""
        if not self.messages:
            return 1.0
        return sum(1 for m in self.messages if m.delivered) / len(self.messages)

    def on_time_rate(self) -> float:
        """Fraction of message instances delivered within deadline."""
        if not self.messages:
            return 1.0
        return sum(1 for m in self.messages if m.on_time) / len(self.messages)

    def chain_success_rate(self) -> float:
        if not self.chains:
            return 1.0
        return sum(1 for c in self.chains if c.complete) / len(self.chains)

    def chain_latencies(self) -> List[float]:
        return [c.latency for c in self.chains if c.latency is not None]

    def total_radio_on(self) -> float:
        return sum(self.radio_on.values())

    def beacon_reception_rate(self) -> float:
        """Average fraction of nodes hearing each beacon."""
        if not self.rounds:
            return 1.0
        totals = [len(r.beacon_receivers) for r in self.rounds]
        universe = max(totals) if totals else 1
        if universe == 0:
            return 0.0
        return sum(totals) / (len(totals) * universe)
