"""Seedable single-trial execution — the Monte-Carlo worker entry point.

One *trial* is one end-to-end run of the :class:`RuntimeSimulator`
under one loss realization, reduced to the compact statistics the
evaluation layer aggregates.  The module is deliberately shaped for
process pools:

* :func:`build_context` rebuilds everything that is **shared across
  trials** (modes, deployments, radio timing, topology, the simulation
  parameters) from one JSON dict — workers do this once, at pool
  initialization, not per trial;
* :func:`execute_trial` runs **one seeded trial** against a context and
  returns a plain JSON dict, so results cross process boundaries in the
  same stable representation the rest of the engine uses;
* :func:`summarize_trace` is the trace -> statistics reduction, shared
  with the in-process path so a pooled trial is *bit-identical* to the
  same seed run through ``Experiment.run(simulate=True)``.

Determinism contract: a trial is a pure function of ``(context,
loss-kind, loss-params)``.  All randomness lives in the loss model,
every loss model consumes its random stream in sorted-node order (see
:mod:`repro.runtime.loss`), and schedules round-trip JSON exactly — so
equal seeds give equal traces in any process on any platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.modes import Mode
from ..net.topology import Topology, build_topology
from .deployment import ModeDeployment, build_deployment
from .loss import SEEDABLE_KINDS, build_loss, reseeded
from .simulator import ModeRequest, NodePolicy, RadioTiming, RuntimeSimulator
from .trace import Trace


@dataclass
class TrialResult:
    """Compact statistics of one simulated trial.

    Everything the campaign aggregator needs, nothing trace-sized: the
    full :class:`~repro.runtime.trace.Trace` of a long run is orders of
    magnitude larger and never crosses the process boundary.

    Attributes:
        rounds: Communication rounds executed.
        collisions: Collided slots (must be 0 under beacon gating).
        beacon_heard: ``(received, expected)`` beacon receptions summed
            over all rounds and nodes.
        messages: Per-flow ``(on_time, delivered, total)`` message
            instance counts.
        chains: Per-application ``(complete, total)`` end-to-end chain
            instance counts.
        radio_on: Radio-on time per node (ms).
        switch_delays: Request-to-new-mode-start delay of every
            completed mode change, in completion order (ms).
        duration: Simulated horizon (ms).
    """

    rounds: int = 0
    collisions: int = 0
    beacon_heard: Tuple[int, int] = (0, 0)
    messages: Dict[str, Tuple[int, int, int]] = field(default_factory=dict)
    chains: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    radio_on: Dict[str, float] = field(default_factory=dict)
    switch_delays: List[float] = field(default_factory=list)
    duration: float = 0.0

    def to_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "collisions": self.collisions,
            "beacon_heard": list(self.beacon_heard),
            "messages": {k: list(v) for k, v in self.messages.items()},
            "chains": {k: list(v) for k, v in self.chains.items()},
            "radio_on": dict(self.radio_on),
            "switch_delays": list(self.switch_delays),
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialResult":
        return cls(
            rounds=data["rounds"],
            collisions=data["collisions"],
            beacon_heard=tuple(data["beacon_heard"]),
            messages={k: tuple(v) for k, v in data["messages"].items()},
            chains={k: tuple(v) for k, v in data["chains"].items()},
            radio_on=dict(data["radio_on"]),
            switch_delays=list(data["switch_delays"]),
            duration=data["duration"],
        )

    # -- derived rates ---------------------------------------------------
    def total_radio_on(self) -> float:
        """Radio-on summed over nodes, in sorted-node order (stable)."""
        return sum(self.radio_on[node] for node in sorted(self.radio_on))

    def message_counts(self) -> Tuple[int, int, int]:
        """``(on_time, delivered, total)`` summed over all flows."""
        on_time = delivered = total = 0
        for counts in self.messages.values():
            on_time += counts[0]
            delivered += counts[1]
            total += counts[2]
        return on_time, delivered, total


def summarize_trace(trace: Trace) -> TrialResult:
    """Reduce a simulation trace to its :class:`TrialResult`."""
    result = TrialResult(duration=trace.duration)
    result.rounds = len(trace.rounds)
    # The simulator seeds radio_on with *every* node, so its size is the
    # true per-round audience; falling back to the largest observed
    # receiver set (for hand-built traces) would bias the rate high
    # whenever every round loses at least one node.
    universe = len(trace.radio_on) or max(
        (len(r.beacon_receivers) for r in trace.rounds), default=0
    )
    heard = 0
    for record in trace.rounds:
        result.collisions += len(record.collisions)
        heard += len(record.beacon_receivers)
    result.beacon_heard = (heard, universe * len(trace.rounds))
    for message in trace.messages:
        on_time, delivered, total = result.messages.get(message.message, (0, 0, 0))
        result.messages[message.message] = (
            on_time + (1 if message.on_time else 0),
            delivered + (1 if message.delivered else 0),
            total + 1,
        )
    for chain in trace.chains:
        complete, total = result.chains.get(chain.app, (0, 0))
        result.chains[chain.app] = (
            complete + (1 if chain.complete else 0),
            total + 1,
        )
    result.radio_on = dict(trace.radio_on)
    result.switch_delays = [s.switch_delay for s in trace.mode_switches]
    return result


@dataclass
class TrialContext:
    """Everything shared by the trials of one scenario.

    The compiled round program (see :mod:`repro.runtime.compiled`) is
    part of the shared state: :meth:`compiled` lowers the deployments
    exactly once per context — i.e. once per worker process, through
    the trial pool's context cache — and every fast-path trial reuses
    the immutable program.
    """

    modes: Dict[int, Mode]
    deployments: Dict[int, ModeDeployment]
    initial_mode: int
    policy: NodePolicy
    duration: float
    host_node: Optional[str] = None
    mode_requests: List[ModeRequest] = field(default_factory=list)
    radio: Optional[RadioTiming] = None
    topology: Optional[Topology] = None
    _compiled: object = field(default=False, repr=False, compare=False)
    _compile_error: Optional[str] = field(
        default=None, repr=False, compare=False
    )
    _timeline: object = field(default=False, repr=False, compare=False)
    _timeline_error: Optional[str] = field(
        default=None, repr=False, compare=False
    )

    def compiled(self):
        """The compiled :class:`~repro.runtime.compiled.SystemProgram`,
        or ``None`` when the scenario has a feature the compiler does
        not support (:attr:`compile_error` then says which)."""
        if self._compiled is False:
            from .compiled import CompileError, compile_program

            try:
                self._compiled = compile_program(
                    self.modes,
                    self.deployments,
                    self.initial_mode,
                    policy=self.policy,
                    radio=self.radio,
                )
            except CompileError as exc:
                self._compiled = None
                self._compile_error = str(exc)
        return self._compiled

    @property
    def compile_error(self) -> Optional[str]:
        """Why :meth:`compiled` returned ``None`` (``None`` otherwise)."""
        return self._compile_error

    def timeline(self):
        """The unrolled deterministic :class:`~repro.mc.vectorized.Timeline`
        of the scenario, or ``None`` when the scenario does not compile
        or the vectorized kernel does not support it
        (:attr:`timeline_error` then says why).  Computed once per
        context, like :meth:`compiled`."""
        if self._timeline is False:
            program = self.compiled()
            if program is None:
                self._timeline = None
                self._timeline_error = self._compile_error
            else:
                from ..mc.vectorized import VectorizeError, unroll_timeline

                try:
                    self._timeline = unroll_timeline(
                        program, self.duration, self.mode_requests
                    )
                except VectorizeError as exc:
                    self._timeline = None
                    self._timeline_error = str(exc)
        return self._timeline

    @property
    def timeline_error(self) -> Optional[str]:
        """Why :meth:`timeline` returned ``None`` (``None`` otherwise)."""
        return self._timeline_error


def build_context(data: dict) -> TrialContext:
    """Rebuild a :class:`TrialContext` from its JSON description.

    ``data`` carries mode dicts (with their mode-graph ids), schedule
    dicts, the simulation parameters, the resolved radio timing, and
    the topology spec — see ``repro.mc.campaign`` for the producer.
    """
    from ..io.serialize import mode_from_dict, schedule_from_dict

    modes = [mode_from_dict(record) for record in data["modes"]]
    schedules = {
        name: schedule_from_dict(record)
        for name, record in data["schedules"].items()
    }
    by_id: Dict[int, Mode] = {}
    deployments: Dict[int, ModeDeployment] = {}
    id_of: Dict[str, int] = {}
    for mode in modes:
        if mode.mode_id is None:
            raise ValueError(f"mode {mode.name!r} carries no mode_id")
        by_id[mode.mode_id] = mode
        id_of[mode.name] = mode.mode_id
        deployments[mode.mode_id] = build_deployment(
            mode, schedules[mode.name], mode.mode_id
        )

    sim = data["sim"]
    initial_name = sim.get("initial_mode")
    initial = id_of[initial_name] if initial_name else min(by_id)
    requests = [
        ModeRequest(float(time), id_of[target])
        for time, target in sim.get("mode_requests", [])
    ]
    radio_data = data.get("radio")
    radio = (
        RadioTiming(
            payload_bytes=radio_data["payload_bytes"],
            diameter=radio_data["diameter"],
        )
        if radio_data is not None
        else None
    )
    topology_data = data.get("topology")
    topology = (
        build_topology(topology_data["kind"], topology_data.get("params"))
        if topology_data is not None
        else None
    )
    return TrialContext(
        modes=by_id,
        deployments=deployments,
        initial_mode=initial,
        policy=NodePolicy(sim.get("policy", "beacon_gated")),
        duration=float(sim["duration"]),
        host_node=sim.get("host_node"),
        mode_requests=requests,
        radio=radio,
        topology=topology,
    )


#: Trial engines ``run_trial`` accepts.  ``fast`` compiles the scenario
#: into a round program and accumulates the summary trace-free — and
#: transparently falls back to ``reference`` for anything the compiler
#: or its loss samplers do not support.  ``vectorized`` additionally
#: replaces the per-trial loop with tensor sampling and reduction
#: (:mod:`repro.mc.vectorized`) — distribution-equivalent, not
#: bit-identical, and falling back ``vectorized -> fast -> reference``.
#: ``reference`` always walks the full object-level simulator.
#: ``fast`` and ``reference`` produce bit-identical results; ``fast``
#: is the default.
ENGINES = ("fast", "vectorized", "reference")


def trial_engine(
    context: TrialContext,
    loss_kind: Optional[str],
    engine: str = "fast",
) -> str:
    """Which engine a trial requested with ``engine`` actually executes.

    ``engine="fast"`` resolves to ``"fast"`` when the scenario
    compiles, the loss kind has a fast-path sampler, and the beacon
    host resolves to a compiled node index; ``"reference"`` otherwise.
    ``engine="vectorized"`` resolves to ``"vectorized"`` when, in
    addition, the loss kind has a vector sampler and the round timeline
    unrolls (beacon-gated policy); anything unsupported falls through
    the same ladder to ``"fast"``, then ``"reference"``.
    ``engine="reference"`` is always itself.
    """
    if engine == "reference":
        return "reference"
    if engine == "vectorized":
        from ..mc.vectorized import supports_loss_kind as vector_supports

        if (
            vector_supports(loss_kind)
            and context.timeline() is not None
            and context.compiled().resolve_host(context.host_node) is not None
        ):
            return "vectorized"
        # fall through to the fast engine's own fallback rules

    from ..mc.fastpath import supports_loss_kind

    if not supports_loss_kind(loss_kind):
        return "reference"
    program = context.compiled()
    if program is None:
        return "reference"
    if program.resolve_host(context.host_node) is None:
        # A host outside the deployment's node universe (a base
        # station owning no tasks or messages) cannot be masked; the
        # reference simulator handles it.
        return "reference"
    return "fast"


def fallback_reason(
    context: TrialContext,
    loss_kind: Optional[str],
    requested: str,
    resolved: str,
) -> Optional[str]:
    """Why the engine ladder stepped down from ``requested`` to
    ``resolved`` — ``None`` when it did not.

    Mirrors :func:`trial_engine`'s rules and surfaces the stored
    diagnostics (:attr:`TrialContext.compile_error` /
    :attr:`TrialContext.timeline_error`), so observability events can
    say *why* a campaign ran scalar, not merely that it did.  Only
    called on the fallback path — costs nothing otherwise.
    """
    if resolved == requested:
        return None
    reasons = []
    if requested == "vectorized":
        from ..mc.vectorized import supports_loss_kind as vector_supports

        if not vector_supports(loss_kind):
            reasons.append(f"no vector sampler for loss kind {loss_kind!r}")
        elif context.timeline() is None:
            reasons.append(f"timeline: {context.timeline_error}")
        elif (
            context.compiled() is not None
            and context.compiled().resolve_host(context.host_node) is None
        ):
            reasons.append(f"host {context.host_node!r} not in the program")
    if resolved == "reference":
        from ..mc.fastpath import supports_loss_kind

        if not supports_loss_kind(loss_kind):
            reasons.append(f"no fast-path sampler for loss kind {loss_kind!r}")
        elif context.compiled() is None:
            reasons.append(f"compile: {context.compile_error}")
        elif context.compiled().resolve_host(context.host_node) is None:
            reasons.append(f"host {context.host_node!r} not in the program")
    return "; ".join(reasons) or "unsupported scenario feature"


def run_trial(
    context: TrialContext,
    loss_kind: Optional[str],
    loss_params: Optional[dict],
    engine: str = "fast",
) -> TrialResult:
    """Run one trial in-process and summarize it.

    A fresh loss model is built per trial (loss models are stateful:
    RNG position, Markov channel state, replay cursors), so trials
    never contaminate each other.

    Args:
        context: Shared scenario state (see :func:`build_context`).
        loss_kind: Loss model kind, or ``None`` for perfect links.
        loss_params: Loss model parameters.
        engine: ``"fast"`` (compiled round program, trace-free
            accumulation; automatic fallback to the reference
            simulator for unsupported scenario features),
            ``"vectorized"`` (tensor sampling and reduction over the
            unrolled round timeline — distribution-equivalent to the
            other engines, not bit-identical, falling back
            ``vectorized -> fast -> reference``), or ``"reference"``
            (the object-level simulator).  ``fast`` and ``reference``
            are bit-identical wherever the fast path runs.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {', '.join(ENGINES)}, got {engine!r}"
        )
    resolved = trial_engine(context, loss_kind, engine)
    if resolved == "vectorized":
        from ..mc.vectorized import run_trials_vectorized

        params = dict(loss_params or {})
        seed = params.pop("seed", None) if loss_kind in SEEDABLE_KINDS else None
        return run_trials_vectorized(
            context,
            loss_kind,
            params if loss_kind is not None else None,
            [seed],
        )[0]
    loss = (
        build_loss(loss_kind, loss_params, context.topology)
        if loss_kind is not None
        else None
    )
    if resolved == "fast":
        from ..mc.fastpath import build_sampler, run_program

        program = context.compiled()
        sampler = build_sampler(loss_kind, loss, program)
        return run_program(
            program,
            sampler,
            context.duration,
            mode_requests=context.mode_requests,
            host_node=context.host_node,
        )
    simulator = RuntimeSimulator(
        context.modes,
        dict(context.deployments),
        initial_mode=context.initial_mode,
        loss=loss,
        policy=context.policy,
        radio=context.radio,
    )
    trace = simulator.run(
        context.duration,
        mode_requests=context.mode_requests,
        host_node=context.host_node,
    )
    return summarize_trace(trace)


def execute_trial(context: TrialContext, task: dict) -> dict:
    """Pool entry point: run the trial described by ``task``.

    ``task`` carries ``loss`` (``{"kind", "params"}`` or ``None``) and
    optionally ``engine`` (one of :data:`ENGINES`, default fast), plus
    opaque bookkeeping keys (``trial``, ``seed``, ``point``) that are
    echoed into the result so the aggregator can group answers without
    relying on completion order.  ``engine_used`` records the engine
    the fallback ladder actually resolved to.
    """
    loss = task.get("loss")
    kind = loss["kind"] if loss is not None else None
    engine = task.get("engine", "fast")
    result = run_trial(
        context,
        kind,
        loss.get("params") if loss is not None else None,
        engine=engine,
    )
    payload = result.to_dict()
    resolved = (
        trial_engine(context, kind, engine) if engine in ENGINES else engine
    )
    payload["engine_used"] = resolved
    if engine in ENGINES and resolved != engine:
        payload["engine_reason"] = fallback_reason(
            context, kind, engine, resolved
        )
    for key in ("trial", "seed", "point", "scenario"):
        if key in task:
            payload[key] = task[key]
    return payload


def execute_trial_batch(context: TrialContext, task: dict) -> dict:
    """Pool entry point: run a whole batch of trials in one call.

    The vectorized engine amortizes its tensor setup over many trials,
    so the campaign layer groups the trials of a grid point into batch
    tasks: ``task`` carries ``loss`` (the grid point's **base**
    description, without a per-trial seed), ``engine``, and ``trials``
    — a list of ``(trial_index, seed)`` pairs.  When the fallback
    ladder resolves to a scalar engine the batch degrades gracefully
    to per-trial execution with the established per-trial reseeding,
    so results are bit-identical to the per-trial task path.

    Returns ``{"scenario", "point", "engine_used", "results"}`` with
    one :meth:`TrialResult.to_dict` payload per trial (bookkeeping
    keys echoed into each), in input order.
    """
    loss = task.get("loss")
    kind = loss["kind"] if loss is not None else None
    base_params = dict(loss.get("params") or {}) if loss is not None else None
    engine = task.get("engine", "fast")
    trials = task["trials"]
    resolved = trial_engine(context, kind, engine)

    if resolved == "vectorized":
        from ..mc.vectorized import run_trials_vectorized

        results = run_trials_vectorized(
            context, kind, base_params, [seed for _trial, seed in trials]
        )
    else:
        results = []
        for _trial, seed in trials:
            params = base_params
            if kind is not None and seed is not None:
                params = reseeded(kind, base_params, seed)
            results.append(run_trial(context, kind, params, engine=resolved))

    payloads = []
    for (trial_index, seed), result in zip(trials, results):
        payload = result.to_dict()
        payload["trial"] = trial_index
        payload["seed"] = seed
        payload["engine_used"] = resolved
        for key in ("point", "scenario"):
            if key in task:
                payload[key] = task[key]
        payloads.append(payload)
    outcome = {
        "scenario": task.get("scenario"),
        "point": task.get("point"),
        "engine_used": resolved,
        "results": payloads,
    }
    if engine in ENGINES and resolved != engine:
        outcome["engine_reason"] = fallback_reason(
            context, kind, engine, resolved
        )
    return outcome


def execute_trial_task(context: TrialContext, task: dict) -> dict:
    """Pool entry point routing on the task shape.

    Long-lived executors (:class:`~repro.engine.trials.ResidentPool`)
    fix their ``run_task`` at construction, before anyone knows which
    engine future campaigns will ask for — this dispatcher accepts
    both shapes: batch tasks (a ``trials`` list, vectorized engine)
    go to :func:`execute_trial_batch`, per-trial tasks to
    :func:`execute_trial`.
    """
    if "trials" in task:
        return execute_trial_batch(context, task)
    return execute_trial(context, task)
