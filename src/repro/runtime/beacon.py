"""Host beacons (paper Sec. II-B, Fig. 2).

Each round starts with a beacon ``b = {round id, mode id, trigger bit
SB}`` sent by the host.  Receiving a single beacon is sufficient for a
node to recover the full system state: with the statically distributed
schedules, the pair (mode id, round id) identifies the phase of the
cyclic schedule, hence which message to send in which slot and when to
wake up next.

The paper notes a 3-byte beacon suffices; :func:`encoded_size` checks
the chosen field widths against that budget.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Field widths used by the reference encoding (bits).
ROUND_ID_BITS = 12
MODE_ID_BITS = 8
TRIGGER_BITS = 1


@dataclass(frozen=True)
class Beacon:
    """Content of one host beacon.

    Attributes:
        round_id: Id of the *current* round within its mode's cyclic
            round sequence.
        mode_id: Current mode — or, during a transition, the id of the
            mode being switched to (first phase of Fig. 2).
        trigger: The paper's ``SB`` bit; 1 means the announced mode
            starts directly after this round.
    """

    round_id: int
    mode_id: int
    trigger: bool = False

    def __post_init__(self) -> None:
        if self.round_id < 0 or self.round_id >= (1 << ROUND_ID_BITS):
            raise ValueError(f"round_id {self.round_id} out of range")
        if self.mode_id < 0 or self.mode_id >= (1 << MODE_ID_BITS):
            raise ValueError(f"mode_id {self.mode_id} out of range")


def encoded_size() -> int:
    """Beacon size in bytes for the reference field widths.

    The paper uses ``L_beacon = 3`` bytes; 12 + 8 + 1 = 21 bits fit.
    """
    total_bits = ROUND_ID_BITS + MODE_ID_BITS + TRIGGER_BITS
    return (total_bits + 7) // 8
