"""Discrete-event execution of TTW schedules (paper Sec. II, Fig. 2).

The simulator executes synthesized mode schedules over a network with
packet loss and reproduces the protocol behaviour the paper argues for:

* the host emits a beacon ``{round id, mode id, SB}`` at the start of
  every round; round ids are globally unique across modes, so one
  received beacon recovers the full system state;
* a node that misses the beacon **does not participate** in that round
  (``BEACON_GATED`` policy) — this is TTW's safety mechanism, and the
  simulator verifies it keeps slots collision-free under arbitrary
  loss and mode changes;
* the ``LOCAL_BELIEF`` policy is an ablation: nodes transmit based on
  their locally predicted schedule phase without hearing the current
  beacon, which is energy-equivalent but *unsafe* across mode changes
  (the tests demonstrate the collisions);
* mode changes follow the paper's two-phase protocol: announce the new
  mode id while old applications drain, then set the trigger bit
  ``SB = 1`` in the first round after the drain deadline; the new mode
  starts directly after that round, and remaining old-mode rounds are
  not executed.

Determinism: the simulator itself contains **no randomness** — all
stochastic behaviour lives in the injected :class:`LossModel`, and all
internal iteration over node sets happens in sorted order where it
feeds the loss model's RNG.  Given a seeded loss model, a run is a
pure function of its inputs, reproducible bit-for-bit in any process;
this is what the Monte-Carlo campaign layer (:mod:`repro.mc`) builds
on.  One simulation is a single sample — statistical evaluation over
many seeds, with confidence intervals, is ``repro.mc``'s job
(entry points: :mod:`repro.runtime.trial`,
``python -m repro.cli scenario mc``).

The full runtime model (rounds, beacons, node policies, loss models,
drift/sync analysis, seeding rules) is documented in
``docs/SIMULATION.md``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.latency import chain_latency
from ..core.modes import Mode
from ..timing import DEFAULT_CONSTANTS, GlossyConstants, slot_on_time
from .beacon import Beacon
from .deployment import ModeDeployment
from .loss import LossModel, PerfectLinks
from .trace import (
    ChainInstanceRecord,
    MessageInstanceRecord,
    ModeSwitchRecord,
    RoundRecord,
    SlotRecord,
    Trace,
)

#: Numeric slack for time comparisons.
EPS = 1e-9


class NodePolicy(enum.Enum):
    """How nodes decide to transmit in a slot."""

    BEACON_GATED = "beacon_gated"  # TTW: transmit only after hearing the beacon
    LOCAL_BELIEF = "local_belief"  # ablation: trust the local schedule phase


@dataclass(frozen=True)
class ModeRequest:
    """A runtime request to switch to another mode."""

    time: float
    target_mode_id: int


@dataclass(frozen=True)
class RadioTiming:
    """Parameters for radio-on accounting (optional)."""

    payload_bytes: int
    diameter: int
    constants: GlossyConstants = DEFAULT_CONSTANTS


class _NodeState:
    """Per-node runtime belief."""

    __slots__ = ("name", "mode_id", "round_uid", "stopped_apps")

    def __init__(self, name: str, mode_id: int) -> None:
        self.name = name
        self.mode_id = mode_id
        #: Last round uid the node believes has executed (None at boot).
        self.round_uid: Optional[int] = None
        #: True once the node learned a transition is in progress.
        self.stopped_apps = False


class RuntimeSimulator:
    """Executes deployments over a lossy network.

    Args:
        modes: Mode objects keyed by mode id (for chain accounting).
        deployments: Compiled deployment tables keyed by mode id.
        initial_mode: Mode id the system boots into.
        loss: Packet-loss model (default: perfect links).
        policy: Node transmission policy (default: TTW's beacon gating).
        radio: Optional radio timing for energy accounting.
    """

    def __init__(
        self,
        modes: Dict[int, Mode],
        deployments: Dict[int, ModeDeployment],
        initial_mode: int,
        loss: Optional[LossModel] = None,
        policy: NodePolicy = NodePolicy.BEACON_GATED,
        radio: Optional[RadioTiming] = None,
    ) -> None:
        if initial_mode not in deployments:
            raise ValueError(f"unknown initial mode id {initial_mode}")
        if set(modes) != set(deployments):
            raise ValueError("modes and deployments must have matching ids")
        self.modes = modes
        self.deployments = deployments
        self.initial_mode = initial_mode
        self.loss: LossModel = loss if loss is not None else PerfectLinks()
        self.policy = policy
        self.radio = radio

        # Globally unique round ids: uid -> (mode_id, round index).
        self._uid_of: Dict[Tuple[int, int], int] = {}
        self._round_of_uid: Dict[int, Tuple[int, int]] = {}
        uid = 0
        for mode_id in sorted(deployments):
            for idx in range(deployments[mode_id].num_rounds):
                self._uid_of[(mode_id, idx)] = uid
                self._round_of_uid[uid] = (mode_id, idx)
                uid += 1

        self.all_nodes: Set[str] = set()
        for deployment in deployments.values():
            self.all_nodes.update(deployment.node_tables)
            self.all_nodes.update(deployment.message_senders.values())
        # The host participates even when it hosts no task.
        self.host = "host" if "host" in self.all_nodes else None

    # ------------------------------------------------------------------
    def run(
        self,
        duration: float,
        mode_requests: Sequence[ModeRequest] = (),
        host_node: Optional[str] = None,
    ) -> Trace:
        """Simulate ``duration`` time units of protocol execution.

        Args:
            duration: Absolute simulation horizon (same unit as the
                schedules, milliseconds by convention).
            mode_requests: Mode-change requests, serviced in time order.
            host_node: Which node acts as host (defaults to a node named
                ``"host"`` or the lexicographically first node).

        Returns:
            A :class:`Trace` with rounds, message instances, chain
            instances, mode switches, and radio-on accounting.
        """
        host = host_node or self.host or sorted(self.all_nodes)[0]
        trace = Trace(duration=duration)
        trace.radio_on = {node: 0.0 for node in self.all_nodes}
        requests = sorted(mode_requests, key=lambda r: r.time)
        request_idx = 0

        current_id = self.initial_mode
        deployment = self.deployments[current_id]
        mode_origin = 0.0
        nodes = {name: _NodeState(name, current_id) for name in self.all_nodes}

        # Host transition state.
        pending_target: Optional[int] = None
        requested_at = 0.0
        announced_at: Optional[float] = None
        drain_deadline: Optional[float] = None
        #: Releases at/after this time do not start (per mode id).
        app_stop_time: Dict[int, float] = {}

        occurrence = 0  # (hyperperiod index, round index) cursor
        round_cursor = 0

        while True:
            if deployment.num_rounds == 0:
                break
            round_time = (
                mode_origin
                + occurrence * deployment.hyperperiod
                + deployment.round_starts[round_cursor]
            )
            if round_time >= duration - EPS:
                break

            # Service mode requests that arrived before this round.
            while (
                request_idx < len(requests)
                and requests[request_idx].time <= round_time + EPS
            ):
                request = requests[request_idx]
                request_idx += 1
                if pending_target is None and request.target_mode_id != current_id:
                    if request.target_mode_id not in self.deployments:
                        raise ValueError(
                            f"mode request for unknown id {request.target_mode_id}"
                        )
                    pending_target = request.target_mode_id
                    requested_at = request.time

            # Host beacon for this round.
            trigger = False
            beacon_mode = current_id
            if pending_target is not None:
                beacon_mode = pending_target
                if announced_at is None:
                    announced_at = round_time
                    drain_deadline = self._drain_deadline(
                        current_id, mode_origin, announced_at
                    )
                    app_stop_time[current_id] = announced_at
                if drain_deadline is not None and round_time >= drain_deadline - EPS:
                    trigger = True
            uid = self._uid_of[(current_id, round_cursor)]
            beacon = Beacon(round_id=uid, mode_id=beacon_mode, trigger=trigger)

            record = self._execute_round(
                trace,
                deployment,
                current_id,
                round_cursor,
                occurrence,
                round_time,
                mode_origin,
                beacon,
                host,
                nodes,
                app_stop_time.get(current_id),
            )
            trace.rounds.append(record)

            if trigger and pending_target is not None:
                # New mode starts directly after this round ends.
                new_origin = round_time + deployment.schedule.config.round_length
                trace.mode_switches.append(
                    ModeSwitchRecord(
                        requested_at=requested_at,
                        announced_at=announced_at or round_time,
                        trigger_round_time=round_time,
                        new_mode_start=new_origin,
                        from_mode=current_id,
                        to_mode=pending_target,
                    )
                )
                current_id = pending_target
                deployment = self.deployments[current_id]
                mode_origin = new_origin
                occurrence = 0
                round_cursor = 0
                pending_target = None
                announced_at = None
                drain_deadline = None
                for state in nodes.values():
                    # Nodes that heard the SB beacon switch; the others
                    # resynchronize on the next beacon they hear.
                    if state.name in record.beacon_receivers:
                        state.mode_id = current_id
                        state.stopped_apps = False
                        # For local-belief prediction: the next round is
                        # round 0 of the new mode, i.e. the successor of
                        # the new mode's last round in its cyclic order.
                        state.round_uid = self._uid_of[
                            (current_id, deployment.num_rounds - 1)
                        ]
                continue

            round_cursor += 1
            if round_cursor >= deployment.num_rounds:
                round_cursor = 0
                occurrence += 1

        self._account_chains(trace, app_stop_time, duration)
        return trace

    # ------------------------------------------------------------------
    def _drain_deadline(
        self, mode_id: int, mode_origin: float, announced_at: float
    ) -> float:
        """When all applications released before the announcement finish.

        For each application: the last release not after the
        announcement completes at ``release + deadline``; the drain is
        the max over applications (the host knows this statically).
        """
        mode = self.modes[mode_id]
        drain = announced_at
        for app in mode.applications:
            elapsed = max(0.0, announced_at - mode_origin)
            last_release = mode_origin + math.floor(elapsed / app.period) * app.period
            drain = max(drain, last_release + app.deadline)
        return drain

    # ------------------------------------------------------------------
    def _execute_round(
        self,
        trace: Trace,
        deployment: ModeDeployment,
        mode_id: int,
        round_index: int,
        occurrence: int,
        round_time: float,
        mode_origin: float,
        beacon: Beacon,
        host: str,
        nodes: Dict[str, _NodeState],
        stop_time: Optional[float],
    ) -> RoundRecord:
        receivers = self.loss.beacon_receivers(host, self.all_nodes)
        record = RoundRecord(
            time=round_time,
            mode_id=mode_id,
            round_id=beacon.round_id,
            beacon_mode_id=beacon.mode_id,
            trigger=beacon.trigger,
            beacon_receivers=set(receivers),
        )

        # Beacon reception updates node state.
        for name in receivers:
            state = nodes[name]
            state.round_uid = beacon.round_id
            if beacon.mode_id != state.mode_id and not beacon.trigger:
                state.stopped_apps = True

        # Radio-on: every node wakes for the beacon slot.  The timing
        # model works in seconds; the simulation timeline (and the
        # trace's radio_on accounting) is in milliseconds.
        if self.radio is not None:
            beacon_on = 1e3 * slot_on_time(
                self.radio.constants.l_beacon,
                self.radio.diameter,
                self.radio.constants,
            )
            for node in self.all_nodes:
                trace.radio_on[node] += beacon_on

        # Each node resolves "which round is this?" once per round: from
        # the beacon if heard, from its advancing local belief otherwise.
        predicted_rounds: Dict[str, Optional[Tuple[int, int]]] = {}
        if self.policy is NodePolicy.LOCAL_BELIEF:
            for name, state in nodes.items():
                predicted_rounds[name] = self._predict_round(
                    state, name in receivers, beacon
                )

        messages = deployment.round_messages[round_index]
        for slot_index, message in enumerate(messages):
            sender = deployment.message_senders[message]
            slot = SlotRecord(slot_index=slot_index, message=message)

            transmitters = self._slot_transmitters(
                slot_index, beacon, receivers, predicted_rounds
            )
            slot.transmitters = sorted(transmitters)

            if len(transmitters) == 1 and sender in transmitters:
                slot.receivers = self.loss.data_receivers(
                    sender, self.all_nodes, payload_bytes=self._payload()
                )
            # Collisions and silent slots deliver nothing.
            record.slots.append(slot)

            if self.radio is not None and (receivers or transmitters):
                data_on = 1e3 * slot_on_time(
                    self.radio.payload_bytes,
                    self.radio.diameter,
                    self.radio.constants,
                )
                participants = receivers | transmitters
                for node in participants:
                    trace.radio_on[node] += data_on

            self._record_message_instance(
                trace,
                deployment,
                message,
                round_index,
                occurrence,
                round_time,
                mode_origin,
                slot,
                stop_time,
            )
        return record

    # ------------------------------------------------------------------
    def _slot_transmitters(
        self,
        slot_index: int,
        beacon: Beacon,
        beacon_receivers: Set[str],
        predicted_rounds: Dict[str, Optional[Tuple[int, int]]],
    ) -> Set[str]:
        """Which nodes start transmitting in this slot."""
        transmitters: Set[str] = set()
        if self.policy is NodePolicy.BEACON_GATED:
            # A node transmits iff it heard this round's beacon and its
            # deployment table assigns it the slot of the announced round.
            announced_mode, announced_idx = self._round_of_uid[beacon.round_id]
            announced = self.deployments[announced_mode]
            for name in beacon_receivers:
                table = announced.node_tables.get(name)
                if table is None:
                    continue
                for s_idx, _msg in table.slot_for_round(announced_idx):
                    if s_idx == slot_index:
                        transmitters.add(name)
        else:
            # LOCAL_BELIEF ablation: every node acts on its predicted
            # round (resolved once per round by the caller).
            for name, predicted in predicted_rounds.items():
                if predicted is None:
                    continue
                pred_mode, pred_idx = predicted
                table = self.deployments[pred_mode].node_tables.get(name)
                if table is None:
                    continue
                for s_idx, _msg in table.slot_for_round(pred_idx):
                    if s_idx == slot_index:
                        transmitters.add(name)
        return transmitters

    def _predict_round(
        self, state: _NodeState, heard_beacon: bool, beacon: Beacon
    ) -> Optional[Tuple[int, int]]:
        """LOCAL_BELIEF: the round a node thinks is executing."""
        if heard_beacon:
            return self._round_of_uid[beacon.round_id]
        if state.round_uid is None:
            return None
        last_mode, last_idx = self._round_of_uid[state.round_uid]
        num = self.deployments[last_mode].num_rounds
        predicted = (last_mode, (last_idx + 1) % num)
        # The node's belief advances even without the beacon.
        state.round_uid = self._uid_of[predicted]
        return predicted

    def _payload(self) -> int:
        return self.radio.payload_bytes if self.radio is not None else 0

    # ------------------------------------------------------------------
    def _record_message_instance(
        self,
        trace: Trace,
        deployment: ModeDeployment,
        message: str,
        round_index: int,
        occurrence: int,
        round_time: float,
        mode_origin: float,
        slot: SlotRecord,
        stop_time: Optional[float],
    ) -> None:
        schedule = deployment.schedule
        offset = schedule.message_offsets[message]
        deadline = schedule.message_deadlines[message]
        leftover = schedule.leftover.get(message, 0)
        # Pure per (mode, message); hoisted onto the deployment tables.
        period = deployment.message_periods.get(message)
        if period is None:
            return
        allocated = [
            idx
            for idx, msgs in enumerate(deployment.round_messages)
            if message in msgs
        ]
        position = allocated.index(round_index)
        per_hp = len(allocated)
        instance = occurrence * per_hp + position - leftover
        if instance < 0:
            return  # serves an instance from before the mode started
        release = mode_origin + instance * period + offset
        if stop_time is not None:
            # The drain rule stops *application* instances, not messages:
            # a message whose producing application instance started
            # before the announcement is still transmitted (Fig. 2,
            # "running applications finish their execution").
            shift = deployment.message_shifts.get(message, 0)
            app_release = mode_origin + (instance - shift) * period
            if app_release >= stop_time - EPS:
                return
        consumers = set(deployment.message_consumers[message])
        record = MessageInstanceRecord(
            message=message,
            instance=instance,
            release_time=release,
            abs_deadline=release + deadline,
            served_round_time=round_time,
            delivered_to=slot.receivers & consumers,
            consumers=consumers,
        )
        trace.messages.append(record)

    # ------------------------------------------------------------------
    def _account_chains(
        self,
        trace: Trace,
        app_stop_time: Dict[int, float],
        duration: float,
    ) -> None:
        """Derive end-to-end chain instances from message records."""
        delivered: Dict[Tuple[str, int], MessageInstanceRecord] = {
            (m.message, m.instance): m for m in trace.messages
        }
        # Partition the timeline into mode segments.
        segments: List[Tuple[int, float, float]] = []
        start = 0.0
        current = self.initial_mode
        for switch in trace.mode_switches:
            segments.append((current, start, switch.new_mode_start))
            start = switch.new_mode_start
            current = switch.to_mode
        segments.append((current, start, duration))

        for mode_id, seg_start, seg_end in segments:
            mode = self.modes[mode_id]
            schedule = self.deployments[mode_id].schedule
            stop = app_stop_time.get(mode_id, math.inf)
            for app in mode.applications:
                for chain in app.chains():
                    latency = chain_latency(
                        app, chain, schedule.task_offsets, schedule.sigma
                    )
                    first_offset = schedule.task_offsets[chain.first_task]
                    k = 0
                    while True:
                        app_release = seg_start + k * app.period
                        release = app_release + first_offset
                        if app_release >= min(seg_end, stop, duration) - EPS:
                            break
                        completion = release + latency
                        if completion > duration + EPS:
                            # Cannot be judged within the horizon.
                            break
                        complete = True
                        shift = 0
                        for i in range(len(chain.elements) - 1):
                            src = chain.elements[i]
                            dst = chain.elements[i + 1]
                            shift += schedule.sigma.get((src, dst), 0)
                            if dst in app.messages:
                                rec = delivered.get((dst, k + shift))
                                if rec is None or not rec.on_time:
                                    complete = False
                                    break
                        trace.chains.append(
                            ChainInstanceRecord(
                                app=app.name,
                                chain=chain.elements,
                                instance=k,
                                release_time=release,
                                completion_time=completion if complete else None,
                                complete=complete,
                            )
                        )
                        k += 1
