"""Compiled round programs — the Monte-Carlo fast path's static half.

The reference :class:`~repro.runtime.simulator.RuntimeSimulator` walks
Python objects slot by slot and materializes a full
:class:`~repro.runtime.trace.Trace` that the campaign layer immediately
collapses into a handful of aggregates.  For a campaign of thousands of
trials that is pure interpreter overhead: everything about a round
except the loss realization is known *before the first trial runs*.

:func:`compile_program` lowers a deployment set into an immutable
:class:`SystemProgram` — numpy arrays plus loop-friendly per-round rows
— computed **once per scenario** and reused by every trial:

* node names become dense indices (sorted order, the same order every
  loss model consumes its random stream in), so receiver sets become
  integer bitmasks;
* every slot of every round of every mode becomes one flat record:
  message id, sender index, consumer bitmask, period/offset/deadline,
  the ``instance = occurrence * per_hp + position - leftover``
  bookkeeping, and the sigma shift of the drain rule — exactly the
  values ``_record_message_instance`` re-derives per slot;
* globally unique round ids, per-node transmit tables (for the
  ``LOCAL_BELIEF`` ablation), per-application drain rows, and
  end-to-end chain programs (latency, first offset, per-message sigma
  shifts) are tabulated the same way;
* the radio-on constants (beacon/data slot on-times) are evaluated
  once instead of per round.

The dynamic half — sampling losses and accumulating a
:class:`~repro.runtime.trial.TrialResult` without ever constructing
``Trace``/``SlotRecord`` objects — lives in :mod:`repro.mc.fastpath`.
The contract binding the two: a fast trial is **bit-identical** to
``summarize_trace`` of the reference simulator under the same seed
(asserted by ``tests/mc/test_fastpath.py`` over a seed × policy ×
loss-model matrix).  Anything the compiler cannot prove it supports
raises :class:`CompileError`, and the caller falls back to the
reference simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.latency import chain_latency
from ..core.modes import Mode
from ..timing import slot_on_time
from .deployment import ModeDeployment
from .simulator import NodePolicy, RadioTiming


class CompileError(Exception):
    """A scenario feature the round-program compiler does not support.

    Raising this is not an error condition for the caller: the trial
    entry point catches it and transparently runs the reference
    simulator instead (see ``repro.runtime.trial.run_trial``).
    """


#: Per-slot row layout (``ModeProgram.slot_rows``):
#: ``(gid, sender_index, sender_bit, consumers_mask, record, period,
#:   offset, deadline, per_hp, position_minus_leftover, shift)``.
SLOT_FIELDS = (
    "gid",
    "sender_index",
    "sender_bit",
    "consumers_mask",
    "record",
    "period",
    "offset",
    "deadline",
    "per_hp",
    "position_minus_leftover",
    "shift",
)


@dataclass(frozen=True)
class ModeProgram:
    """One mode's rounds, lowered to arrays.

    The numpy arrays are the canonical, inspectable representation
    (``slot_offsets`` delimits rounds in the flat slot arrays);
    ``round_starts_list`` and ``slot_rows`` are the same data as plain
    Python objects, pre-extracted so the per-round execution loop never
    touches numpy scalars (scalar indexing into arrays is slower than
    tuple access, and the executor's arithmetic must be plain-float to
    match the reference simulator bit for bit).

    Attributes:
        mode_id: Beacon-visible mode id.
        num_rounds: Rounds per hyperperiod.
        hyperperiod: Mode hyperperiod (ms).
        round_length: Round length (ms) — the new-mode origin offset.
        uid_base: Globally unique id of this mode's round 0.
        round_starts: ``r.t`` per round index, relative to the
            hyperperiod (float64 array).
        slot_offsets: int32 array of length ``num_rounds + 1``; round
            ``r``'s slots are ``slice(slot_offsets[r],
            slot_offsets[r+1])`` of the flat arrays.
        slot_gid: Global message id per slot (int32).
        slot_sender: Transmitting node index per slot (int32).
        slot_period / slot_offset / slot_deadline: Message timing per
            slot (float64; period is NaN for unrecorded slots).
        slot_per_hp / slot_pos_minus_leftover / slot_shift: Instance
            bookkeeping per slot (int32).
        slot_record: Whether the slot records a message instance
            (bool); False only for messages outside every application.
        slot_consumers: Consumer bitmask per slot (Python ints — node
            counts are unbounded, int64 is not).
        round_starts_list / slot_rows: Loop-friendly views (see above).
        tx_slot_masks: Per round-index, per node-index bitmask of slot
            indices the node transmits in — the ``LOCAL_BELIEF``
            transmit tables.
    """

    mode_id: int
    num_rounds: int
    hyperperiod: float
    round_length: float
    uid_base: int
    round_starts: np.ndarray
    slot_offsets: np.ndarray
    slot_gid: np.ndarray
    slot_sender: np.ndarray
    slot_period: np.ndarray
    slot_offset: np.ndarray
    slot_deadline: np.ndarray
    slot_per_hp: np.ndarray
    slot_pos_minus_leftover: np.ndarray
    slot_shift: np.ndarray
    slot_record: np.ndarray
    slot_consumers: Tuple[int, ...]
    round_starts_list: Tuple[float, ...]
    slot_rows: Tuple[Tuple[tuple, ...], ...]
    tx_slot_masks: Tuple[Tuple[int, ...], ...]

    @property
    def num_slots(self) -> int:
        return len(self.slot_gid)


@dataclass(frozen=True)
class SystemProgram:
    """A full deployment set, compiled for trace-free trial execution.

    Attributes:
        node_names: All nodes, sorted — index ``i`` is bit ``1 << i``
            in every mask.
        node_index: Name → index.
        host_default: The node the simulator hosts beacons on when the
            trial does not override it.
        full_mask: Bitmask with every node bit set.
        initial_mode: Mode id the system boots into.
        policy: Node transmission policy the program was compiled for.
        modes: ``mode_id -> ModeProgram``.
        uid_mode / uid_index: Globally-unique round id → (mode id,
            round index), as flat tuples.
        message_names: Global message id → name (ids are dense; names
            shared across modes share the id, exactly like the
            reference trace keys message records by name).
        drain_rows: ``mode_id -> ((period, deadline), ...)`` per
            application — the host's drain-deadline inputs.
        chain_rows: ``mode_id -> ((app_name, period, chains), ...)``
            with ``chains = ((first_offset, latency, checks), ...)``
            and ``checks = ((gid, sigma_shift), ...)`` per chain
            message — everything ``_account_chains`` needs.
        radio_beacon_on / radio_data_on: Per-flood radio-on time (ms),
            ``None`` when the trial does no radio accounting.
        payload_bytes: Data-flood payload handed to loss models.
    """

    node_names: Tuple[str, ...]
    node_index: Dict[str, int]
    host_default: Optional[str]
    full_mask: int
    initial_mode: int
    policy: NodePolicy
    modes: Dict[int, ModeProgram]
    uid_mode: Tuple[int, ...]
    uid_index: Tuple[int, ...]
    message_names: Tuple[str, ...]
    drain_rows: Dict[int, Tuple[Tuple[float, float], ...]]
    chain_rows: Dict[int, tuple]
    radio_beacon_on: Optional[float]
    radio_data_on: Optional[float]
    payload_bytes: int

    def resolve_host(self, host_node: Optional[str]) -> Optional[int]:
        """Node index of the beacon host, following the simulator's
        rule (explicit override, else a node named ``"host"``, else
        the lexicographically first node) — or ``None`` when the
        resolved host is outside the compiled node universe (e.g. a
        base station owning no tasks or messages), which the fast path
        cannot mask and must hand to the reference simulator."""
        host = host_node or self.host_default or self.node_names[0]
        return self.node_index.get(host)


def names_to_mask(names, node_index: Dict[str, int]) -> int:
    """Node names → bitmask over ``node_index``; unknown names drop out
    (matching the reference simulator, which intersects receiver sets
    with its node universe).  Shared by the compiler and the fast-path
    samplers so unknown-name handling cannot drift between them."""
    mask = 0
    for name in names:
        index = node_index.get(name)
        if index is not None:
            mask |= 1 << index
    return mask


def compile_program(
    modes: Dict[int, Mode],
    deployments: Dict[int, ModeDeployment],
    initial_mode: int,
    policy: NodePolicy = NodePolicy.BEACON_GATED,
    radio: Optional[RadioTiming] = None,
) -> SystemProgram:
    """Lower a deployment set into a :class:`SystemProgram`.

    Mirrors :class:`~repro.runtime.simulator.RuntimeSimulator`'s
    constructor arguments; the result is immutable and shared by every
    trial of a scenario (and across processes via the trial-pool
    context cache).

    Raises:
        CompileError: for inputs the fast path does not support — the
            caller falls back to the reference simulator.
    """
    if initial_mode not in deployments:
        raise CompileError(f"unknown initial mode id {initial_mode}")
    if set(modes) != set(deployments):
        raise CompileError("modes and deployments must have matching ids")
    if not isinstance(policy, NodePolicy):
        raise CompileError(f"unsupported node policy {policy!r}")

    # Node universe and host resolution — same rule as the simulator.
    all_nodes = set()
    for deployment in deployments.values():
        all_nodes.update(deployment.node_tables)
        all_nodes.update(deployment.message_senders.values())
    if not all_nodes:
        raise CompileError("deployments name no nodes")
    node_names = tuple(sorted(all_nodes))
    node_index = {name: i for i, name in enumerate(node_names)}
    host_default = "host" if "host" in node_index else None
    full_mask = (1 << len(node_names)) - 1

    # Global message ids: every message allocated in any round, plus
    # chain messages that are never allocated (their instance lookups
    # must miss, exactly like the reference trace's delivered-dict).
    message_names: List[str] = []
    gid_of: Dict[str, int] = {}

    def gid(name: str) -> int:
        if name not in gid_of:
            gid_of[name] = len(message_names)
            message_names.append(name)
        return gid_of[name]

    # Globally unique round ids, in the simulator's assignment order.
    uid_mode: List[int] = []
    uid_index: List[int] = []
    uid_base: Dict[int, int] = {}
    for mode_id in sorted(deployments):
        uid_base[mode_id] = len(uid_mode)
        for idx in range(deployments[mode_id].num_rounds):
            uid_mode.append(mode_id)
            uid_index.append(idx)

    mode_programs: Dict[int, ModeProgram] = {}
    drain_rows: Dict[int, Tuple[Tuple[float, float], ...]] = {}
    chain_rows: Dict[int, tuple] = {}
    for mode_id in sorted(deployments):
        deployment = deployments[mode_id]
        mode = modes[mode_id]
        mode_programs[mode_id] = _compile_mode(
            mode_id, deployment, node_index, gid, uid_base[mode_id]
        )
        drain_rows[mode_id] = tuple(
            (app.period, app.deadline) for app in mode.applications
        )
        chain_rows[mode_id] = _compile_chains(mode, deployment, gid)

    if radio is not None:
        # The timing model works in seconds; the trace in milliseconds.
        beacon_on = 1e3 * slot_on_time(
            radio.constants.l_beacon, radio.diameter, radio.constants
        )
        data_on = 1e3 * slot_on_time(
            radio.payload_bytes, radio.diameter, radio.constants
        )
        payload = radio.payload_bytes
    else:
        beacon_on = data_on = None
        payload = 0

    return SystemProgram(
        node_names=node_names,
        node_index=node_index,
        host_default=host_default,
        full_mask=full_mask,
        initial_mode=initial_mode,
        policy=policy,
        modes=mode_programs,
        uid_mode=tuple(uid_mode),
        uid_index=tuple(uid_index),
        message_names=tuple(message_names),
        drain_rows=drain_rows,
        chain_rows=chain_rows,
        radio_beacon_on=beacon_on,
        radio_data_on=data_on,
        payload_bytes=payload,
    )


def _compile_mode(
    mode_id: int,
    deployment: ModeDeployment,
    node_index: Dict[str, int],
    gid,
    uid_base: int,
) -> ModeProgram:
    schedule = deployment.schedule
    num_rounds = deployment.num_rounds

    # Rounds a message is allocated in (the reference recomputes this
    # list — and its `.index()` — per executed slot).
    allocated: Dict[str, List[int]] = {}
    for r_index, messages in enumerate(deployment.round_messages):
        for message in messages:
            allocated.setdefault(message, []).append(r_index)

    offsets = [0]
    gids: List[int] = []
    senders: List[int] = []
    periods: List[float] = []
    msg_offsets: List[float] = []
    deadlines: List[float] = []
    per_hps: List[int] = []
    pos_minus_leftovers: List[int] = []
    shifts: List[int] = []
    records: List[bool] = []
    consumers_masks: List[int] = []

    for r_index, messages in enumerate(deployment.round_messages):
        for message in messages:
            sender = deployment.message_senders[message]
            period = deployment.message_periods.get(message)
            rounds_of = allocated[message]
            gids.append(gid(message))
            senders.append(node_index[sender])
            records.append(period is not None)
            periods.append(math.nan if period is None else period)
            msg_offsets.append(schedule.message_offsets[message])
            deadlines.append(schedule.message_deadlines[message])
            per_hps.append(len(rounds_of))
            pos_minus_leftovers.append(
                rounds_of.index(r_index) - schedule.leftover.get(message, 0)
            )
            shifts.append(deployment.message_shifts.get(message, 0))
            consumers_masks.append(
                names_to_mask(
                    deployment.message_consumers[message], node_index
                )
            )
        offsets.append(len(gids))

    # LOCAL_BELIEF transmit tables: per (round index, node index), the
    # bitmask of slot indices the node's deployment table assigns it.
    tx_slot_masks = []
    for r_index in range(num_rounds):
        row = [0] * len(node_index)
        for name, table in deployment.node_tables.items():
            mask = 0
            for s_index, _msg in table.slot_for_round(r_index):
                mask |= 1 << s_index
            row[node_index[name]] = mask
        tx_slot_masks.append(tuple(row))

    slot_rows = tuple(
        tuple(
            (
                gids[s],
                senders[s],
                1 << senders[s],
                consumers_masks[s],
                records[s],
                periods[s],
                msg_offsets[s],
                deadlines[s],
                per_hps[s],
                pos_minus_leftovers[s],
                shifts[s],
            )
            for s in range(offsets[r], offsets[r + 1])
        )
        for r in range(num_rounds)
    )

    return ModeProgram(
        mode_id=mode_id,
        num_rounds=num_rounds,
        hyperperiod=deployment.hyperperiod,
        round_length=schedule.config.round_length,
        uid_base=uid_base,
        round_starts=np.asarray(deployment.round_starts, dtype=np.float64),
        slot_offsets=np.asarray(offsets, dtype=np.int32),
        slot_gid=np.asarray(gids, dtype=np.int32),
        slot_sender=np.asarray(senders, dtype=np.int32),
        slot_period=np.asarray(periods, dtype=np.float64),
        slot_offset=np.asarray(msg_offsets, dtype=np.float64),
        slot_deadline=np.asarray(deadlines, dtype=np.float64),
        slot_per_hp=np.asarray(per_hps, dtype=np.int32),
        slot_pos_minus_leftover=np.asarray(
            pos_minus_leftovers, dtype=np.int32
        ),
        slot_shift=np.asarray(shifts, dtype=np.int32),
        slot_record=np.asarray(records, dtype=bool),
        slot_consumers=tuple(consumers_masks),
        round_starts_list=tuple(
            float(start) for start in deployment.round_starts
        ),
        slot_rows=slot_rows,
        tx_slot_masks=tuple(tx_slot_masks),
    )


def _compile_chains(mode: Mode, deployment: ModeDeployment, gid) -> tuple:
    schedule = deployment.schedule
    rows = []
    for app in mode.applications:
        chains = []
        for chain in app.chains():
            latency = chain_latency(
                app, chain, schedule.task_offsets, schedule.sigma
            )
            first_offset = schedule.task_offsets[chain.first_task]
            checks = []
            shift = 0
            for i in range(len(chain.elements) - 1):
                src = chain.elements[i]
                dst = chain.elements[i + 1]
                shift += schedule.sigma.get((src, dst), 0)
                if dst in app.messages:
                    checks.append((gid(dst), shift))
            chains.append((first_offset, latency, tuple(checks)))
        rows.append((app.name, app.period, tuple(chains)))
    return tuple(rows)
