"""Deployment-time schedule tables (paper Sec. II-B, "Energy efficiency").

At deployment, every node receives, for each mode: the relative start
times of the mode's rounds, the mode hyperperiod, the slots allocated
to the node in each round as (slot id, message id) pairs, and the
number of slots allocated per round.  :func:`build_deployment` compiles
these tables from a synthesized :class:`~repro.core.schedule.ModeSchedule`
and the mode's applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.app_model import Application
from ..core.modes import Mode
from ..core.schedule import ModeSchedule


@dataclass(frozen=True)
class SlotAssignment:
    """One (round, slot) → message assignment for a sender node."""

    round_index: int
    slot_index: int
    message: str


@dataclass
class NodeTable:
    """Per-node, per-mode schedule information stored at deployment.

    Attributes:
        node: The node this table belongs to.
        tx_slots: ``round index -> [(slot index, message)]`` this node
            transmits in.
        rx_messages: Messages this node must receive (it hosts a
            consumer task), per round index.
        task_offsets: Offsets of the tasks mapped to this node.
    """

    node: str
    tx_slots: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    rx_messages: Dict[int, List[str]] = field(default_factory=dict)
    task_offsets: Dict[str, float] = field(default_factory=dict)

    def slot_for_round(self, round_index: int) -> List[Tuple[int, str]]:
        return self.tx_slots.get(round_index, [])


@dataclass
class ModeDeployment:
    """Everything the network needs to execute one mode.

    Attributes:
        mode_id: Beacon-visible id of the mode.
        mode_name: Human-readable name.
        hyperperiod: Mode hyperperiod.
        round_starts: ``r.t`` per round index (relative to hyperperiod).
        round_messages: Slot allocation per round index (message names,
            slot order fixed at deployment).
        num_allocated: Allocated slot count per round — nodes can turn
            the radio off after the last allocated slot.
        node_tables: Per-node tables.
        message_senders: Transmitting node per message.
        message_consumers: Consumer nodes per message.
        schedule: The synthesized schedule this was compiled from.
        message_periods: Period of the application carrying each
            message — pure per (mode, message), computed once here so
            neither the simulator nor the fast-path compiler re-derives
            it per round.
        message_shifts: Cumulative sigma wrap from the application
            release to each message (the ``g - shift`` instance
            correspondence); pure per (mode, message) as well.
    """

    mode_id: int
    mode_name: str
    hyperperiod: float
    round_starts: List[float]
    round_messages: List[List[str]]
    num_allocated: List[int]
    node_tables: Dict[str, NodeTable]
    message_senders: Dict[str, str]
    message_consumers: Dict[str, List[str]]
    schedule: ModeSchedule
    message_periods: Dict[str, float] = field(default_factory=dict)
    message_shifts: Dict[str, int] = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        return len(self.round_starts)


def compute_message_shifts(mode: Mode, schedule: ModeSchedule) -> Dict[str, int]:
    """Sigma wrap accumulated from the application release to each message.

    Message instance ``g`` carries data of application instance
    ``g - shift``; the shift is the (max) sum of sigma binaries on any
    path from a source task to the message.  Pure per (mode, schedule),
    so :func:`build_deployment` computes it once and the runtime reads
    the table.
    """
    sigma = schedule.sigma
    shifts: Dict[str, int] = {}
    for app in mode.applications:
        # Topological walk over the bipartite DAG.
        order: List[str] = []
        indeg = {t: len(app.task_preds[t]) for t in app.tasks}
        indeg.update({m: len(app.msg_producers[m]) for m in app.messages})
        queue = [e for e, d in indeg.items() if d == 0]
        while queue:
            element = queue.pop()
            order.append(element)
            for nxt in app.successors(element):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        local: Dict[str, int] = {}
        for element in order:
            preds = app.predecessors(element)
            local[element] = max(
                (local[p] + sigma.get((p, element), 0) for p in preds),
                default=0,
            )
        for m in app.messages:
            shifts[m] = local[m]
    return shifts


def build_deployment(
    mode: Mode, schedule: ModeSchedule, mode_id: Optional[int] = None
) -> ModeDeployment:
    """Compile the deployment tables for ``mode`` from its schedule.

    Args:
        mode: The mode (provides task mappings and message routing).
        schedule: A verified :class:`ModeSchedule` for that mode.
        mode_id: Beacon id; defaults to ``mode.mode_id`` (or 0).

    Raises:
        ValueError: if the schedule does not belong to this mode.
    """
    if schedule.mode_name != mode.name:
        raise ValueError(
            f"schedule is for mode {schedule.mode_name!r}, not {mode.name!r}"
        )
    resolved_id = mode_id if mode_id is not None else (mode.mode_id or 0)

    senders: Dict[str, str] = {}
    consumers: Dict[str, List[str]] = {}
    for app in mode.applications:
        for msg_name in app.messages:
            senders[msg_name] = app.sender_node(msg_name)
            consumers[msg_name] = sorted(
                {app.tasks[t].node for t in app.msg_consumers[msg_name]}
            )

    tables: Dict[str, NodeTable] = {}

    def table(node: str) -> NodeTable:
        if node not in tables:
            tables[node] = NodeTable(node=node)
        return tables[node]

    for app in mode.applications:
        for name, task in app.tasks.items():
            table(task.node).task_offsets[name] = schedule.task_offsets[name]

    round_starts: List[float] = []
    round_messages: List[List[str]] = []
    num_allocated: List[int] = []
    for r_index, rnd in enumerate(schedule.rounds):
        round_starts.append(rnd.start)
        round_messages.append(list(rnd.messages))
        num_allocated.append(rnd.num_allocated)
        for slot_index, msg_name in enumerate(rnd.messages):
            sender = senders[msg_name]
            table(sender).tx_slots.setdefault(r_index, []).append(
                (slot_index, msg_name)
            )
            for consumer in consumers[msg_name]:
                table(consumer).rx_messages.setdefault(r_index, []).append(
                    msg_name
                )

    periods = {
        msg_name: app.period
        for app in mode.applications
        for msg_name in app.messages
    }

    return ModeDeployment(
        mode_id=resolved_id,
        mode_name=mode.name,
        hyperperiod=schedule.hyperperiod,
        round_starts=round_starts,
        round_messages=round_messages,
        num_allocated=num_allocated,
        node_tables=tables,
        message_senders=senders,
        message_consumers=consumers,
        schedule=schedule,
        message_periods=periods,
        message_shifts=compute_message_shifts(mode, schedule),
    )
