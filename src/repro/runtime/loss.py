"""Packet-loss models for the runtime simulator.

Loss happens at **flood granularity**: a beacon flood either reaches a
given node or not, and a data flood either reaches a given consumer or
not.  This matches how Glossy-based systems behave in practice — the
flood's constructive interference either locks a receiver in or the
whole flood is lost to that receiver — and it is the granularity at
which the paper argues TTW's safety (beacon gating) and reliability.

Models (all satisfy the :class:`LossModel` protocol and are selectable
by name through :func:`build_loss`, the Scenario JSON boundary):

=================  =============================================================
kind               behaviour
=================  =============================================================
``perfect``        no loss at all (:class:`PerfectLinks`)
``bernoulli``      i.i.d. per-(flood, receiver) losses (:class:`BernoulliLoss`)
``gilbert_elliott``  bursty two-state Markov channel per node
                   (:class:`GilbertElliottLoss`)
``scripted_beacon``  deterministic beacon drops by round index
                   (:class:`ScriptedBeaconLoss`)
``trace_replay``   replay a recorded reception sequence
                   (:class:`TraceReplayLoss`)
``glossy``         per-slot simulated Glossy flood over a topology
                   (:class:`GlossyLoss`)
=================  =============================================================

Seeding and determinism
-----------------------

Every stochastic model accepts ``seed`` as an integer, a
:class:`random.Random`, a :class:`numpy.random.Generator`, or ``None``
(see :func:`repro.core.rng.make_rng`).  Given an integer seed, a model
produces the **same reception sequence on every platform and in every
process**: all node iteration happens in sorted name order, so the
random stream is consumed identically regardless of Python's hash
randomization.  This is the property the Monte-Carlo campaign layer
(:mod:`repro.mc`) builds on — trial ``i`` is fully described by
``(scenario, seed_i)`` and can be reproduced bit-identically from
those two values alone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Set

from ..core.rng import SeedLike, make_rng
from ..net.glossy import GlossySimulator
from ..net.topology import Topology


class LossModel(Protocol):
    """Decides which nodes receive a given flood."""

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        """Nodes (excluding implicit host) that receive a beacon flood."""
        ...

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        """Nodes that receive a data flood initiated by ``sender``."""
        ...


class PerfectLinks:
    """No loss at all — every flood reaches every node."""

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        return set(nodes)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return set(nodes)


class BernoulliLoss:
    """Independent per-receiver flood losses.

    Args:
        beacon_loss: Probability a given node misses a beacon flood.
        data_loss: Probability a given node misses a data flood.
        seed: Integer seed, ``random.Random``, ``numpy.random.Generator``,
            or ``None`` (OS-seeded).
    """

    def __init__(
        self,
        beacon_loss: float = 0.0,
        data_loss: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        for name, p in (("beacon_loss", beacon_loss), ("data_loss", data_loss)):
            if not isinstance(p, (int, float)) or isinstance(p, bool) \
                    or not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p!r}")
        self.beacon_loss = beacon_loss
        self.data_loss = data_loss
        self._rng = make_rng(seed)

    def _sample(self, nodes: Set[str], loss: float, always: str) -> Set[str]:
        received = {always} if always in nodes else set()
        for node in sorted(nodes):
            if node == always:
                continue
            if loss <= 0.0 or self._rng.random() >= loss:
                received.add(node)
        return received

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        return self._sample(nodes, self.beacon_loss, always=host)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return self._sample(nodes, self.data_loss, always=sender)


class ScriptedBeaconLoss:
    """Deterministic beacon drops for protocol experiments.

    The n-th beacon flood (0-based, counted across the run) is missed
    by exactly the nodes listed in ``drops[n]``.  Data floods are
    lossless.  Used to reproduce targeted failure scenarios, e.g. "node
    X misses the trigger beacon of a mode change".  ``drops=None`` (or
    ``{}``) means no drops at all — scenario files may carry the kind
    without parameters.
    """

    def __init__(self, drops: Optional[dict] = None) -> None:
        self.drops = {int(k): set(v) for k, v in (drops or {}).items()}
        self._beacon_counter = 0

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        missing = self.drops.get(self._beacon_counter, set())
        self._beacon_counter += 1
        received = set(nodes) - missing
        received.add(host)
        return received

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return set(nodes)


class TraceReplayLoss:
    """Replay a recorded reception sequence — losses from a real run.

    Where :class:`BernoulliLoss` and :class:`GilbertElliottLoss` are
    *parametric* channels, this model is *empirical*: it replays the
    exact per-flood receiver sets of an earlier execution (or a
    testbed log converted to the same shape).  Replaying the loss
    realization of a recorded trace against a *different* schedule or
    node policy answers "what would this exact interference have done
    to that design?" — the paired-comparison experiment parametric
    models can only approximate.

    Args:
        beacon: One receiver list per beacon flood, in round order.
        data: One receiver list per data flood, in slot order.
        cycle: When ``True`` (default) the sequences wrap around at the
            end; when ``False`` floods past the end are received by
            everyone (perfect links).

    The replay is deterministic and ignores seeding entirely.  Use
    :meth:`from_trace` to lift the events out of a recorded
    :class:`~repro.runtime.trace.Trace`.
    """

    def __init__(
        self,
        beacon: Sequence[Iterable[str]] = (),
        data: Sequence[Iterable[str]] = (),
        cycle: bool = True,
    ) -> None:
        if not isinstance(cycle, bool):
            raise ValueError(f"cycle must be a boolean, got {cycle!r}")
        for name, events in (("beacon", beacon), ("data", data)):
            if isinstance(events, (str, bytes)) or not hasattr(
                events, "__iter__"
            ):
                raise ValueError(
                    f"{name} must be a sequence of receiver lists, "
                    f"got {events!r}"
                )
        self.beacon_events: List[Set[str]] = [set(event) for event in beacon]
        self.data_events: List[Set[str]] = [set(event) for event in data]
        self.cycle = cycle
        self._beacon_cursor = 0
        self._data_cursor = 0

    @classmethod
    def from_trace(cls, trace, cycle: bool = True) -> "TraceReplayLoss":
        """Extract the reception events of a recorded simulation trace."""
        beacon = [sorted(record.beacon_receivers) for record in trace.rounds]
        data = [
            sorted(slot.receivers)
            for record in trace.rounds
            for slot in record.slots
        ]
        return cls(beacon=beacon, data=data, cycle=cycle)

    def _next(self, events: List[Set[str]], cursor: int) -> "tuple[Optional[Set[str]], int]":
        if not events:
            return None, cursor
        if cursor >= len(events):
            if not self.cycle:
                return None, cursor
            cursor = cursor % len(events)
        return events[cursor], cursor + 1

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        event, self._beacon_cursor = self._next(
            self.beacon_events, self._beacon_cursor
        )
        if event is None:
            return set(nodes)
        return (event & set(nodes)) | {host}

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        event, self._data_cursor = self._next(self.data_events, self._data_cursor)
        if event is None:
            return set(nodes)
        return (event & set(nodes)) | {sender}


class GilbertElliottLoss:
    """Bursty interference: per-node two-state Gilbert-Elliott channel.

    The paper motivates TTW's reliability mechanisms with
    high-interference environments (the EWSN dependability competition
    [5]); interference there is *bursty*, not i.i.d.  Each node's
    channel alternates between a GOOD state (losses rare) and a BAD
    state (losses dominant) following a two-state Markov chain advanced
    once per beacon (i.e. per round).

    Args:
        p_good_to_bad: Transition probability GOOD -> BAD per round.
        p_bad_to_good: Transition probability BAD -> GOOD per round.
        loss_good: Flood-miss probability while GOOD.
        loss_bad: Flood-miss probability while BAD.
        seed: Integer seed, ``random.Random``, ``numpy.random.Generator``,
            or ``None`` (OS-seeded).

    The stationary average loss rate is
    ``pi_bad * loss_bad + (1 - pi_bad) * loss_good`` with
    ``pi_bad = p_gb / (p_gb + p_bg)`` — exposed as
    :meth:`average_loss_rate` so experiments can compare bursty vs.
    i.i.d. channels at equal average rates.  BAD-state sojourns are
    geometric with mean ``1 / p_bad_to_good`` rounds (the burst
    length).
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.3,
        loss_good: float = 0.01,
        loss_bad: float = 0.8,
        seed: SeedLike = None,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not isinstance(p, (int, float)) or isinstance(p, bool) \
                    or not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        if p_good_to_bad + p_bad_to_good == 0.0:
            raise ValueError("the chain must have at least one transition")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = make_rng(seed)
        self._bad: Dict[str, bool] = {}

    def average_loss_rate(self) -> float:
        """Stationary flood-miss probability of the channel."""
        pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def _advance(self, node: str) -> None:
        bad = self._bad.get(node, False)
        if bad:
            if self._rng.random() < self.p_bad_to_good:
                self._bad[node] = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._bad[node] = True

    def _loss(self, node: str) -> float:
        return self.loss_bad if self._bad.get(node, False) else self.loss_good

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        # One channel step per round (the beacon starts the round).
        received = {host}
        for node in sorted(nodes):
            self._advance(node)
            if node == host:
                continue
            if self._rng.random() >= self._loss(node):
                received.add(node)
        return received

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        received = {sender}
        for node in sorted(nodes):
            if node == sender:
                continue
            if self._rng.random() >= self._loss(node):
                received.add(node)
        return received


class GlossyLoss:
    """Flood-accurate loss: every slot runs a simulated Glossy flood.

    Args:
        topology: The multi-hop network.
        link_success: Per-link, per-hop reception probability.
        beacon_payload: Beacon size in bytes (timing only).
        seed: Integer seed, ``random.Random``, ``numpy.random.Generator``,
            or ``None`` (OS-seeded).
    """

    def __init__(
        self,
        topology: Topology,
        link_success: float = 0.9,
        beacon_payload: int = 3,
        seed: SeedLike = None,
    ) -> None:
        self.topology = topology
        self.beacon_payload = beacon_payload
        self.simulator = GlossySimulator(
            topology, link_success=link_success, seed=seed
        )

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        result = self.simulator.flood(host, self.beacon_payload)
        return result.received & set(nodes)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        result = self.simulator.flood(sender, payload_bytes)
        return result.received & set(nodes)


# -- the Scenario JSON boundary -----------------------------------------------

#: Loss kinds whose realization is controlled by a ``seed`` parameter.
#: The Monte-Carlo campaign layer re-seeds exactly these per trial;
#: the others are deterministic and replay identically every trial.
SEEDABLE_KINDS = frozenset({"bernoulli", "gilbert_elliott", "glossy"})

#: kind -> (constructor, needs_topology)
_LOSS_KINDS = {
    "perfect": (PerfectLinks, False),
    "bernoulli": (BernoulliLoss, False),
    "gilbert_elliott": (GilbertElliottLoss, False),
    "scripted_beacon": (ScriptedBeaconLoss, False),
    "trace_replay": (TraceReplayLoss, False),
    "glossy": (GlossyLoss, True),
}


def available_loss_kinds() -> "tuple[str, ...]":
    """The loss-model kind names :func:`build_loss` accepts."""
    return tuple(sorted(_LOSS_KINDS))


def build_loss(
    kind: str,
    params: Optional[dict] = None,
    topology: Optional[Topology] = None,
) -> LossModel:
    """Build a loss model from its JSON description (kind + params).

    This is the single boundary every serialized scenario passes
    through — the API layer's ``LossSpec.build`` and the Monte-Carlo
    trial workers both call it — so validation lives here, in the
    repository's boundary style: name the offending parameter, show
    the value, list what is accepted.

    Args:
        kind: One of :func:`available_loss_kinds`.
        params: Keyword arguments of the model's constructor.  ``seed``
            accepts an integer, a ``random.Random``, a
            ``numpy.random.Generator``, or ``None`` uniformly across
            all stochastic kinds (only integers and ``None`` survive
            JSON serialization, of course).
        topology: Required by kinds flooding a real network
            (``glossy``).

    Raises:
        ValueError: unknown kind, unknown parameter names, or invalid
            parameter values.
    """
    params = dict(params or {})
    try:
        constructor, needs_topology = _LOSS_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown loss kind {kind!r}; known: "
            f"{', '.join(available_loss_kinds())}"
        ) from None
    if needs_topology:
        if topology is None:
            raise ValueError(f"loss kind {kind!r} needs a topology")
        args = (topology,)
    else:
        args = ()
    try:
        return constructor(*args, **params)
    except TypeError as exc:
        from ..core.validation import params_error

        raise params_error(f"loss kind {kind!r}", constructor, params,
                           exc) from None


def reseeded(kind: str, params: Optional[dict], seed: int) -> dict:
    """``params`` with ``seed`` replaced — a no-op for seedless kinds.

    The campaign layer derives one seed per trial and pushes it through
    here, so the *n*-th trial of a scenario is reproducible from the
    scenario file plus the campaign seed alone.
    """
    params = dict(params or {})
    if kind in SEEDABLE_KINDS:
        params["seed"] = seed
    return params
