"""Packet-loss models for the runtime simulator.

Loss happens at **flood granularity**: a beacon flood either reaches a
given node or not, and a data flood either reaches a given consumer or
not.  This matches how Glossy-based systems behave in practice — the
flood's constructive interference either locks a receiver in or the
whole flood is lost to that receiver — and it is the granularity at
which the paper argues TTW's safety (beacon gating) and reliability.

Models (all satisfy the :class:`LossModel` protocol and are selectable
by name through :func:`build_loss`, the Scenario JSON boundary):

=================  =============================================================
kind               behaviour
=================  =============================================================
``perfect``        no loss at all (:class:`PerfectLinks`)
``bernoulli``      i.i.d. per-(flood, receiver) losses (:class:`BernoulliLoss`)
``gilbert_elliott``  bursty two-state Markov channel per node
                   (:class:`GilbertElliottLoss`)
``scripted_beacon``  deterministic beacon drops by round index
                   (:class:`ScriptedBeaconLoss`)
``trace_replay``   replay a recorded reception sequence
                   (:class:`TraceReplayLoss`)
``glossy``         per-slot simulated Glossy flood over a topology
                   (:class:`GlossyLoss`)
``spatial``        position-derived per-link PDR matrix (log-distance
                   path loss + waterfall, :class:`SpatialLoss`)
``matrix_trace``   time-indexed per-link PDR matrices replayed round by
                   round (:class:`MatrixTraceLoss`)
``time_varying``   periodic/ramp modulation of base loss rates
                   (:class:`TimeVaryingLoss`)
``interference``   duty-cycled external jammer masking whole rounds
                   (:class:`InterferenceLoss`)
=================  =============================================================

Seeding and determinism
-----------------------

Every stochastic model accepts ``seed`` as an integer, a
:class:`random.Random`, a :class:`numpy.random.Generator`, or ``None``
(see :func:`repro.core.rng.make_rng`).  Given an integer seed, a model
produces the **same reception sequence on every platform and in every
process**: all node iteration happens in sorted name order, so the
random stream is consumed identically regardless of Python's hash
randomization.  This is the property the Monte-Carlo campaign layer
(:mod:`repro.mc`) builds on — trial ``i`` is fully described by
``(scenario, seed_i)`` and can be reproduced bit-identically from
those two values alone.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Set

from ..core.rng import SeedLike, make_rng
from ..net.glossy import GlossySimulator
from ..net.topology import Topology


class TraceExhaustedError(ValueError):
    """A replayed trace ran out of events with ``on_end="error"``.

    Raised by :class:`TraceReplayLoss` and :class:`MatrixTraceLoss`
    when the simulation asks for a flood past the end of the recorded
    sequence and the model was built with the strict exhaustion policy.
    """


#: Accepted values for the trace-exhaustion policy shared by
#: :class:`TraceReplayLoss` and :class:`MatrixTraceLoss`.
ON_END_CHOICES = ("wrap", "perfect", "error")


def _validate_on_end(on_end: str) -> str:
    if on_end not in ON_END_CHOICES:
        raise ValueError(
            f"on_end must be one of {', '.join(ON_END_CHOICES)}, "
            f"got {on_end!r}"
        )
    return on_end


class LossModel(Protocol):
    """Decides which nodes receive a given flood."""

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        """Nodes (excluding implicit host) that receive a beacon flood."""
        ...

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        """Nodes that receive a data flood initiated by ``sender``."""
        ...


class PerfectLinks:
    """No loss at all — every flood reaches every node."""

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        return set(nodes)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return set(nodes)


class BernoulliLoss:
    """Independent per-receiver flood losses.

    Args:
        beacon_loss: Probability a given node misses a beacon flood.
        data_loss: Probability a given node misses a data flood.
        seed: Integer seed, ``random.Random``, ``numpy.random.Generator``,
            or ``None`` (OS-seeded).
    """

    def __init__(
        self,
        beacon_loss: float = 0.0,
        data_loss: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        for name, p in (("beacon_loss", beacon_loss), ("data_loss", data_loss)):
            if not isinstance(p, (int, float)) or isinstance(p, bool) \
                    or not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p!r}")
        self.beacon_loss = beacon_loss
        self.data_loss = data_loss
        self._rng = make_rng(seed)

    def _sample(self, nodes: Set[str], loss: float, always: str) -> Set[str]:
        received = {always} if always in nodes else set()
        for node in sorted(nodes):
            if node == always:
                continue
            if loss <= 0.0 or self._rng.random() >= loss:
                received.add(node)
        return received

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        return self._sample(nodes, self.beacon_loss, always=host)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return self._sample(nodes, self.data_loss, always=sender)


class ScriptedBeaconLoss:
    """Deterministic beacon drops for protocol experiments.

    The n-th beacon flood (0-based, counted across the run) is missed
    by exactly the nodes listed in ``drops[n]``.  Data floods are
    lossless.  Used to reproduce targeted failure scenarios, e.g. "node
    X misses the trigger beacon of a mode change".  ``drops=None`` (or
    ``{}``) means no drops at all — scenario files may carry the kind
    without parameters.
    """

    def __init__(self, drops: Optional[dict] = None) -> None:
        self.drops = {int(k): set(v) for k, v in (drops or {}).items()}
        self._beacon_counter = 0

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        missing = self.drops.get(self._beacon_counter, set())
        self._beacon_counter += 1
        received = set(nodes) - missing
        received.add(host)
        return received

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return set(nodes)


class TraceReplayLoss:
    """Replay a recorded reception sequence — losses from a real run.

    Where :class:`BernoulliLoss` and :class:`GilbertElliottLoss` are
    *parametric* channels, this model is *empirical*: it replays the
    exact per-flood receiver sets of an earlier execution (or a
    testbed log converted to the same shape).  Replaying the loss
    realization of a recorded trace against a *different* schedule or
    node policy answers "what would this exact interference have done
    to that design?" — the paired-comparison experiment parametric
    models can only approximate.

    Args:
        beacon: One receiver list per beacon flood, in round order.
        data: One receiver list per data flood, in slot order.
        cycle: Legacy alias — ``True`` means ``on_end="wrap"``,
            ``False`` means ``on_end="perfect"``.  Mutually exclusive
            with ``on_end``.
        on_end: What happens when a flood is requested past the end of
            the recorded sequence: ``"wrap"`` (default) restarts from
            the beginning, ``"perfect"`` falls open to lossless links,
            ``"error"`` raises :class:`TraceExhaustedError` — the
            strict mode for experiments where silently recycling a
            trace would invalidate the paired comparison.

    The replay is deterministic and ignores seeding entirely.  Use
    :meth:`from_trace` to lift the events out of a recorded
    :class:`~repro.runtime.trace.Trace`.
    """

    def __init__(
        self,
        beacon: Sequence[Iterable[str]] = (),
        data: Sequence[Iterable[str]] = (),
        cycle: Optional[bool] = None,
        on_end: Optional[str] = None,
    ) -> None:
        if cycle is not None and not isinstance(cycle, bool):
            raise ValueError(f"cycle must be a boolean, got {cycle!r}")
        if cycle is not None and on_end is not None:
            raise ValueError(
                "cycle and on_end are mutually exclusive; "
                "use on_end ('wrap'|'perfect'|'error')"
            )
        if on_end is None:
            on_end = "perfect" if cycle is False else "wrap"
        self.on_end = _validate_on_end(on_end)
        for name, events in (("beacon", beacon), ("data", data)):
            if isinstance(events, (str, bytes)) or not hasattr(
                events, "__iter__"
            ):
                raise ValueError(
                    f"{name} must be a sequence of receiver lists, "
                    f"got {events!r}"
                )
        self.beacon_events: List[Set[str]] = [set(event) for event in beacon]
        self.data_events: List[Set[str]] = [set(event) for event in data]
        self._beacon_cursor = 0
        self._data_cursor = 0

    @property
    def cycle(self) -> bool:
        """Legacy view of the exhaustion policy (``on_end == "wrap"``)."""
        return self.on_end == "wrap"

    @classmethod
    def from_trace(cls, trace, cycle: Optional[bool] = None,
                   on_end: Optional[str] = None) -> "TraceReplayLoss":
        """Extract the reception events of a recorded simulation trace."""
        beacon = [sorted(record.beacon_receivers) for record in trace.rounds]
        data = [
            sorted(slot.receivers)
            for record in trace.rounds
            for slot in record.slots
        ]
        return cls(beacon=beacon, data=data, cycle=cycle, on_end=on_end)

    def _next(self, events: List[Set[str]], cursor: int,
              label: str) -> "tuple[Optional[Set[str]], int]":
        if not events:
            if self.on_end == "error":
                raise TraceExhaustedError(
                    f"trace_replay: empty {label} trace with on_end='error'"
                )
            return None, cursor
        if cursor >= len(events):
            if self.on_end == "perfect":
                return None, cursor
            if self.on_end == "error":
                raise TraceExhaustedError(
                    f"trace_replay: {label} trace exhausted after "
                    f"{len(events)} events (on_end='error'); provide a "
                    f"longer trace or choose on_end='wrap'/'perfect'"
                )
            cursor = cursor % len(events)
        return events[cursor], cursor + 1

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        event, self._beacon_cursor = self._next(
            self.beacon_events, self._beacon_cursor, "beacon"
        )
        if event is None:
            return set(nodes)
        return (event & set(nodes)) | {host}

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        event, self._data_cursor = self._next(
            self.data_events, self._data_cursor, "data"
        )
        if event is None:
            return set(nodes)
        return (event & set(nodes)) | {sender}


class GilbertElliottLoss:
    """Bursty interference: per-node two-state Gilbert-Elliott channel.

    The paper motivates TTW's reliability mechanisms with
    high-interference environments (the EWSN dependability competition
    [5]); interference there is *bursty*, not i.i.d.  Each node's
    channel alternates between a GOOD state (losses rare) and a BAD
    state (losses dominant) following a two-state Markov chain advanced
    once per beacon (i.e. per round).

    Args:
        p_good_to_bad: Transition probability GOOD -> BAD per round.
        p_bad_to_good: Transition probability BAD -> GOOD per round.
        loss_good: Flood-miss probability while GOOD.
        loss_bad: Flood-miss probability while BAD.
        seed: Integer seed, ``random.Random``, ``numpy.random.Generator``,
            or ``None`` (OS-seeded).

    The stationary average loss rate is
    ``pi_bad * loss_bad + (1 - pi_bad) * loss_good`` with
    ``pi_bad = p_gb / (p_gb + p_bg)`` — exposed as
    :meth:`average_loss_rate` so experiments can compare bursty vs.
    i.i.d. channels at equal average rates.  BAD-state sojourns are
    geometric with mean ``1 / p_bad_to_good`` rounds (the burst
    length).
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.3,
        loss_good: float = 0.01,
        loss_bad: float = 0.8,
        seed: SeedLike = None,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not isinstance(p, (int, float)) or isinstance(p, bool) \
                    or not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        if p_good_to_bad + p_bad_to_good == 0.0:
            raise ValueError("the chain must have at least one transition")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = make_rng(seed)
        self._bad: Dict[str, bool] = {}

    def average_loss_rate(self) -> float:
        """Stationary flood-miss probability of the channel."""
        pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def _advance(self, node: str) -> None:
        bad = self._bad.get(node, False)
        if bad:
            if self._rng.random() < self.p_bad_to_good:
                self._bad[node] = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._bad[node] = True

    def _loss(self, node: str) -> float:
        return self.loss_bad if self._bad.get(node, False) else self.loss_good

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        # One channel step per round (the beacon starts the round).
        received = {host}
        for node in sorted(nodes):
            self._advance(node)
            if node == host:
                continue
            if self._rng.random() >= self._loss(node):
                received.add(node)
        return received

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        received = {sender}
        for node in sorted(nodes):
            if node == sender:
                continue
            if self._rng.random() >= self._loss(node):
                received.add(node)
        return received


class GlossyLoss:
    """Flood-accurate loss: every slot runs a simulated Glossy flood.

    Args:
        topology: The multi-hop network.
        link_success: Per-link, per-hop reception probability.
        beacon_payload: Beacon size in bytes (timing only).
        seed: Integer seed, ``random.Random``, ``numpy.random.Generator``,
            or ``None`` (OS-seeded).
    """

    def __init__(
        self,
        topology: Topology,
        link_success: float = 0.9,
        beacon_payload: int = 3,
        seed: SeedLike = None,
    ) -> None:
        self.topology = topology
        self.beacon_payload = beacon_payload
        self.simulator = GlossySimulator(
            topology, link_success=link_success, seed=seed
        )

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        result = self.simulator.flood(host, self.beacon_payload)
        return result.received & set(nodes)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        result = self.simulator.flood(sender, payload_bytes)
        return result.received & set(nodes)


def _validate_probability(name: str, p, *, allow_one: bool = True) -> float:
    """Boundary-style check for a probability parameter."""
    upper_ok = (p <= 1.0) if allow_one else (p < 1.0)
    if not isinstance(p, (int, float)) or isinstance(p, bool) \
            or not (0.0 <= p and upper_ok):
        bound = "[0, 1]" if allow_one else "[0, 1)"
        raise ValueError(f"{name} must be in {bound}, got {p!r}")
    return float(p)


class SpatialLoss:
    """Position-derived loss: log-distance path loss -> per-link PDR.

    The classic low-power-wireless propagation model ("Pister hack"):
    received signal strength falls off log-linearly with distance,
    optionally perturbed by per-link log-normal shadowing, and the
    packet delivery ratio rises linearly across a waterfall region
    around the radio's sensitivity threshold:

    .. math::

        RSSI(d) = P_{tx} - \\big(PL_0 + 10\\,n\\,\\log_{10}(d/d_0)\\big)
                  + X_{\\sigma}

        PDR = \\mathrm{clip}\\big((RSSI - S) / W,\\ 0,\\ 1\\big)

    The entire PDR matrix is computed **once at construction** from the
    topology's node positions; every flood then samples per-receiver
    Bernoulli losses against the source's PDR row.  Shadowing draws come
    from a *dedicated* stream (``shadowing_seed``) iterated in sorted
    node-pair order, so the matrix is byte-identical across processes
    and across trials — only the per-flood sampling is re-seeded by the
    campaign layer.

    Args:
        topology: A topology with node ``positions`` (build it with the
            ``grid2d`` or ``uniform_random`` kinds).
        path_loss_exponent: ``n`` — 2.0 free space, 3-4 indoors.
        reference_loss_db: ``PL_0``, path loss at ``reference_distance``.
        reference_distance: ``d_0`` in meters (> 0).
        tx_power_dbm: Transmit power ``P_tx``.
        sensitivity_dbm: Radio sensitivity ``S`` — PDR hits 0 when the
            RSSI falls to it.
        waterfall_width_db: ``W`` — dB span over which PDR climbs 0 -> 1.
        shadowing_db: Log-normal shadowing sigma (0 disables).
        shadowing_seed: Seed of the dedicated shadowing stream.
        symmetric: One shadowing draw per unordered pair (symmetric
            links) vs. independent draws per direction.
        seed: Per-flood sampling stream (re-seeded per MC trial).
    """

    def __init__(
        self,
        topology: Topology,
        path_loss_exponent: float = 3.0,
        reference_loss_db: float = 55.0,
        reference_distance: float = 1.0,
        tx_power_dbm: float = 0.0,
        sensitivity_dbm: float = -90.0,
        waterfall_width_db: float = 10.0,
        shadowing_db: float = 0.0,
        shadowing_seed: int = 0,
        symmetric: bool = True,
        seed: SeedLike = None,
    ) -> None:
        if topology.positions is None:
            raise ValueError(
                "loss kind 'spatial' needs node positions; build the "
                "topology with kind 'grid2d' or 'uniform_random' (or pass "
                "explicit positions)"
            )
        if path_loss_exponent <= 0:
            raise ValueError(
                f"path_loss_exponent must be > 0, got {path_loss_exponent!r}"
            )
        if reference_distance <= 0:
            raise ValueError(
                f"reference_distance must be > 0, got {reference_distance!r}"
            )
        if waterfall_width_db <= 0:
            raise ValueError(
                f"waterfall_width_db must be > 0, got {waterfall_width_db!r}"
            )
        if shadowing_db < 0:
            raise ValueError(
                f"shadowing_db must be >= 0, got {shadowing_db!r}"
            )
        if not isinstance(symmetric, bool):
            raise ValueError(f"symmetric must be a boolean, got {symmetric!r}")
        self.topology = topology
        self.path_loss_exponent = float(path_loss_exponent)
        self.reference_loss_db = float(reference_loss_db)
        self.reference_distance = float(reference_distance)
        self.tx_power_dbm = float(tx_power_dbm)
        self.sensitivity_dbm = float(sensitivity_dbm)
        self.waterfall_width_db = float(waterfall_width_db)
        self.shadowing_db = float(shadowing_db)
        self.shadowing_seed = shadowing_seed
        self.symmetric = symmetric
        self._rng = make_rng(seed)
        self._pdr = self._compute_pdr_matrix()

    def pdr_from_distance(self, distance: float, shadow_db: float = 0.0) -> float:
        """The deterministic PDR of a link of length ``distance`` meters."""
        d = max(distance, self.reference_distance)
        path_loss = self.reference_loss_db + 10.0 * self.path_loss_exponent \
            * math.log10(d / self.reference_distance)
        rssi = self.tx_power_dbm - path_loss + shadow_db
        margin = rssi - self.sensitivity_dbm
        return min(1.0, max(0.0, margin / self.waterfall_width_db))

    def _compute_pdr_matrix(self) -> Dict[str, Dict[str, float]]:
        # Shadowing draws iterate sorted node pairs — one draw per
        # unordered pair when symmetric, one per ordered pair otherwise
        # — from a stream independent of the trial seed, so the matrix
        # is identical in every process (the sorted-node RNG rule).
        names = sorted(self.topology.graph.nodes)
        shadow_rng = make_rng(self.shadowing_seed, "shadowing_seed")
        shadows: Dict[tuple, float] = {}
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.shadowing_db > 0.0:
                    draw = shadow_rng.gauss(0.0, self.shadowing_db)
                else:
                    draw = 0.0
                shadows[(a, b)] = draw
                if self.symmetric:
                    shadows[(b, a)] = draw
                elif self.shadowing_db > 0.0:
                    shadows[(b, a)] = shadow_rng.gauss(0.0, self.shadowing_db)
                else:
                    shadows[(b, a)] = 0.0
        matrix: Dict[str, Dict[str, float]] = {}
        for a in names:
            row: Dict[str, float] = {}
            for b in names:
                if a == b:
                    row[b] = 1.0
                    continue
                row[b] = self.pdr_from_distance(
                    self.topology.distance(a, b), shadows[(a, b)]
                )
            matrix[a] = row
        return matrix

    def pdr_matrix(self) -> Dict[str, Dict[str, float]]:
        """A copy of the per-link PDR matrix (``matrix[src][dst]``)."""
        return {src: dict(row) for src, row in self._pdr.items()}

    def _sample(self, source: str, nodes: Set[str]) -> Set[str]:
        received = {source} if source in nodes else set()
        row = self._pdr[source]
        for node in sorted(nodes):
            if node == source:
                continue
            loss = 1.0 - row[node]
            if loss <= 0.0 or self._rng.random() >= loss:
                received.add(node)
        return received

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        return self._sample(host, nodes)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return self._sample(sender, nodes)


class MatrixTraceLoss:
    """Time-indexed per-link PDR matrices replayed round by round.

    The generalization of :class:`TraceReplayLoss` from recorded
    receiver *sets* to recorded link *qualities*: entry ``t`` is a full
    connectivity matrix ``{src: {dst: pdr}}`` describing round ``t``,
    loaded inline or from a JSONL file (one matrix per line, optionally
    wrapped as ``{"pdr": {...}, "default": p}``).  Each beacon advances
    the round cursor; that round's matrix then governs both the beacon
    flood and every data flood of the round.

    Unlike raw trace replay, the matrices are *sampled*, not replayed
    verbatim — the model is stochastic (``seed`` re-seeded per trial)
    with time-varying per-link parameters, matching how testbed
    connectivity datasets (per-link PDR measured per time window) are
    published.

    Args:
        matrices: Inline list of matrices (mutually exclusive with
            ``path``).
        path: JSONL file with one matrix per line.
        on_end: Exhaustion policy past the last matrix: ``"wrap"``
            (default), ``"perfect"``, or ``"error"``
            (:class:`TraceExhaustedError`).
        default_pdr: PDR for links absent from a matrix (file-level
            ``"default"`` overrides per line).
        seed: Per-flood sampling stream (re-seeded per MC trial).
    """

    def __init__(
        self,
        matrices: Optional[Sequence[dict]] = None,
        path: Optional[str] = None,
        on_end: str = "wrap",
        default_pdr: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        self.on_end = _validate_on_end(on_end)
        self.default_pdr = _validate_probability("default_pdr", default_pdr)
        if (matrices is None) == (path is None):
            raise ValueError(
                "matrix_trace needs exactly one of 'matrices' (inline) "
                "or 'path' (JSONL file)"
            )
        if path is not None:
            matrices = self._load_jsonl(path)
        self._entries: List[tuple] = [
            self._normalize(index, entry) for index, entry in
            enumerate(matrices)
        ]
        if not self._entries:
            raise ValueError("matrix_trace needs at least one matrix")
        self._rng = make_rng(seed)
        self._beacon_count = 0

    @staticmethod
    def _load_jsonl(path: str) -> List[dict]:
        entries = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line_no, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entries.append(json.loads(line))
                    except json.JSONDecodeError as exc:
                        raise ValueError(
                            f"matrix_trace: invalid JSON on line {line_no} "
                            f"of {path!r}: {exc}"
                        ) from None
        except OSError as exc:
            raise ValueError(
                f"matrix_trace: cannot read path {path!r}: {exc}"
            ) from None
        return entries

    def _normalize(self, index: int, entry) -> tuple:
        """Validate one matrix -> ``(rows, default)``."""
        if not isinstance(entry, dict):
            raise ValueError(
                f"matrix_trace: matrix {index} must be an object, "
                f"got {entry!r}"
            )
        default = self.default_pdr
        rows_in = entry
        if "pdr" in entry and isinstance(entry.get("pdr"), dict):
            rows_in = entry["pdr"]
            if "default" in entry:
                default = _validate_probability(
                    f"matrix {index} default", entry["default"]
                )
        rows: Dict[str, Dict[str, float]] = {}
        for src, row in rows_in.items():
            if not isinstance(row, dict):
                raise ValueError(
                    f"matrix_trace: matrix {index} row {src!r} must map "
                    f"receivers to PDR values, got {row!r}"
                )
            rows[str(src)] = {
                str(dst): _validate_probability(
                    f"matrix {index} pdr[{src}][{dst}]", p
                )
                for dst, p in row.items()
            }
        return rows, default

    def matrix_for_round(self, round_index: int) -> Optional[tuple]:
        """The ``(rows, default)`` entry governing ``round_index``.

        ``None`` means perfect links (the ``"perfect"`` policy past the
        end of the trace).  Raises :class:`TraceExhaustedError` under
        ``on_end="error"``.
        """
        count = len(self._entries)
        if round_index < count:
            return self._entries[round_index]
        if self.on_end == "wrap":
            return self._entries[round_index % count]
        if self.on_end == "error":
            raise TraceExhaustedError(
                f"matrix_trace: trace exhausted after {count} matrices "
                f"(round {round_index}, on_end='error'); provide a longer "
                f"trace or choose on_end='wrap'/'perfect'"
            )
        return None

    def _sample(self, source: str, nodes: Set[str],
                round_index: int) -> Set[str]:
        received = {source} if source in nodes else set()
        entry = self.matrix_for_round(round_index)
        if entry is None:
            return set(nodes) | received
        rows, default = entry
        row = rows.get(source, {})
        for node in sorted(nodes):
            if node == source:
                continue
            loss = 1.0 - row.get(node, default)
            if loss <= 0.0 or self._rng.random() >= loss:
                received.add(node)
        return received

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        round_index = self._beacon_count
        self._beacon_count += 1
        return self._sample(host, nodes, round_index)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        # Data floods belong to the round opened by the latest beacon.
        round_index = max(0, self._beacon_count - 1)
        return self._sample(sender, nodes, round_index)


class TimeVaryingLoss:
    """Base loss rates modulated over time — periodic or ramp.

    Models the slow link-quality dynamics real deployments see
    (day/night cycles, charging equipment, people movement): the
    configured ``beacon_loss``/``data_loss`` rates are scaled by a
    time-dependent factor and clamped to ``[0, 1]``:

    * ``shape="periodic"``: ``factor(t) = 1 + amplitude * sin(2 pi t /
      period)`` — loss oscillates around its base rate;
    * ``shape="ramp"``: factor climbs linearly from ``scale_start`` to
      ``scale_end`` over ``ramp_rounds`` rounds, then holds — a
      degrading (or recovering) channel.

    The round counter advances once per beacon; a round's data floods
    use that round's factor.  :meth:`loss_at` is the pure time->loss
    function the fast and vectorized engines reuse verbatim.

    Args:
        beacon_loss: Base beacon flood-miss probability.
        data_loss: Base data flood-miss probability.
        shape: ``"periodic"`` or ``"ramp"``.
        period: Oscillation period in rounds (periodic).
        amplitude: Relative oscillation amplitude (periodic).
        ramp_rounds: Rounds to traverse the ramp (ramp).
        scale_start: Factor at round 0 (ramp).
        scale_end: Factor from ``ramp_rounds`` on (ramp).
        seed: Per-flood sampling stream (re-seeded per MC trial).
    """

    SHAPES = ("periodic", "ramp")

    def __init__(
        self,
        beacon_loss: float = 0.0,
        data_loss: float = 0.0,
        shape: str = "periodic",
        period: int = 20,
        amplitude: float = 0.5,
        ramp_rounds: int = 100,
        scale_start: float = 0.0,
        scale_end: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        self.beacon_loss = _validate_probability(
            "beacon_loss", beacon_loss, allow_one=False
        )
        self.data_loss = _validate_probability(
            "data_loss", data_loss, allow_one=False
        )
        if shape not in self.SHAPES:
            raise ValueError(
                f"shape must be one of {', '.join(self.SHAPES)}, "
                f"got {shape!r}"
            )
        if not isinstance(period, int) or isinstance(period, bool) \
                or period < 1:
            raise ValueError(f"period must be an integer >= 1, got {period!r}")
        if not isinstance(amplitude, (int, float)) or isinstance(
                amplitude, bool) or amplitude < 0:
            raise ValueError(f"amplitude must be >= 0, got {amplitude!r}")
        if not isinstance(ramp_rounds, int) or isinstance(ramp_rounds, bool) \
                or ramp_rounds < 1:
            raise ValueError(
                f"ramp_rounds must be an integer >= 1, got {ramp_rounds!r}"
            )
        for name, value in (("scale_start", scale_start),
                            ("scale_end", scale_end)):
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        self.shape = shape
        self.period = period
        self.amplitude = float(amplitude)
        self.ramp_rounds = ramp_rounds
        self.scale_start = float(scale_start)
        self.scale_end = float(scale_end)
        self._rng = make_rng(seed)
        self._round = 0

    def factor(self, round_index: int) -> float:
        """The loss-scaling factor of round ``round_index`` (pure)."""
        if self.shape == "periodic":
            return 1.0 + self.amplitude * math.sin(
                2.0 * math.pi * round_index / self.period
            )
        frac = min(1.0, round_index / self.ramp_rounds)
        return self.scale_start + (self.scale_end - self.scale_start) * frac

    def loss_at(self, round_index: int, base: float) -> float:
        """Effective loss probability at ``round_index`` (pure, clamped)."""
        return min(1.0, max(0.0, base * self.factor(round_index)))

    def _sample(self, nodes: Set[str], loss: float, always: str) -> Set[str]:
        received = {always} if always in nodes else set()
        for node in sorted(nodes):
            if node == always:
                continue
            if loss <= 0.0 or self._rng.random() >= loss:
                received.add(node)
        return received

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        round_index = self._round
        self._round += 1
        loss = self.loss_at(round_index, self.beacon_loss)
        return self._sample(nodes, loss, always=host)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        round_index = max(0, self._round - 1)
        loss = self.loss_at(round_index, self.data_loss)
        return self._sample(nodes, loss, always=sender)


class InterferenceLoss:
    """Duty-cycled external jammer masking whole rounds.

    A periodic interferer (Wi-Fi beacons, a competing network, the EWSN
    dependability-competition jammer) is active ``burst`` rounds out of
    every ``period``, starting at ``offset``.  While active, every
    affected node suffers ``jam_loss`` on all floods; otherwise the base
    rates apply.  :meth:`jammed` is the pure round->state function the
    fast and vectorized engines reuse verbatim.

    Args:
        period: Jammer duty-cycle period in rounds (>= 1).
        burst: Jammed rounds per period (``0 <= burst <= period``).
        offset: Round index at which the first burst starts.
        jam_loss: Flood-miss probability of affected nodes while jammed.
        base_beacon_loss: Beacon loss outside bursts (and for
            unaffected nodes).
        base_data_loss: Data loss outside bursts (and for unaffected
            nodes).
        affected: Node names in the jammer's footprint; ``None`` means
            every node.
        seed: Per-flood sampling stream (re-seeded per MC trial).
    """

    def __init__(
        self,
        period: int = 10,
        burst: int = 3,
        offset: int = 0,
        jam_loss: float = 1.0,
        base_beacon_loss: float = 0.0,
        base_data_loss: float = 0.0,
        affected: Optional[Iterable[str]] = None,
        seed: SeedLike = None,
    ) -> None:
        if not isinstance(period, int) or isinstance(period, bool) \
                or period < 1:
            raise ValueError(f"period must be an integer >= 1, got {period!r}")
        if not isinstance(burst, int) or isinstance(burst, bool) \
                or not 0 <= burst <= period:
            raise ValueError(
                f"burst must be an integer in [0, period={period}], "
                f"got {burst!r}"
            )
        if not isinstance(offset, int) or isinstance(offset, bool):
            raise ValueError(f"offset must be an integer, got {offset!r}")
        self.jam_loss = _validate_probability("jam_loss", jam_loss)
        self.base_beacon_loss = _validate_probability(
            "base_beacon_loss", base_beacon_loss, allow_one=False
        )
        self.base_data_loss = _validate_probability(
            "base_data_loss", base_data_loss, allow_one=False
        )
        if affected is not None and (
            isinstance(affected, (str, bytes))
            or not hasattr(affected, "__iter__")
        ):
            raise ValueError(
                f"affected must be a list of node names or null, "
                f"got {affected!r}"
            )
        self.period = period
        self.burst = burst
        self.offset = offset
        self.affected = None if affected is None else frozenset(
            str(node) for node in affected
        )
        self._rng = make_rng(seed)
        self._round = 0

    def jammed(self, round_index: int) -> bool:
        """Whether the jammer is active in round ``round_index`` (pure)."""
        return ((round_index - self.offset) % self.period) < self.burst

    def node_loss(self, node: str, round_index: int, base: float) -> float:
        """Effective loss of ``node`` in ``round_index`` (pure)."""
        if self.jammed(round_index) and (
            self.affected is None or node in self.affected
        ):
            return self.jam_loss
        return base

    def _sample(self, nodes: Set[str], round_index: int, base: float,
                always: str) -> Set[str]:
        received = {always} if always in nodes else set()
        for node in sorted(nodes):
            if node == always:
                continue
            loss = self.node_loss(node, round_index, base)
            if loss <= 0.0 or self._rng.random() >= loss:
                received.add(node)
        return received

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        round_index = self._round
        self._round += 1
        return self._sample(nodes, round_index, self.base_beacon_loss,
                            always=host)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        round_index = max(0, self._round - 1)
        return self._sample(nodes, round_index, self.base_data_loss,
                            always=sender)


# -- the Scenario JSON boundary -----------------------------------------------

#: Loss kinds whose realization is controlled by a ``seed`` parameter.
#: The Monte-Carlo campaign layer re-seeds exactly these per trial;
#: the others are deterministic and replay identically every trial.
SEEDABLE_KINDS = frozenset({
    "bernoulli", "gilbert_elliott", "glossy",
    "spatial", "matrix_trace", "time_varying", "interference",
})

#: Loss kinds that need a topology at construction time (``build_loss``
#: refuses them without one; ``Scenario.validate`` enforces it at the
#: JSON boundary).
TOPOLOGY_LOSS_KINDS = frozenset({"glossy", "spatial"})

#: kind -> (constructor, needs_topology)
_LOSS_KINDS = {
    "perfect": (PerfectLinks, False),
    "bernoulli": (BernoulliLoss, False),
    "gilbert_elliott": (GilbertElliottLoss, False),
    "scripted_beacon": (ScriptedBeaconLoss, False),
    "trace_replay": (TraceReplayLoss, False),
    "glossy": (GlossyLoss, True),
    "spatial": (SpatialLoss, True),
    "matrix_trace": (MatrixTraceLoss, False),
    "time_varying": (TimeVaryingLoss, False),
    "interference": (InterferenceLoss, False),
}


def available_loss_kinds() -> "tuple[str, ...]":
    """The loss-model kind names :func:`build_loss` accepts."""
    return tuple(sorted(_LOSS_KINDS))


def build_loss(
    kind: str,
    params: Optional[dict] = None,
    topology: Optional[Topology] = None,
) -> LossModel:
    """Build a loss model from its JSON description (kind + params).

    This is the single boundary every serialized scenario passes
    through — the API layer's ``LossSpec.build`` and the Monte-Carlo
    trial workers both call it — so validation lives here, in the
    repository's boundary style: name the offending parameter, show
    the value, list what is accepted.

    Args:
        kind: One of :func:`available_loss_kinds`.
        params: Keyword arguments of the model's constructor.  ``seed``
            accepts an integer, a ``random.Random``, a
            ``numpy.random.Generator``, or ``None`` uniformly across
            all stochastic kinds (only integers and ``None`` survive
            JSON serialization, of course).
        topology: Required by kinds flooding a real network
            (``glossy``).

    Raises:
        ValueError: unknown kind, unknown parameter names, or invalid
            parameter values.
    """
    params = dict(params or {})
    try:
        constructor, needs_topology = _LOSS_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown loss kind {kind!r}; known: "
            f"{', '.join(available_loss_kinds())}"
        ) from None
    if needs_topology:
        if topology is None:
            raise ValueError(f"loss kind {kind!r} needs a topology")
        args = (topology,)
    else:
        args = ()
    try:
        return constructor(*args, **params)
    except TypeError as exc:
        from ..core.validation import params_error

        raise params_error(f"loss kind {kind!r}", constructor, params,
                           exc) from None


def reseeded(kind: str, params: Optional[dict], seed: int) -> dict:
    """``params`` with ``seed`` replaced — a no-op for seedless kinds.

    The campaign layer derives one seed per trial and pushes it through
    here, so the *n*-th trial of a scenario is reproducible from the
    scenario file plus the campaign seed alone.
    """
    params = dict(params or {})
    if kind in SEEDABLE_KINDS:
        params["seed"] = seed
    return params
