"""Packet-loss models for the runtime simulator.

Loss happens at flood granularity: a beacon flood either reaches a
given node or not, and a data flood either reaches a given consumer or
not.  Two models are provided:

* :class:`BernoulliLoss` — independent per-(flood, receiver) losses
  with fixed probabilities; fast, used for the safety experiments;
* :class:`GlossyLoss` — samples an actual :class:`GlossySimulator`
  flood over a topology per slot, so spatial correlation (a node far
  from the initiator fails more often) is captured.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol, Set

from ..net.glossy import GlossySimulator
from ..net.topology import Topology


class LossModel(Protocol):
    """Decides which nodes receive a given flood."""

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        """Nodes (excluding implicit host) that receive a beacon flood."""
        ...

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        """Nodes that receive a data flood initiated by ``sender``."""
        ...


class PerfectLinks:
    """No loss at all — every flood reaches every node."""

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        return set(nodes)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return set(nodes)


class BernoulliLoss:
    """Independent per-receiver flood losses.

    Args:
        beacon_loss: Probability a given node misses a beacon flood.
        data_loss: Probability a given node misses a data flood.
        seed: RNG seed for reproducibility.
    """

    def __init__(
        self,
        beacon_loss: float = 0.0,
        data_loss: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        for name, p in (("beacon_loss", beacon_loss), ("data_loss", data_loss)):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p}")
        self.beacon_loss = beacon_loss
        self.data_loss = data_loss
        self._rng = random.Random(seed)

    def _sample(self, nodes: Set[str], loss: float, always: str) -> Set[str]:
        received = {always} if always in nodes else set()
        for node in nodes:
            if node == always:
                continue
            if loss <= 0.0 or self._rng.random() >= loss:
                received.add(node)
        return received

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        return self._sample(nodes, self.beacon_loss, always=host)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return self._sample(nodes, self.data_loss, always=sender)


class ScriptedBeaconLoss:
    """Deterministic beacon drops for protocol experiments.

    The n-th beacon flood (0-based, counted across the run) is missed
    by exactly the nodes listed in ``drops[n]``.  Data floods are
    lossless.  Used to reproduce targeted failure scenarios, e.g. "node
    X misses the trigger beacon of a mode change".
    """

    def __init__(self, drops: dict) -> None:
        self.drops = {int(k): set(v) for k, v in drops.items()}
        self._beacon_counter = 0

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        missing = self.drops.get(self._beacon_counter, set())
        self._beacon_counter += 1
        received = set(nodes) - missing
        received.add(host)
        return received

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        return set(nodes)


class GilbertElliottLoss:
    """Bursty interference: per-node two-state Gilbert-Elliott channel.

    The paper motivates TTW's reliability mechanisms with
    high-interference environments (the EWSN dependability competition
    [5]); interference there is *bursty*, not i.i.d.  Each node's
    channel alternates between a GOOD state (losses rare) and a BAD
    state (losses dominant) following a two-state Markov chain advanced
    once per beacon (i.e. per round).

    Args:
        p_good_to_bad: Transition probability GOOD -> BAD per round.
        p_bad_to_good: Transition probability BAD -> GOOD per round.
        loss_good: Flood-miss probability while GOOD.
        loss_bad: Flood-miss probability while BAD.
        seed: RNG seed.

    The stationary average loss rate is
    ``pi_bad * loss_bad + (1 - pi_bad) * loss_good`` with
    ``pi_bad = p_gb / (p_gb + p_bg)`` — exposed as
    :meth:`average_loss_rate` so experiments can compare bursty vs.
    i.i.d. channels at equal average rates.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.3,
        loss_good: float = 0.01,
        loss_bad: float = 0.8,
        seed: Optional[int] = None,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if p_good_to_bad + p_bad_to_good == 0.0:
            raise ValueError("the chain must have at least one transition")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = random.Random(seed)
        self._bad: dict = {}

    def average_loss_rate(self) -> float:
        """Stationary flood-miss probability of the channel."""
        pi_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def _advance(self, node: str) -> None:
        bad = self._bad.get(node, False)
        if bad:
            if self._rng.random() < self.p_bad_to_good:
                self._bad[node] = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._bad[node] = True

    def _loss(self, node: str) -> float:
        return self.loss_bad if self._bad.get(node, False) else self.loss_good

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        # One channel step per round (the beacon starts the round).
        received = {host}
        for node in nodes:
            self._advance(node)
            if node == host:
                continue
            if self._rng.random() >= self._loss(node):
                received.add(node)
        return received

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        received = {sender}
        for node in nodes:
            if node == sender:
                continue
            if self._rng.random() >= self._loss(node):
                received.add(node)
        return received


class GlossyLoss:
    """Flood-accurate loss: every slot runs a simulated Glossy flood.

    Args:
        topology: The multi-hop network.
        link_success: Per-link, per-hop reception probability.
        beacon_payload: Beacon size in bytes (timing only).
        seed: RNG seed.
    """

    def __init__(
        self,
        topology: Topology,
        link_success: float = 0.9,
        beacon_payload: int = 3,
        seed: Optional[int] = None,
    ) -> None:
        self.topology = topology
        self.beacon_payload = beacon_payload
        self.simulator = GlossySimulator(
            topology, link_success=link_success, seed=seed
        )

    def beacon_receivers(self, host: str, nodes: Set[str]) -> Set[str]:
        result = self.simulator.flood(host, self.beacon_payload)
        return result.received & set(nodes)

    def data_receivers(
        self, sender: str, nodes: Set[str], payload_bytes: int
    ) -> Set[str]:
        result = self.simulator.flood(sender, payload_bytes)
        return result.received & set(nodes)
