"""Clock drift and guard-time analysis — why (C2.2) exists.

Glossy gives sub-microsecond synchronization at every flood [11], so a
node's clock error is bounded by its drift since the *last beacon it
received*.  The schedule keeps nodes aligned only if the guard time
nodes wake up before a slot exceeds the worst-case drift over the
maximum inter-round gap — that is what the paper's ``T_max`` bound
(constraint C2.2) buys.

This module computes the worst-case clock offset for a given crystal
tolerance and round spacing, derives the required guard time when a
node may additionally miss ``k`` consecutive beacons, and checks a
:class:`~repro.core.schedule.SchedulingConfig` against a radio's
wake-up margin.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Typical crystal tolerance of low-power nodes (e.g. TelosB): 20 ppm.
DEFAULT_DRIFT_PPM = 20.0


@dataclass(frozen=True)
class SyncAnalysis:
    """Result of a guard-time check.

    Attributes:
        max_gap: Largest time between consecutive synchronization
            points (beacons received), in ms.
        worst_offset: Worst-case clock offset accumulated over
            ``max_gap``, in ms.
        guard_time: Wake-up margin available before each slot, in ms.
        missed_beacons_tolerated: How many consecutive beacons a node
            can miss before its drift may exceed the guard time.
    """

    max_gap: float
    worst_offset: float
    guard_time: float
    missed_beacons_tolerated: int

    @property
    def safe(self) -> bool:
        """True when a fully-synchronized node stays inside the guard."""
        return self.worst_offset <= self.guard_time


def worst_case_offset(gap_ms: float, drift_ppm: float = DEFAULT_DRIFT_PPM) -> float:
    """Worst-case clock offset [ms] accumulated over ``gap_ms``.

    Two nodes can drift in opposite directions, so the relative offset
    grows at twice the individual tolerance.
    """
    if gap_ms < 0:
        raise ValueError("gap must be >= 0")
    if drift_ppm < 0:
        raise ValueError("drift must be >= 0")
    return 2.0 * drift_ppm * 1e-6 * gap_ms


def required_guard_time(
    max_round_gap_ms: float,
    drift_ppm: float = DEFAULT_DRIFT_PPM,
    missed_beacons: int = 0,
) -> float:
    """Guard time [ms] needed to absorb drift over the round gap.

    Args:
        max_round_gap_ms: The schedule's ``T_max`` (C2.2 bound).
        drift_ppm: Crystal tolerance.
        missed_beacons: Consecutive beacons the node may have missed;
            each miss extends the unsynchronized interval by one gap.
    """
    if missed_beacons < 0:
        raise ValueError("missed_beacons must be >= 0")
    effective_gap = max_round_gap_ms * (1 + missed_beacons)
    return worst_case_offset(effective_gap, drift_ppm)


def analyze_sync(
    max_round_gap_ms: float,
    guard_time_ms: float,
    drift_ppm: float = DEFAULT_DRIFT_PPM,
) -> SyncAnalysis:
    """Check a round spacing against an available guard time.

    Returns:
        A :class:`SyncAnalysis`; ``missed_beacons_tolerated`` counts the
        consecutive beacon losses after which the node must fall back to
        re-synchronization (listening with a widened window).
    """
    if guard_time_ms <= 0:
        raise ValueError("guard_time must be > 0")
    offset = worst_case_offset(max_round_gap_ms, drift_ppm)
    tolerated = 0
    while (
        required_guard_time(max_round_gap_ms, drift_ppm, tolerated + 1)
        <= guard_time_ms
    ):
        tolerated += 1
        if tolerated > 10**6:  # zero-drift clocks: effectively unbounded
            break
    return SyncAnalysis(
        max_gap=max_round_gap_ms,
        worst_offset=offset,
        guard_time=guard_time_ms,
        missed_beacons_tolerated=tolerated,
    )


def max_gap_for_guard(
    guard_time_ms: float, drift_ppm: float = DEFAULT_DRIFT_PPM
) -> float:
    """Largest ``T_max`` a guard time supports (inverse of the check).

    This is how a deployment derives the (C2.2) constant: given the
    radio's wake-up margin, the scheduler must not space rounds further
    apart than this.
    """
    if guard_time_ms <= 0:
        raise ValueError("guard_time must be > 0")
    if drift_ppm <= 0:
        return float("inf")
    return guard_time_ms / (2.0 * drift_ppm * 1e-6)
