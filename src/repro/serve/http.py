"""The service's HTTP/JSON surface — stdlib only, no frameworks.

Endpoints (all JSON unless noted):

=======  ========================  =======================================
Method   Path                      Meaning
=======  ========================  =======================================
POST     ``/jobs``                 Submit a job (Scenario JSON + options)
GET      ``/jobs``                 List jobs (``?state=``, ``?client=``)
GET      ``/jobs/<id>``            One job's public record
GET      ``/jobs/<id>/events``     **NDJSON stream** of the job's events,
                                   one JSON object per line, closed after
                                   the terminal event
POST     ``/jobs/<id>/cancel``     Cancel a job (idempotent)
GET      ``/stats``                Admission / dedup / cache / store stats
GET      ``/metrics``              ``/stats`` plus the obs metrics registry
                                   (counters, phase-timing spans) and
                                   engine-resolution counts
GET      ``/healthz``              Liveness probe
POST     ``/shutdown``             Graceful drain + exit
=======  ========================  =======================================

The request body of ``POST /jobs``::

    {"scenario": {...Scenario JSON...},
     "trials": 32,            # optional (exclusive with "seeds")
     "seeds": [1, 2, 3],      # optional explicit seed list
     "engine": "fast",        # optional engine override
     "client": "alice"}       # optional client label

Error mapping is uniform: admission rejections surface as their
:class:`~repro.serve.queue.AdmissionError` status (429 queue/budget,
503 draining), malformed scenarios/options as 400, unknown jobs as
404, everything unexpected as 500 — always with a JSON body
``{"error": ..., "reason": ...}``.

Built on :class:`http.server.ThreadingHTTPServer`: one thread per
connection is exactly right for a handful of lab clients, costs no
dependencies, and lets the event stream block in
:meth:`~repro.serve.jobs.JobTable.wait_for_events` without starving
other requests.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..api.scenario import Scenario, ScenarioError
from .jobs import StateError, job_view
from .queue import AdmissionError

#: Upper bound on request bodies (a Scenario JSON is a few KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to a :class:`~repro.serve.app.ServiceApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app) -> None:
        super().__init__(address, ServiceHandler)
        self.app = app


class ServiceHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # -- plumbing --------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        self.server.app.log(f"{self.address_string()} {format % args}")

    def _send_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, error: str, reason: str) -> None:
        self._send_json(status, {"error": error, "reason": reason})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES} byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body; expected JSON")
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ValueError(
                f"request body must be a JSON object, got {type(data).__name__}"
            )
        return data

    # -- routing ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                self._send_json(200, {"status": "ok"})
            elif parts == ["stats"]:
                self._send_json(200, self.server.app.stats())
            elif parts == ["metrics"]:
                self._send_json(200, self.server.app.metrics())
            elif parts == ["jobs"]:
                self._list_jobs(parse_qs(parsed.query))
            elif len(parts) == 2 and parts[0] == "jobs":
                self._get_job(parts[1])
            elif len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "events":
                self._stream_events(parts[1])
            else:
                self._error(404, "not_found", f"no route for GET {parsed.path}")
        except BrokenPipeError:
            pass  # client hung up mid-stream; nothing to answer
        except Exception as exc:  # uniform 500 mapping
            self._safe_error(500, "internal", str(exc))

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts == ["jobs"]:
                self._submit_job()
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._cancel_job(parts[1])
            elif parts == ["shutdown"]:
                self._shutdown()
            else:
                self._error(404, "not_found", f"no route for POST {parsed.path}")
        except AdmissionError as exc:
            self._error(exc.status, "rejected", exc.reason)
        except (ScenarioError, ValueError) as exc:
            self._error(400, "bad_request", str(exc))
        except KeyError as exc:
            self._error(404, "not_found", str(exc.args[0] if exc.args else exc))
        except BrokenPipeError:
            pass
        except Exception as exc:
            self._safe_error(500, "internal", str(exc))

    def _safe_error(self, status: int, error: str, reason: str) -> None:
        try:
            self._error(status, error, reason)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass

    # -- handlers --------------------------------------------------------
    def _submit_job(self) -> None:
        data = self._read_body()
        if "scenario" not in data:
            raise ValueError("request must carry a 'scenario' object")
        scenario = Scenario.from_dict(data["scenario"])
        trials = data.get("trials")
        seeds = data.get("seeds")
        engine = data.get("engine")
        client = str(data.get("client") or "anonymous")
        if trials is not None and (
            not isinstance(trials, int) or isinstance(trials, bool)
        ):
            raise ValueError(f"trials must be an integer, got {trials!r}")
        if seeds is not None and not isinstance(seeds, list):
            raise ValueError(f"seeds must be a list, got {type(seeds).__name__}")
        job = self.server.app.queue.submit(
            scenario, trials=trials, seeds=seeds, engine=engine, client=client
        )
        self._send_json(202 if job["state"] == "queued" else 200, job_view(job))

    def _get_job(self, job_id: str) -> None:
        job = self.server.app.table.get(job_id)
        if job is None:
            self._error(404, "not_found", f"unknown job {job_id!r}")
            return
        with self.server.app.table.lock:
            self._send_json(200, job_view(job))

    def _list_jobs(self, query: dict) -> None:
        state = query.get("state", [None])[0]
        client = query.get("client", [None])[0]
        try:
            jobs = self.server.app.table.list(state=state, client=client)
        except StateError as exc:
            self._error(400, "bad_request", str(exc))
            return
        with self.server.app.table.lock:
            self._send_json(200, {"jobs": [job_view(job) for job in jobs]})

    def _cancel_job(self, job_id: str) -> None:
        changed = self.server.app.queue.cancel(job_id)
        job = self.server.app.table.get(job_id)
        view = job_view(job) if job is not None else {"id": job_id}
        view["cancelled_now"] = changed
        self._send_json(200, view)

    def _shutdown(self) -> None:
        self._send_json(202, {"status": "draining"})
        # Answer first, then drain: the requester must get its response
        # before the listener goes away.
        threading.Thread(
            target=self.server.app.shutdown, name="serve-shutdown", daemon=True
        ).start()

    def _stream_events(self, job_id: str) -> None:
        """NDJSON event stream: one event per line, until terminal.

        Chunked transfer (HTTP/1.1) so the connection can stream an
        unknown number of events; ends with the terminal-state event.
        """
        table = self.server.app.table
        if table.get(job_id) is None:
            self._error(404, "not_found", f"unknown job {job_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        seq = -1
        terminal = False
        try:
            while not terminal:
                events, terminal = table.wait_for_events(
                    job_id, seq, timeout=1.0
                )
                for event in events:
                    self._write_chunk(
                        json.dumps(event, sort_keys=True) + "\n"
                    )
                    seq = event["seq"]
            self._write_chunk("")  # terminating zero-length chunk
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client disconnected; the job carries on regardless

    def _write_chunk(self, text: str) -> None:
        data = text.encode("utf-8")
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data + b"\r\n")
        self.wfile.flush()


def serve_forever(
    app, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind and return the server (caller drives ``serve_forever``)."""
    return ServiceHTTPServer((host, port), app)
