"""Admission control and the worker pool that executes jobs.

The queue holds :class:`~repro.serve.dedup.Execution` objects (not
jobs — attached duplicates never occupy a second slot).  Worker
*threads* drain it; each execution runs through the very same fast
paths the batch tools use:

* synthesis via :func:`repro.api.experiment.synthesize_scenarios`
  against the service's shared :class:`~repro.engine.cache
  .ScheduleCache` (one synthesis at a time — the solver is CPU-bound
  and the cache counters stay exact);
* trials via :func:`repro.runtime.trial.execute_trial_batch` over the
  shared :class:`~repro.engine.trials.ResidentPool`, in **batches** of
  ``trial_batch`` seeds with the execution's cancel flag polled
  between batches — a cancelled job stops within one batch, and every
  batch emits a progress event to every attached job.

Admission control rejects work *before* it costs anything:

* ``max_queued``  — executions waiting to start (HTTP 429);
* ``max_inflight`` — executions running at once (workers wait, clients
  are only rejected via ``max_queued``);
* ``max_trials`` — per-request trial budget (HTTP 429);
* draining       — a stopping service admits nothing (HTTP 503).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence

from ..api.experiment import synthesize_scenarios
from ..api.scenario import Scenario, ScenarioError
from ..core.synthesis import InfeasibleError
from ..dse.store import STORE_SCHEMA, ResultStore, candidate_key
from ..engine.api import EngineStats
from ..engine.cache import ScheduleCache
from ..engine.trials import ResidentPool
from ..mc.campaign import _point_loss, _resolve_seeds, scenario_context
from ..mc.stats import CampaignStats
from ..obs.events import emit
from ..obs.metrics import timed_span
from ..runtime.trial import ENGINES, TrialResult, build_context, execute_trial_batch
from .dedup import DedupIndex, Execution, job_key
from .jobs import TERMINAL, JobTable


class AdmissionError(RuntimeError):
    """A submission the service refuses; ``status`` is the HTTP code."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


def _result_record(
    scenario: Scenario,
    seeds: Sequence[Optional[int]],
    stats: Optional[CampaignStats],
    total_latency: float,
    rounds: int,
    elapsed: float,
    error: Optional[str] = None,
) -> dict:
    """A store record in the exact schema ``repro.dse`` writes.

    Shared schema => shared store: exploration results answer service
    requests and service results seed explorations.
    """
    return {
        "schema": STORE_SCHEMA,
        "name": scenario.name,
        "assignment": {},
        "seeds": list(seeds),
        "stats": stats.to_dict() if stats is not None else None,
        "total_latency": total_latency,
        "rounds": rounds,
        "elapsed": elapsed,
        "error": error,
    }


def _failure_text(reports: Dict[str, object]) -> str:
    lines = []
    for mode_name, report in sorted(reports.items()):
        for violation in report.violations:
            lines.append(f"mode {mode_name!r}: {violation}")
    return "; ".join(lines) or "verification failed"


class JobQueue:
    """The service's execution core: admission, workers, cancellation.

    Args:
        table: The job table (shared with the HTTP layer).
        store: Shared result store (completed-work dedup + durability).
        pool: Shared resident trial pool.
        cache: Shared schedule cache (may be ``None``).
        workers: Worker threads draining the queue.
        max_queued: Executions allowed to wait (admission bound).
        max_inflight: Executions allowed to run at once (defaults to
            ``workers``).
        max_trials: Per-request trial budget (admission bound).
        trial_batch: Trials per execution batch — the cancellation and
            progress granularity.
        engine: Default trial engine for submissions that name none.
        synth_jobs: Worker processes for each synthesis call (1 =
            in-thread, the service default; synthesis is serialized
            across jobs either way).
    """

    def __init__(
        self,
        table: JobTable,
        store: ResultStore,
        pool: ResidentPool,
        cache: Optional[ScheduleCache] = None,
        workers: int = 2,
        max_queued: int = 64,
        max_inflight: Optional[int] = None,
        max_trials: int = 100_000,
        trial_batch: int = 16,
        engine: str = "fast",
        synth_jobs: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if max_queued < 1:
            raise ValueError(f"max_queued must be >= 1, got {max_queued!r}")
        if max_trials < 1:
            raise ValueError(f"max_trials must be >= 1, got {max_trials!r}")
        if trial_batch < 1:
            raise ValueError(f"trial_batch must be >= 1, got {trial_batch!r}")
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {', '.join(ENGINES)}, got {engine!r}"
            )
        self.table = table
        self.store = store
        self.pool = pool
        self.cache = cache
        self.workers = workers
        self.max_queued = max_queued
        self.max_inflight = max_inflight if max_inflight is not None else workers
        self.max_trials = max_trials
        self.trial_batch = trial_batch
        self.engine = engine
        self.synth_jobs = synth_jobs

        self.dedup = DedupIndex()
        self.engine_stats = EngineStats()
        self._queue: "deque[Execution]" = deque()
        self._condition = threading.Condition()
        self._inflight = 0
        self._stopping = False
        self._threads: List[threading.Thread] = []
        self._synth_lock = threading.Lock()
        # Admission/throughput counters (all under _condition's lock).
        self.accepted = 0
        self.rejected: Dict[str, int] = {
            "queue_full": 0, "trial_budget": 0, "draining": 0,
        }
        self.cancelled = 0
        self.campaigns_executed = 0
        self.trials_executed = 0
        # requested engine -> {engine actually used -> count}; fallback
        # shows up as an off-diagonal entry (e.g. vectorized -> fast).
        self.engine_resolution: Dict[str, Dict[str, int]] = {}

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting, finish queued + running work, join workers.

        Returns True when every worker exited within ``timeout``.
        """
        with self._condition:
            self._stopping = True
            self._condition.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
        return not any(thread.is_alive() for thread in self._threads)

    # -- admission -------------------------------------------------------
    def submit(
        self,
        scenario: Scenario,
        trials: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
        engine: Optional[str] = None,
        client: str = "anonymous",
    ) -> dict:
        """Admit one request; returns the job record.

        Raises:
            AdmissionError: queue full / budget exceeded / draining.
            ScenarioError: inconsistent scenario (an HTTP 400).
            ValueError: bad trials/seeds/engine (an HTTP 400).
        """
        engine = engine if engine is not None else self.engine
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {', '.join(ENGINES)}, got {engine!r}"
            )
        scenario.validate()
        if scenario.simulation is not None:
            seed_list: List[Optional[int]] = _resolve_seeds(
                scenario, trials, seeds
            )
        else:
            if trials is not None or seeds is not None:
                raise ScenarioError(
                    f"scenario {scenario.name!r} has no simulation phase; "
                    f"trials/seeds only apply to campaign jobs"
                )
            seed_list = []
        if len(seed_list) > self.max_trials:
            with self._condition:
                self.rejected["trial_budget"] += 1
            emit(
                "serve.reject", reason="trial_budget", client=client,
                trials=len(seed_list), limit=self.max_trials,
            )
            raise AdmissionError(
                429,
                f"trial budget exceeded: {len(seed_list)} trials requested, "
                f"limit is {self.max_trials} per job",
            )
        key = job_key(scenario, seed_list)

        with self._condition:
            if self._stopping:
                self.rejected["draining"] += 1
                emit("serve.reject", reason="draining", client=client)
                raise AdmissionError(503, "service is draining")

            # Dedup layer 1: completed work in the shared store.
            record = self.store.get(key)
            if record is not None:
                self.dedup.count_store_hit()
                self.accepted += 1
                emit(
                    "serve.dedup", layer="store", key=key,
                    scenario=scenario.name, client=client,
                )
                job = self.table.create(
                    scenario.name, key, client=client,
                    trials=len(seed_list), engine=engine,
                )
                error = record.get("error")
                if error is not None:
                    return self.table.transition(
                        job["id"], "failed", error=error, cached=True,
                        result=dict(record),
                    )
                return self.table.transition(
                    job["id"], "done", cached=True, result=dict(record),
                    trials_done=len(record.get("seeds", seed_list)),
                )

            # Dedup layer 2: identical work already in flight — attach.
            execution = self.dedup.lookup(key)
            if execution is not None:
                self.dedup.count_attach()
                self.accepted += 1
                emit(
                    "serve.dedup", layer="inflight", key=key,
                    scenario=scenario.name, client=client,
                    leader=execution.job_ids[0],
                )
                job = self.table.create(
                    scenario.name, key, client=client,
                    trials=len(seed_list), engine=execution.engine,
                )
                execution.attach(job["id"])
                # Mirror the execution's progress so this job's event
                # stream starts where the work actually is.
                leader_state = self._execution_state(execution)
                if leader_state in ("synthesizing", "simulating"):
                    self.table.transition(job["id"], leader_state)
                return job

            if len(self._queue) >= self.max_queued:
                self.rejected["queue_full"] += 1
                emit(
                    "serve.reject", reason="queue_full", client=client,
                    queued=len(self._queue), limit=self.max_queued,
                )
                raise AdmissionError(
                    429,
                    f"queue full: {len(self._queue)} execution(s) waiting, "
                    f"limit is {self.max_queued}",
                )

            self.accepted += 1
            job = self.table.create(
                scenario.name, key, client=client,
                trials=len(seed_list), engine=engine,
            )
            execution = Execution(key, scenario, seed_list, engine, job["id"])
            self.dedup.register(execution)
            self._queue.append(execution)
            self._condition.notify()
            return job

    def cancel(self, job_id: str) -> bool:
        """Cancel one job; returns False when it already ended.

        A queued execution whose last job cancels is removed from the
        queue and never executes; a running one stops within one trial
        batch (its worker polls the cancel flag).
        """
        job = self.table.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        with self._condition:
            if job["state"] in TERMINAL:
                return False
            self.table.transition(job_id, "cancelled")
            self.cancelled += 1
            execution = self.dedup.lookup(job["key"])
            if execution is not None and job_id in execution.job_ids:
                if execution.detach(job_id):
                    # Nobody is waiting any more.
                    if execution in self._queue:
                        self._queue.remove(execution)
                        self.dedup.release(execution)
                    # else: the running worker sees .cancel and stops.
            return True

    def queued_count(self) -> int:
        with self._condition:
            return len(self._queue)

    def stats(self) -> dict:
        with self._condition:
            counters = {
                "accepted": self.accepted,
                "rejected": dict(self.rejected),
                "cancelled": self.cancelled,
                "queued": len(self._queue),
                "running": self._inflight,
                "max_queued": self.max_queued,
                "max_inflight": self.max_inflight,
                "max_trials": self.max_trials,
                "campaigns_executed": self.campaigns_executed,
                "trials_executed": self.trials_executed,
            }
            resolution = {
                requested: dict(used)
                for requested, used in self.engine_resolution.items()
            }
        stats = self.engine_stats
        return {
            "admission": counters,
            "dedup": self.dedup.stats(),
            "engine_resolution": resolution,
            "jobs": self.table.counts(),
            "engine": {
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "modes_synthesized": stats.modes_synthesized,
                "solver_runs": stats.solver_runs,
                "total_time": stats.total_time,
            },
        }

    # -- execution -------------------------------------------------------
    def _execution_state(self, execution: Execution) -> str:
        for job_id in execution.active_jobs():
            job = self.table.get(job_id)
            if job is not None:
                return job["state"]
        return "queued"

    def _worker(self) -> None:
        while True:
            with self._condition:
                while True:
                    if self._queue and self._inflight < self.max_inflight:
                        execution = self._queue.popleft()
                        self._inflight += 1
                        break
                    if self._stopping and not self._queue:
                        return
                    self._condition.wait(0.2)
            try:
                if execution.cancel.is_set():
                    self.dedup.release(execution)
                    continue
                self._run_execution(execution)
            except Exception as exc:  # defensive: a worker must survive
                self._fail_execution(execution, f"internal error: {exc}")
            finally:
                self.dedup.release(execution)
                with self._condition:
                    self._inflight -= 1
                    self._condition.notify_all()

    def _transition_all(self, execution: Execution, state: str, **detail) -> None:
        for job_id in execution.active_jobs():
            job = self.table.get(job_id)
            if job is not None and job["state"] not in TERMINAL:
                self.table.transition(job_id, state, **detail)

    def _progress_all(self, execution: Execution, **detail) -> None:
        for job_id in execution.active_jobs():
            try:
                self.table.progress(job_id, **detail)
            except KeyError:
                pass

    def _fail_execution(self, execution: Execution, error: str) -> None:
        self._transition_all(execution, "failed", error=error)

    def _run_execution(self, execution: Execution) -> None:
        scenario = execution.scenario
        seeds = execution.seeds
        started = time.perf_counter()
        self._transition_all(execution, "synthesizing")

        # Phase 1 — synthesis (serialized: exact cache/engine counters,
        # and the solver is CPU-bound anyway).
        with self._synth_lock:
            try:
                schedules, reports, _ = synthesize_scenarios(
                    [scenario],
                    jobs=self.synth_jobs,
                    cache=self.cache,
                    stats=self.engine_stats,
                )
            except InfeasibleError as exc:
                error = f"infeasible: {exc}"
                record = _result_record(
                    scenario, seeds, None, 0.0, 0,
                    time.perf_counter() - started, error=error,
                )
                self.store.put(execution.key, record)
                self._fail_execution(execution, error)
                return
        by_mode = schedules[scenario.name]
        mode_reports = reports[scenario.name]
        if not all(report.ok for report in mode_reports.values()):
            error = _failure_text(mode_reports)
            record = _result_record(
                scenario, seeds, None, 0.0, 0,
                time.perf_counter() - started, error=error,
            )
            self.store.put(execution.key, record)
            self._fail_execution(execution, error)
            return

        total_latency = sum(s.total_latency for s in by_mode.values())
        rounds = sum(s.num_rounds for s in by_mode.values())

        if scenario.simulation is None:
            record = _result_record(
                scenario, seeds, None, total_latency, rounds,
                time.perf_counter() - started,
            )
            self.store.put(execution.key, record)
            self._transition_all(
                execution, "done", result=record, cached=False
            )
            return

        # Phase 2 — trials, in cancellable batches over the shared pool.
        if execution.cancel.is_set():
            return
        self._transition_all(execution, "simulating", trials_total=len(seeds))
        context_data = scenario_context(scenario, by_mode)
        context_key = candidate_key(scenario, {"context": "trial"}, [])
        results: List[TrialResult] = []
        engine_used: Optional[str] = None
        with timed_span("simulate"):
            for lo in range(0, len(seeds), self.trial_batch):
                if execution.cancel.is_set():
                    return  # every attached job already cancelled itself
                batch = [
                    (lo + offset, seed)
                    for offset, seed
                    in enumerate(seeds[lo:lo + self.trial_batch])
                ]
                task = {
                    "scenario": scenario.name,
                    "point": 0,
                    "trials": batch,
                    "loss": _point_loss(scenario, {}, seed=None),
                    "engine": execution.engine,
                }
                outcome = self.pool.run(context_key, context_data, [task])[0]
                engine_used = outcome.get("engine_used", engine_used)
                results.extend(
                    TrialResult.from_dict(payload)
                    for payload in outcome["results"]
                )
                with self._condition:
                    self.trials_executed += len(batch)
                self._progress_all(
                    execution,
                    trials_done=len(results),
                    trials_total=len(seeds),
                    engine_used=engine_used,
                )

        with timed_span("aggregate"):
            stats = CampaignStats.aggregate(results)
        record = _result_record(
            scenario, seeds, stats, total_latency, rounds,
            time.perf_counter() - started,
        )
        record["engine_used"] = engine_used
        self.store.put(execution.key, record)
        requested = execution.engine
        used = engine_used or requested
        with self._condition:
            self.campaigns_executed += 1
            by_used = self.engine_resolution.setdefault(requested, {})
            by_used[used] = by_used.get(used, 0) + 1
        if used != requested:
            emit(
                "engine.fallback", scenario=scenario.name,
                requested=requested, used=used,
            )
        self._transition_all(
            execution, "done", result=record, cached=False,
            trials_done=len(results), trials_total=len(seeds),
        )
