"""Service assembly: shared resources, lifecycle, signals.

One :class:`ServiceApp` owns exactly one of each shared resource and
threads them through every request:

* a :class:`~repro.engine.cache.ScheduleCache` — the *second* request
  for a known scenario pays a file read, not a solver run;
* a :class:`~repro.dse.store.ResultStore` — completed work (from this
  process, a previous incarnation, or a ``scenario explore`` run
  against the same file) answers submissions without executing
  anything, which is the restart-resume story: SIGTERM drains, the
  process exits 0, the next start re-opens the same store and
  re-submitted jobs go ``queued -> done`` immediately;
* a :class:`~repro.engine.trials.ResidentPool` — trial workers stay
  resident across jobs, with per-scenario contexts cached worker-side.

Signal handling: SIGTERM and SIGINT both trigger a graceful drain
(stop admitting -> finish queued and running jobs -> close pool,
store, listener -> return from :meth:`ServiceApp.run`).  Handlers are
only installed by :meth:`run` (signals work in main threads only);
embedding code — the tests — calls :meth:`start` / :meth:`shutdown`
directly.
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional

from ..dse.store import open_store
from ..engine.cache import ScheduleCache
from ..engine.trials import ResidentPool
from ..obs.events import RunLog, emit, set_run_log
from ..obs.metrics import REGISTRY
from ..runtime.trial import ENGINES, build_context, execute_trial_batch
from .http import ServiceHTTPServer
from .jobs import JobTable
from .queue import JobQueue


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune.

    Attributes:
        host / port: Listen address; port 0 picks a free port (the
            chosen one is printed on the ``listening on`` line).
        workers: Queue worker threads (concurrent executions).
        jobs: Trial worker *processes* in the resident pool; 1 runs
            trials in the worker thread itself.
        store: Result-store path (``.sqlite`` / ``.jsonl``); ``None``
            keeps results in memory only — no restart-resume.
        cache_dir: Schedule-cache directory; ``None`` disables the
            cross-request schedule cache.
        cache_entries / cache_bytes: LRU bounds for the schedule cache.
        max_queued / max_inflight / max_trials: Admission knobs (see
            :class:`~repro.serve.queue.JobQueue`).
        trial_batch: Trials per execution batch — the progress-event
            and cancellation granularity.
        engine: Default trial engine for submissions that name none.
        history: Terminal jobs kept for ``GET /jobs``.
        drain_timeout: Seconds :meth:`ServiceApp.shutdown` waits for
            workers to finish before giving up (``None``: forever).
        log_dir: Run-log directory; ``None`` (the default) disables
            structured event logging for the daemon's lifetime.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    jobs: int = 1
    store: Optional[str] = None
    cache_dir: Optional[str] = None
    cache_entries: Optional[int] = None
    cache_bytes: Optional[int] = None
    max_queued: int = 64
    max_inflight: Optional[int] = None
    max_trials: int = 100_000
    trial_batch: int = 16
    engine: str = "fast"
    history: int = 1024
    drain_timeout: Optional[float] = 60.0
    log_dir: Optional[str] = None
    log_stream: Optional[IO[str]] = field(default=None, repr=False)

    def validate(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {', '.join(ENGINES)}, "
                f"got {self.engine!r}"
            )
        for name in ("workers", "jobs", "max_queued", "max_trials",
                     "trial_batch", "history"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be an integer >= 1, got {value!r}")


class ServiceApp:
    """The assembled daemon: table + queue + shared resources + HTTP."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.config.validate()
        self.started = time.time()
        self._log_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = False
        self._shutdown_complete = threading.Event()

        self.table = JobTable(history=self.config.history)
        self.store = open_store(self.config.store)
        self.cache = (
            ScheduleCache(
                Path(self.config.cache_dir),
                max_entries=self.config.cache_entries,
                max_bytes=self.config.cache_bytes,
            )
            if self.config.cache_dir is not None
            else None
        )
        self.pool = ResidentPool(
            build_context, execute_trial_batch, jobs=self.config.jobs
        )
        self.queue = JobQueue(
            self.table,
            self.store,
            self.pool,
            cache=self.cache,
            workers=self.config.workers,
            max_queued=self.config.max_queued,
            max_inflight=self.config.max_inflight,
            max_trials=self.config.max_trials,
            trial_batch=self.config.trial_batch,
            engine=self.config.engine,
        )
        self.server: Optional[ServiceHTTPServer] = None
        # Structured run log, scoped to the daemon's lifetime: opened
        # here, restored (and closed) at the end of shutdown().
        self.run_log: Optional[RunLog] = None
        self._previous_log: Optional[RunLog] = None
        if self.config.log_dir is not None:
            self.run_log = RunLog(self.config.log_dir)
            self._previous_log = set_run_log(self.run_log)

    # -- observability ---------------------------------------------------
    @property
    def stopping(self) -> bool:
        return self._stop_event.is_set()

    def log(self, message: str) -> None:
        stream = self.config.log_stream
        if stream is None:
            stream = sys.stderr
        stamp = time.strftime("%Y-%m-%d %H:%M:%S")
        with self._log_lock:
            try:
                stream.write(f"[{stamp}] {message}\n")
                stream.flush()
            except ValueError:  # stream already closed during teardown
                pass

    def stats(self) -> dict:
        payload = self.queue.stats()
        payload["service"] = {
            "uptime": time.time() - self.started,
            "draining": self.stopping,
            "workers": self.config.workers,
            "trial_jobs": self.config.jobs,
            "engine": self.config.engine,
        }
        payload["store"] = {
            "path": str(self.store.path) if self.store.path else None,
            "records": len(self.store),
        }
        payload["cache"] = self.cache.usage() if self.cache is not None else None
        return payload

    def metrics(self) -> dict:
        """The ``GET /metrics`` payload: stats plus the obs registry.

        A superset of :meth:`stats` — everything ``/stats`` reports,
        the process-wide metrics registry (counters, gauges, and the
        phase-timing ``span.*`` timers), and the run-log location.
        """
        payload = self.stats()
        payload["schema"] = "repro-metrics/1"
        payload["registry"] = REGISTRY.snapshot()
        payload["run_log"] = (
            str(self.run_log.path) if self.run_log is not None else None
        )
        return payload

    @property
    def address(self) -> "tuple[str, int]":
        if self.server is None:
            raise RuntimeError("service is not listening (call start first)")
        host, port = self.server.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ServiceApp":
        """Bind the listener and start workers; returns self."""
        self.queue.start()
        self.server = ServiceHTTPServer(
            (self.config.host, self.config.port), self
        )
        self._listener = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-listener",
            daemon=True,
        )
        self._listener.start()
        self.log(
            f"listening on {self.url} "
            f"(workers={self.config.workers}, jobs={self.config.jobs}, "
            f"store={self.config.store or 'memory'})"
        )
        emit(
            "serve.start", url=self.url, workers=self.config.workers,
            jobs=self.config.jobs, store=self.config.store,
        )
        if self.run_log is not None:
            self.log(f"run log: {self.run_log.path}")
        return self

    def shutdown(self) -> None:
        """Graceful drain: reject new work, finish admitted work, exit.

        Idempotent and thread-safe — the HTTP handler, a signal
        handler, and an ``atexit`` path may all race into it.
        """
        with self._shutdown_lock:
            if self._shutdown_done:
                # A concurrent caller is (or was) draining; wait for it
                # so "shutdown returned" always means "fully stopped".
                self._shutdown_complete.wait()
                return
            self._shutdown_done = True
        self._stop_event.set()
        self.log("draining: admissions closed")
        drained = self.queue.drain(timeout=self.config.drain_timeout)
        self.log(
            "drain complete" if drained
            else f"drain timed out after {self.config.drain_timeout}s"
        )
        if self.server is not None:
            self.server.shutdown()
            self.server.server_close()
        self.pool.close()
        self.store.close()
        emit("serve.stop", drained=drained, uptime=time.time() - self.started)
        if self.run_log is not None:
            set_run_log(self._previous_log)
            self.run_log.close()
        self.log("bye")
        self._shutdown_complete.set()

    def run(self) -> int:
        """Start, install signal handlers, block until shutdown.

        Returns the process exit code: 0 after a drain (including one
        triggered by SIGTERM or ``POST /shutdown``), 130 for SIGINT —
        the interactive-interrupt convention.
        """
        exit_code = {"value": 0}
        finished = threading.Event()

        def _terminate(signum, _frame) -> None:
            if signum == signal.SIGINT:
                exit_code["value"] = 130
            self.log(f"signal {signal.Signals(signum).name}: shutting down")
            # Drain from a helper thread: the handler must return fast,
            # and shutdown joins worker threads.
            threading.Thread(
                target=self._finish, args=(finished,), daemon=True
            ).start()

        self.start()
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _terminate)
        try:
            while not finished.is_set():
                if self._stop_event.is_set():
                    # POST /shutdown path: drain already running in its
                    # own thread; wait for it to finish.
                    self._finish(finished)
                    break
                finished.wait(0.2)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        return exit_code["value"]

    def _finish(self, finished: threading.Event) -> None:
        try:
            self.shutdown()
        finally:
            finished.set()

    # -- embedding sugar -------------------------------------------------
    def __enter__(self) -> "ServiceApp":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
