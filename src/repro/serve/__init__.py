"""``repro.serve`` — the toolkit as a long-running service.

Everything below this package turns one-shot batch tools (synthesize,
campaign, explore) into a multi-tenant daemon: clients POST Scenario
JSON to an HTTP API and get back job ids; a worker pool drains an
admission-controlled queue through the existing synthesis and
Monte-Carlo fast paths; identical problems are deduplicated **across
requests** (in-flight attachment plus a shared persistent result
store); and one ScheduleCache + ResultStore + ResidentPool stay
resident across every request, so the second client ever to ask a
question pays file-read prices, not solver prices.

Module map (each is documented in :doc:`docs/SERVICE.md`):

* :mod:`repro.serve.jobs`  — the JobTable: dict job records moving
  through an explicit state machine with redundant indices;
* :mod:`repro.serve.dedup` — content-addressed request identity and
  in-flight execution sharing;
* :mod:`repro.serve.queue` — admission control and the worker threads
  that execute jobs;
* :mod:`repro.serve.http`  — the stdlib HTTP/JSON API (incl. NDJSON
  event streaming);
* :mod:`repro.serve.app`   — wiring, lifecycle, signals;
* :mod:`repro.serve.client`— a small stdlib client (used by
  ``repro scenario submit``).
"""

from .app import ServiceApp, ServiceConfig
from .client import ServiceClient, ServiceError, ServiceUnavailable
from .dedup import job_key
from .jobs import STATES, JobTable, StateError
from .queue import AdmissionError, JobQueue

__all__ = [
    "AdmissionError",
    "JobQueue",
    "JobTable",
    "STATES",
    "ServiceApp",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailable",
    "StateError",
    "job_key",
]
