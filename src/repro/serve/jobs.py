"""The job table: plain-dict records, an explicit state machine, indices.

The design follows the dask/distributed scheduler-state notes
(SNIPPETS.md Snippet 3): every job is a **plain Python dict** tracked
in one table, and the table keeps *redundant* reverse indices — by
state, by content key, by client — so the hot service questions
("how many jobs are queued?", "is an identical job already in
flight?", "what is client X running?") are O(1) dictionary lookups,
not scans.  Index maintenance is cheap and happens in exactly one
place, :meth:`JobTable.transition`.

The state machine::

    queued ──> synthesizing ──> simulating ──> done
       │             │               │
       └─────────────┴───────────────┴──────> failed / cancelled

with two legal shortcuts: ``queued -> done`` (the answer was already
in the result store — nothing to execute) and ``synthesizing -> done``
(a synthesis-only job with no simulation phase).  Transitions are
validated; anything else raises :class:`StateError`, so an index can
never silently drift from the records.

Every transition (and every progress update) appends one **event** to
the job record — a monotonically numbered ``{"seq", "time", "state",
...}`` dict.  The HTTP layer streams these as NDJSON; because events
are only ever appended under the table lock, a consumer always sees
them in state-machine order.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional, Set

from ..obs.events import emit

#: All job states, in lifecycle order.
STATES = (
    "queued",
    "synthesizing",
    "simulating",
    "done",
    "failed",
    "cancelled",
)

#: States a job can never leave.
TERMINAL = frozenset({"done", "failed", "cancelled"})

#: Legal ``state -> {next state}`` moves (see the module docstring).
TRANSITIONS: Dict[str, Set[str]] = {
    "queued": {"synthesizing", "simulating", "done", "failed", "cancelled"},
    "synthesizing": {"simulating", "done", "failed", "cancelled"},
    "simulating": {"done", "failed", "cancelled"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}

#: Position of each state in the lifecycle; streams must never move
#: backwards along this order (asserted by the service tests).
STATE_ORDER = {state: index for index, state in enumerate(STATES)}


class StateError(RuntimeError):
    """Raised on an illegal job state transition."""


def _new_id(counter=itertools.count(1)) -> str:
    return f"job-{next(counter)}"


class JobTable:
    """All jobs the service knows about, with O(1) indices.

    Args:
        history: Terminal jobs retained for inspection.  Once more than
            this many jobs are terminal, the oldest are forgotten —
            a resident daemon must not grow its table unboundedly.
            Active (non-terminal) jobs are never pruned.
    """

    def __init__(self, history: int = 1024) -> None:
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history!r}")
        self.history = history
        self.jobs: Dict[str, dict] = {}
        # Redundant indices, maintained exclusively by create/transition.
        self.by_state: Dict[str, Set[str]] = {state: set() for state in STATES}
        self.by_key: Dict[str, Set[str]] = {}
        self.by_client: Dict[str, Set[str]] = {}
        self._terminal_order: List[str] = []
        self.lock = threading.RLock()
        #: Notified on every appended event; event streamers wait here.
        self.changed = threading.Condition(self.lock)

    # -- record lifecycle ------------------------------------------------
    def create(
        self,
        scenario: str,
        key: str,
        client: str = "anonymous",
        trials: int = 0,
        engine: str = "fast",
    ) -> dict:
        """Add one queued job record; returns the (live) record dict."""
        with self.lock:
            job_id = _new_id()
            job = {
                "id": job_id,
                "scenario": scenario,
                "key": key,
                "client": client,
                "state": "queued",
                "trials": trials,
                "trials_done": 0,
                "engine": engine,
                "cached": False,
                "error": None,
                "result": None,
                "created": time.time(),
                "finished": None,
                "events": [],
            }
            self.jobs[job_id] = job
            self.by_state["queued"].add(job_id)
            self.by_key.setdefault(key, set()).add(job_id)
            self.by_client.setdefault(client, set()).add(job_id)
            self._append_event(job, {"state": "queued"})
            return job

    def transition(self, job_id: str, state: str, **detail) -> dict:
        """Move a job to ``state``; validates, reindexes, appends an event.

        ``detail`` keys are merged into the event (and ``error`` /
        ``result`` / ``cached`` / ``trials_done`` also into the record).
        """
        if state not in STATE_ORDER:
            raise StateError(f"unknown state {state!r}")
        with self.lock:
            job = self._get(job_id)
            current = job["state"]
            if state not in TRANSITIONS[current]:
                raise StateError(
                    f"job {job_id}: illegal transition {current!r} -> {state!r}"
                )
            self.by_state[current].discard(job_id)
            self.by_state[state].add(job_id)
            job["state"] = state
            for field in ("error", "cached", "trials_done"):
                if field in detail:
                    job[field] = detail[field]
            if "result" in detail:
                job["result"] = detail.pop("result")
            if state in TERMINAL:
                job["finished"] = time.time()
                self._terminal_order.append(job_id)
            self._append_event(job, {"state": state, **detail})
            if state in TERMINAL:
                self._prune()
            return job

    def progress(self, job_id: str, **detail) -> dict:
        """Append a progress event without changing state.

        Used for per-batch trial progress while ``simulating``; the
        event repeats the current state so streamed event sequences
        stay monotone in :data:`STATE_ORDER`.
        """
        with self.lock:
            job = self._get(job_id)
            if job["state"] in TERMINAL:
                # A batch may complete concurrently with a cancel; the
                # terminal event has already been emitted — drop this.
                return job
            if "trials_done" in detail:
                job["trials_done"] = detail["trials_done"]
            self._append_event(job, {"state": job["state"], **detail})
            return job

    # -- queries ---------------------------------------------------------
    def get(self, job_id: str) -> Optional[dict]:
        with self.lock:
            return self.jobs.get(job_id)

    def in_flight(self, key: str) -> List[dict]:
        """Non-terminal jobs under a content key (dedup attachment)."""
        with self.lock:
            return [
                self.jobs[job_id]
                for job_id in self.by_key.get(key, ())
                if self.jobs[job_id]["state"] not in TERMINAL
            ]

    def counts(self) -> Dict[str, int]:
        """``state -> number of jobs`` (every state present)."""
        with self.lock:
            return {state: len(ids) for state, ids in self.by_state.items()}

    def list(
        self,
        state: Optional[str] = None,
        client: Optional[str] = None,
    ) -> List[dict]:
        """Job records, newest first, optionally filtered by index."""
        with self.lock:
            ids = set(self.jobs)
            if state is not None:
                if state not in self.by_state:
                    raise StateError(f"unknown state {state!r}")
                ids &= self.by_state[state]
            if client is not None:
                ids &= self.by_client.get(client, set())
            return sorted(
                (self.jobs[job_id] for job_id in ids),
                key=lambda job: job["created"],
                reverse=True,
            )

    def __len__(self) -> int:
        with self.lock:
            return len(self.jobs)

    # -- event streaming -------------------------------------------------
    def events_since(self, job_id: str, seq: int) -> "tuple[List[dict], bool]":
        """``(events with .seq > seq, job is terminal)`` — one locked read."""
        with self.lock:
            job = self._get(job_id)
            fresh = [e for e in job["events"] if e["seq"] > seq]
            return fresh, job["state"] in TERMINAL

    def wait_for_events(
        self, job_id: str, seq: int, timeout: float = 1.0
    ) -> "tuple[List[dict], bool]":
        """Like :meth:`events_since`, but blocks up to ``timeout`` for news."""
        with self.changed:
            fresh, terminal = self.events_since(job_id, seq)
            if fresh or terminal:
                return fresh, terminal
            self.changed.wait(timeout)
            return self.events_since(job_id, seq)

    # -- internals -------------------------------------------------------
    def _get(self, job_id: str) -> dict:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def _append_event(self, job: dict, event: dict) -> None:
        event = {
            "seq": len(job["events"]),
            "time": time.time(),
            "job": job["id"],
            **event,
        }
        job["events"].append(event)
        # Mirror the per-job event stream into the run log (when one is
        # active) — the service's job history becomes obs events.
        emit("job", **event)
        self.changed.notify_all()

    def _prune(self) -> None:
        while len(self._terminal_order) > self.history:
            job_id = self._terminal_order.pop(0)
            job = self.jobs.pop(job_id, None)
            if job is None:
                continue
            self.by_state[job["state"]].discard(job_id)
            self.by_key.get(job["key"], set()).discard(job_id)
            self.by_client.get(job["client"], set()).discard(job_id)


def job_view(job: dict) -> dict:
    """The public JSON image of one job record (no live event list)."""
    return {
        "id": job["id"],
        "scenario": job["scenario"],
        "key": job["key"],
        "client": job["client"],
        "state": job["state"],
        "trials": job["trials"],
        "trials_done": job["trials_done"],
        "engine": job["engine"],
        "cached": job["cached"],
        "error": job["error"],
        "result": job["result"],
        "created": job["created"],
        "finished": job["finished"],
        "events": len(job["events"]),
    }
