"""Cross-request dedup: one execution per distinct problem, ever.

Identity is **content-addressed**: a submission's key is the same
SHA-256 the design-space explorer uses
(:func:`repro.dse.store.candidate_key` over the canonical scenario
image + resolved trial seeds), so

* two clients POSTing the same Scenario JSON — byte-different files,
  identical content — get the same key;
* a result computed by ``scenario explore`` against the same store is
  served to a service client without executing anything, and vice
  versa (the record schemas are shared, see :data:`repro.dse.store
  .STORE_SCHEMA`);
* keys survive restarts, which is the whole restart-resume story: the
  daemon comes back up, clients re-submit, the store answers.

Two dedup layers, checked in order at admission:

1. **Completed work** — the shared :class:`~repro.dse.store.ResultStore`
   already has the key: the job goes ``queued -> done`` immediately.
2. **In-flight work** — an :class:`Execution` with the key is queued or
   running: the new job *attaches* to it and mirrors its transitions;
   the campaign still runs exactly once.

Cancellation interacts with attachment the only safe way: each job
cancels individually, and the underlying execution is only told to
stop when **no** attached job still wants the answer.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ..api.scenario import Scenario
from ..dse.store import candidate_key


def job_key(scenario: Scenario, seeds: Sequence[Optional[int]]) -> str:
    """The content identity of one service submission.

    Equal to :func:`repro.dse.store.candidate_key` with an empty axis
    assignment — service jobs and base-scenario exploration candidates
    share identity, so their stores interoperate.
    """
    return candidate_key(scenario, {}, seeds)


class Execution:
    """One underlying run, shared by every job attached to it."""

    def __init__(
        self,
        key: str,
        scenario: Scenario,
        seeds: List[Optional[int]],
        engine: str,
        job_id: str,
    ) -> None:
        self.key = key
        self.scenario = scenario
        self.seeds = seeds
        self.engine = engine
        self.job_ids: List[str] = [job_id]
        self._active = {job_id}
        self.cancel = threading.Event()
        self.lock = threading.Lock()

    def attach(self, job_id: str) -> None:
        with self.lock:
            self.job_ids.append(job_id)
            self._active.add(job_id)

    def detach(self, job_id: str) -> bool:
        """Drop one job's interest; returns True when none remains.

        The last detach sets :attr:`cancel`, which the executing worker
        polls between trial batches — an execution nobody is waiting
        for stops within one batch.
        """
        with self.lock:
            self._active.discard(job_id)
            if not self._active:
                self.cancel.set()
                return True
            return False

    def active_jobs(self) -> List[str]:
        with self.lock:
            return [jid for jid in self.job_ids if jid in self._active]


class DedupIndex:
    """The in-flight ``key -> Execution`` map, plus traffic counters."""

    def __init__(self) -> None:
        self._inflight: Dict[str, Execution] = {}
        self._lock = threading.Lock()
        # Counters are part of the service's /stats contract.
        self.store_hits = 0
        self.attached = 0
        self.executions = 0

    def lookup(self, key: str) -> Optional[Execution]:
        with self._lock:
            return self._inflight.get(key)

    def register(self, execution: Execution) -> None:
        with self._lock:
            self._inflight[execution.key] = execution
            self.executions += 1

    def release(self, execution: Execution) -> None:
        """Remove a finished/cancelled execution from the in-flight map."""
        with self._lock:
            if self._inflight.get(execution.key) is execution:
                del self._inflight[execution.key]

    def count_store_hit(self) -> None:
        with self._lock:
            self.store_hits += 1

    def count_attach(self) -> None:
        with self._lock:
            self.attached += 1

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    def stats(self) -> dict:
        with self._lock:
            return {
                "in_flight": len(self._inflight),
                "executions": self.executions,
                "attached": self.attached,
                "store_hits": self.store_hits,
            }
