"""A small stdlib client for the service API.

Wraps :mod:`urllib.request` — the same no-dependency constraint as the
server — and is what ``repro scenario submit`` and the tests speak.
Every method raises :class:`ServiceError` with the server's JSON error
body on a 4xx/5xx, or :class:`ServiceUnavailable` when the daemon
cannot be reached at all (connection refused / reset), so callers can
distinguish "bad request" from "no service running".
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Iterator, List, Optional, Sequence

from ..api.scenario import Scenario


class ServiceError(RuntimeError):
    """A 4xx/5xx answer from the service; carries the JSON error body."""

    def __init__(self, status: int, error: str, reason: str) -> None:
        super().__init__(f"HTTP {status} [{error}]: {reason}")
        self.status = status
        self.error = error
        self.reason = reason


class ServiceUnavailable(ConnectionError):
    """The daemon did not answer at all (refused / reset / timeout)."""


class ServiceClient:
    """Talk to one ``repro serve`` daemon.

    Args:
        base_url: ``http://host:port`` of the daemon.
        timeout: Socket timeout per request, seconds.  The event stream
            uses it per *read*, not for the whole stream.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except Exception:
                body = {}
            raise ServiceError(
                exc.code,
                body.get("error", "http_error"),
                body.get("reason", str(exc)),
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailable(
                f"service at {self.base_url} unreachable: {exc.reason}"
            ) from None
        except (ConnectionError, socket.timeout) as exc:
            raise ServiceUnavailable(
                f"service at {self.base_url} unreachable: {exc}"
            ) from None

    # -- API -------------------------------------------------------------
    def submit(
        self,
        scenario: Scenario,
        trials: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
        engine: Optional[str] = None,
        client: Optional[str] = None,
    ) -> dict:
        payload: dict = {"scenario": scenario.to_dict()}
        if trials is not None:
            payload["trials"] = trials
        if seeds is not None:
            payload["seeds"] = list(seeds)
        if engine is not None:
            payload["engine"] = engine
        if client is not None:
            payload["client"] = client
        return self._request("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(
        self, state: Optional[str] = None, client: Optional[str] = None
    ) -> List[dict]:
        query = []
        if state is not None:
            query.append(f"state={state}")
        if client is not None:
            query.append(f"client={client}")
        suffix = f"?{'&'.join(query)}" if query else ""
        return self._request("GET", f"/jobs{suffix}")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream a job's NDJSON events until its terminal event.

        Yields each event dict as the daemon emits it; the iterator
        ends when the job reaches a terminal state.
        """
        url = f"{self.base_url}/jobs/{job_id}/events"
        request = urllib.request.Request(
            url, headers={"Accept": "application/x-ndjson"}
        )
        try:
            reply = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except Exception:
                body = {}
            raise ServiceError(
                exc.code,
                body.get("error", "http_error"),
                body.get("reason", str(exc)),
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailable(
                f"service at {self.base_url} unreachable: {exc.reason}"
            ) from None
        with reply:
            for raw in reply:
                line = raw.decode("utf-8").strip()
                if line:
                    yield json.loads(line)

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.1
    ) -> dict:
        """Poll until the job is terminal; returns the final record."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']!r} after {timeout}s"
                )
            time.sleep(poll)
