"""Batched task execution over the engine's process pool.

The synthesis side of the engine parallelizes *ILP iterations*
(:mod:`repro.engine.parallel`); this module is the equivalent for
*evaluation work*: thousands of small, independent tasks (Monte-Carlo
trials) that share a large, expensive context (deployments, schedules,
topology).  Shipping the context with every task would drown the pool
in serialization, so :class:`TrialPool` uses the executor's
initializer protocol instead:

* contexts are serialized **once** and rebuilt lazily inside each
  worker on first use (`build_context`);
* tasks are submitted in **chunks**, amortizing the per-future
  overhead over many trials;
* ``jobs=1`` bypasses the executor entirely and runs everything
  in-process through the very same code path, which keeps single-
  process and pooled results bit-identical and makes the pool easy to
  reason about in tests.

The pool is deliberately generic — it knows nothing about simulation.
Callers hand it two module-level functions (picklable by reference):
``build_context(context_data) -> context`` and ``run_task(context,
task) -> result``.  :mod:`repro.mc.campaign` is the main customer.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# Per-worker state, set by the pool initializer.  A worker process
# serves exactly one TrialPool, so module globals are safe here (the
# same pattern the stdlib pool initializer API is designed around).
_BUILD_CONTEXT: Optional[Callable] = None
_RUN_TASK: Optional[Callable] = None
_CONTEXT_DATA: Dict[str, dict] = {}
_CONTEXTS: Dict[str, object] = {}


def _pool_initializer(build_context, run_task, context_data) -> None:
    global _BUILD_CONTEXT, _RUN_TASK, _CONTEXT_DATA, _CONTEXTS
    _BUILD_CONTEXT = build_context
    _RUN_TASK = run_task
    _CONTEXT_DATA = context_data
    _CONTEXTS = {}


def _context_for(key: str):
    if key not in _CONTEXTS:
        _CONTEXTS[key] = _BUILD_CONTEXT(_CONTEXT_DATA[key])
    return _CONTEXTS[key]


def _run_chunk(chunk: Sequence[Tuple[str, dict]]) -> List[dict]:
    """Worker entry point: run one chunk of ``(context_key, task)``."""
    return [_RUN_TASK(_context_for(key), task) for key, task in chunk]


def default_chunk_size(num_tasks: int, jobs: int) -> int:
    """Tasks per submitted future when the caller does not pin one.

    Aims at ~4 futures per worker — half as many futures (and half
    the submission/pickling overhead) as the previous 8-per-worker
    split, while still leaving enough slack for stragglers to
    rebalance.  Small batches (``num_tasks < 4 * jobs``, which covers
    every ``tasks < 2 * jobs`` campaign) degrade to one task per
    future, so every worker gets work.
    """
    return max(1, math.ceil(num_tasks / (4 * jobs)))


class TrialPool:
    """Run many context-sharing tasks over one process pool.

    Args:
        build_context: Module-level function turning a JSON context
            dict into the worker-side shared context.
        run_task: Module-level function executing one task against a
            context, returning a JSON-compatible result.
        contexts: ``key -> context data`` for every context tasks may
            reference.
        jobs: Worker processes; ``1`` runs in-process (no executor).
        chunk_size: Tasks per submitted future; defaults to
            :func:`default_chunk_size` (an even split at ~4 futures
            per worker, degrading to one task per future for small
            batches so no worker idles).
    """

    def __init__(
        self,
        build_context: Callable,
        run_task: Callable,
        contexts: Dict[str, dict],
        jobs: int = 1,
        chunk_size: Optional[int] = None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ValueError(
                f"jobs must be an integer >= 1, got {jobs!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        self.build_context = build_context
        self.run_task = run_task
        self.contexts = dict(contexts)
        self.jobs = jobs
        self.chunk_size = chunk_size

    def map(self, tasks: Sequence[Tuple[str, dict]]) -> List[dict]:
        """Run every ``(context_key, task)``; results in input order."""
        unknown = {key for key, _ in tasks} - set(self.contexts)
        if unknown:
            raise KeyError(f"tasks reference unknown context(s): {sorted(unknown)}")
        if not tasks:
            return []
        if self.jobs == 1:
            local: Dict[str, object] = {}
            results = []
            for key, task in tasks:
                if key not in local:
                    local[key] = self.build_context(self.contexts[key])
                results.append(self.run_task(local[key], task))
            return results

        chunk_size = self.chunk_size or default_chunk_size(
            len(tasks), self.jobs
        )
        chunks = [
            list(tasks[i:i + chunk_size])
            for i in range(0, len(tasks), chunk_size)
        ]
        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_pool_initializer,
            initargs=(self.build_context, self.run_task, self.contexts),
        ) as pool:
            chunk_results = list(pool.map(_run_chunk, chunks))
        return [result for chunk in chunk_results for result in chunk]
