"""Batched task execution over the engine's process pool.

The synthesis side of the engine parallelizes *ILP iterations*
(:mod:`repro.engine.parallel`); this module is the equivalent for
*evaluation work*: thousands of small, independent tasks (Monte-Carlo
trials) that share a large, expensive context (deployments, schedules,
topology).  Shipping the context with every task would drown the pool
in serialization, so :class:`TrialPool` uses the executor's
initializer protocol instead:

* contexts are serialized **once** and rebuilt lazily inside each
  worker on first use (`build_context`);
* tasks are submitted in **chunks**, amortizing the per-future
  overhead over many trials;
* ``jobs=1`` bypasses the executor entirely and runs everything
  in-process through the very same code path, which keeps single-
  process and pooled results bit-identical and makes the pool easy to
  reason about in tests.

The pool is deliberately generic — it knows nothing about simulation.
Callers hand it two module-level functions (picklable by reference):
``build_context(context_data) -> context`` and ``run_task(context,
task) -> result``.  :mod:`repro.mc.campaign` is the main customer.
"""

from __future__ import annotations

import math
import signal
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.events import emit
from ..obs.metrics import REGISTRY, MetricsRegistry

# Per-worker state, set by the pool initializer.  A worker process
# serves exactly one TrialPool, so module globals are safe here (the
# same pattern the stdlib pool initializer API is designed around).
_BUILD_CONTEXT: Optional[Callable] = None
_RUN_TASK: Optional[Callable] = None
_CONTEXT_DATA: Dict[str, dict] = {}
_CONTEXTS: Dict[str, object] = {}


def _ignore_sigint() -> None:
    """Workers leave Ctrl-C to the parent.

    A terminal delivers SIGINT to the whole process group, so without
    this every pool worker would die mid-task printing its own
    traceback.  The parent handles the interrupt (shutting the pool
    down and exiting 130); workers just finish or get terminated.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass


def _pool_initializer(build_context, run_task, context_data) -> None:
    global _BUILD_CONTEXT, _RUN_TASK, _CONTEXT_DATA, _CONTEXTS
    _ignore_sigint()
    _BUILD_CONTEXT = build_context
    _RUN_TASK = run_task
    _CONTEXT_DATA = context_data
    _CONTEXTS = {}


def _context_for(key: str):
    if key not in _CONTEXTS:
        _CONTEXTS[key] = _BUILD_CONTEXT(_CONTEXT_DATA[key])
    return _CONTEXTS[key]


def _run_chunk(chunk: Sequence[Tuple[str, dict]]) -> List[dict]:
    """Worker entry point: run one chunk of ``(context_key, task)``."""
    return [_RUN_TASK(_context_for(key), task) for key, task in chunk]


# Worker state of the resident pool: contexts are NOT fixed at
# initialization (a daemon's scenarios arrive per request), so chunks
# ship the context data and workers cache the built context under its
# content key, with a bound so a long-lived worker cannot grow forever.
_RESIDENT_LIMIT: int = 32
_RESIDENT_CONTEXTS: "OrderedDict[str, object]" = OrderedDict()

# Worker-local metrics: context-cache traffic accumulates here and each
# chunk result carries the delta back to the parent, which folds it
# into its own REGISTRY (the obs snapshot/merge protocol — workers are
# separate processes, so counters cannot be shared directly).
_RESIDENT_METRICS = MetricsRegistry()


def _resident_initializer(build_context, run_task, max_contexts) -> None:
    global _BUILD_CONTEXT, _RUN_TASK, _RESIDENT_LIMIT, _RESIDENT_CONTEXTS
    _ignore_sigint()
    _BUILD_CONTEXT = build_context
    _RUN_TASK = run_task
    _RESIDENT_LIMIT = max_contexts
    _RESIDENT_CONTEXTS = OrderedDict()
    _RESIDENT_METRICS.reset()


def _resident_context(
    cache: "OrderedDict[str, object]",
    build_context: Callable,
    key: str,
    data: dict,
    limit: int,
    metrics: Optional[MetricsRegistry] = None,
):
    if key in cache:
        cache.move_to_end(key)
        if metrics is not None:
            metrics.incr("pool.context_hits")
        return cache[key]
    context = build_context(data)
    cache[key] = context
    if metrics is not None:
        metrics.incr("pool.context_builds")
    while len(cache) > limit:
        cache.popitem(last=False)
        if metrics is not None:
            metrics.incr("pool.context_evictions")
    return context


def _resident_chunk(payload: Tuple[str, dict, List[dict]]) -> dict:
    """Worker entry point of :class:`ResidentPool` chunks.

    Returns the task results plus the worker's metrics delta since its
    last chunk, so the parent's registry sees context-cache traffic.
    """
    key, data, tasks = payload
    context = _resident_context(
        _RESIDENT_CONTEXTS, _BUILD_CONTEXT, key, data, _RESIDENT_LIMIT,
        metrics=_RESIDENT_METRICS,
    )
    results = [_RUN_TASK(context, task) for task in tasks]
    return {"results": results, "metrics": _RESIDENT_METRICS.flush_delta()}


def default_chunk_size(num_tasks: int, jobs: int) -> int:
    """Tasks per submitted future when the caller does not pin one.

    Aims at ~4 futures per worker — half as many futures (and half
    the submission/pickling overhead) as the previous 8-per-worker
    split, while still leaving enough slack for stragglers to
    rebalance.  Small batches (``num_tasks < 4 * jobs``, which covers
    every ``tasks < 2 * jobs`` campaign) degrade to one task per
    future, so every worker gets work.
    """
    return max(1, math.ceil(num_tasks / (4 * jobs)))


class TrialPool:
    """Run many context-sharing tasks over one process pool.

    Args:
        build_context: Module-level function turning a JSON context
            dict into the worker-side shared context.
        run_task: Module-level function executing one task against a
            context, returning a JSON-compatible result.
        contexts: ``key -> context data`` for every context tasks may
            reference.
        jobs: Worker processes; ``1`` runs in-process (no executor).
        chunk_size: Tasks per submitted future; defaults to
            :func:`default_chunk_size` (an even split at ~4 futures
            per worker, degrading to one task per future for small
            batches so no worker idles).
    """

    def __init__(
        self,
        build_context: Callable,
        run_task: Callable,
        contexts: Dict[str, dict],
        jobs: int = 1,
        chunk_size: Optional[int] = None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ValueError(
                f"jobs must be an integer >= 1, got {jobs!r}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        self.build_context = build_context
        self.run_task = run_task
        self.contexts = dict(contexts)
        self.jobs = jobs
        self.chunk_size = chunk_size

    def map(self, tasks: Sequence[Tuple[str, dict]]) -> List[dict]:
        """Run every ``(context_key, task)``; results in input order."""
        unknown = {key for key, _ in tasks} - set(self.contexts)
        if unknown:
            raise KeyError(f"tasks reference unknown context(s): {sorted(unknown)}")
        if not tasks:
            return []
        if self.jobs == 1:
            local: Dict[str, object] = {}
            results = []
            for key, task in tasks:
                if key not in local:
                    local[key] = self.build_context(self.contexts[key])
                results.append(self.run_task(local[key], task))
            emit("pool.map", tasks=len(tasks), jobs=1,
                 contexts=len(local))
            return results

        chunk_size = self.chunk_size or default_chunk_size(
            len(tasks), self.jobs
        )
        chunks = [
            list(tasks[i:i + chunk_size])
            for i in range(0, len(tasks), chunk_size)
        ]
        pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_pool_initializer,
            initargs=(self.build_context, self.run_task, self.contexts),
        )
        emit("pool.spawn", jobs=self.jobs, resident=False,
             tasks=len(tasks), chunks=len(chunks))
        REGISTRY.incr("pool.spawns")
        try:
            chunk_results = list(pool.map(_run_chunk, chunks))
        except KeyboardInterrupt:
            # Don't wait for in-flight chunks: the user asked to stop.
            # Workers ignore SIGINT (see _ignore_sigint), so terminate
            # them instead of leaking processes that would finish their
            # chunk into a closed pipe.
            for process in getattr(pool, "_processes", {}).values():
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        except BaseException:
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return [result for chunk in chunk_results for result in chunk]


class ResidentPool:
    """A long-lived trial executor for services.

    :class:`TrialPool` is built for batch runs: contexts are fixed at
    construction and the process pool lives for one :meth:`~TrialPool.map`
    call.  A daemon (``repro serve``) inverts both assumptions — scenarios
    arrive with requests, and executor startup must be paid once, not per
    job — so a ResidentPool:

    * keeps its :class:`~concurrent.futures.ProcessPoolExecutor` up
      across :meth:`run` calls (created lazily on first use, closed by
      :meth:`close`);
    * ships the context *data* with each chunk instead of at pool
      initialization, cached worker-side under its **content key** with
      a bounded LRU — so two requests for the same scenario share one
      compiled context, however far apart they arrive, and a week of
      distinct scenarios cannot exhaust worker memory;
    * is thread-safe: many queue workers may call :meth:`run`
      concurrently (executor submission is locked internally, and the
      ``jobs=1`` in-process path keeps its own locked LRU).

    ``jobs=1`` executes in the calling thread through the same chunk
    code path, bit-identical to the pooled result.
    """

    def __init__(
        self,
        build_context: Callable,
        run_task: Callable,
        jobs: int = 1,
        max_contexts: int = 32,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ValueError(f"jobs must be an integer >= 1, got {jobs!r}")
        if not isinstance(max_contexts, int) or max_contexts < 1:
            raise ValueError(
                f"max_contexts must be an integer >= 1, got {max_contexts!r}"
            )
        self.build_context = build_context
        self.run_task = run_task
        self.jobs = jobs
        self.max_contexts = max_contexts
        self._executor: Optional[ProcessPoolExecutor] = None
        self._local: "OrderedDict[str, object]" = OrderedDict()
        import threading

        self._lock = threading.Lock()
        self._closed = False

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("ResidentPool is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_resident_initializer,
                    initargs=(
                        self.build_context,
                        self.run_task,
                        self.max_contexts,
                    ),
                )
                emit("pool.spawn", jobs=self.jobs, resident=True)
                REGISTRY.incr("pool.spawns")
            return self._executor

    def run(
        self,
        context_key: str,
        context_data: dict,
        tasks: Sequence[dict],
        chunk_size: Optional[int] = None,
    ) -> List[dict]:
        """Run ``tasks`` against one context; results in input order.

        ``context_key`` must content-address ``context_data`` — equal
        keys may reuse a previously built worker context without
        looking at the data again.
        """
        if not tasks:
            return []
        if self.jobs == 1:
            with self._lock:
                if self._closed:
                    raise RuntimeError("ResidentPool is closed")
                context = _resident_context(
                    self._local,
                    self.build_context,
                    context_key,
                    context_data,
                    self.max_contexts,
                    metrics=REGISTRY,
                )
            results = [self.run_task(context, task) for task in tasks]
            emit("pool.run", tasks=len(tasks), jobs=1,
                 context=context_key[:12])
            return results

        size = chunk_size or default_chunk_size(len(tasks), self.jobs)
        chunks = [
            (context_key, context_data, list(tasks[i:i + size]))
            for i in range(0, len(tasks), size)
        ]
        executor = self._ensure_executor()
        futures = [executor.submit(_resident_chunk, chunk) for chunk in chunks]
        results: List[dict] = []
        built = hits = 0
        for future in futures:
            outcome = future.result()
            results.extend(outcome["results"])
            delta = outcome["metrics"]
            REGISTRY.merge(delta)
            built += delta.get("counters", {}).get("pool.context_builds", 0)
            hits += delta.get("counters", {}).get("pool.context_hits", 0)
        emit("pool.run", tasks=len(tasks), jobs=self.jobs,
             chunks=len(chunks), context=context_key[:12],
             context_builds=built, context_hits=hits)
        return results

    def close(self) -> None:
        """Shut the executor down (idempotent); the pool is unusable after."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
            self._local.clear()
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ResidentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
