"""Persistent schedule cache keyed by problem content.

Synthesizing a schedule means solving a sequence of ILPs — seconds to
minutes of solver time — yet the result is a pure function of the
``(Mode, SchedulingConfig)`` pair.  :class:`ScheduleCache` memoizes that
function on disk: entries are addressed by the canonical content hash
from :func:`repro.io.serialize.synthesis_fingerprint`, so repeated
syntheses across parameter sweeps, mode graphs, and CLI invocations cost
one JSON read instead of a solver run.

Any change to the problem inputs — an application's period, a WCET, the
round length, the backend — changes the fingerprint and therefore misses
the cache; stale entries are never returned.  Corrupt or
version-incompatible files are treated as misses and removed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..core.modes import Mode
from ..core.schedule import ModeSchedule, SchedulingConfig
from ..io.serialize import (
    SCHEMA_VERSION,
    SerializationError,
    schedule_from_dict,
    schedule_to_dict,
    synthesis_fingerprint,
)


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ScheduleCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def __str__(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} store(s)"


class ScheduleCache:
    """Content-addressed store of synthesized schedules.

    Args:
        cache_dir: Directory holding one ``<fingerprint>.json`` file per
            cached schedule; created on first use.

    Entries round-trip through :func:`repro.io.serialize.schedule_to_dict`,
    so a cached schedule verifies exactly like a freshly synthesized one.
    Per-run solver statistics (``solve_stats``) are not part of the
    schedule image and are absent on cached copies.
    """

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.stats = CacheStats()

    def key(self, mode: Mode, config: SchedulingConfig) -> str:
        """The content hash addressing ``(mode, config)``."""
        return synthesis_fingerprint(mode, config)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, mode: Mode, config: SchedulingConfig) -> Optional[ModeSchedule]:
        """Return the cached schedule, or ``None`` on a miss."""
        path = self._path(self.key(mode, config))
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != SCHEMA_VERSION:
                raise SerializationError(f"schema {payload.get('schema')!r}")
            schedule = schedule_from_dict(payload["schedule"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (SerializationError, json.JSONDecodeError, KeyError, TypeError):
            # Unreadable entry: drop it and treat as a miss.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return schedule

    def put(
        self, mode: Mode, config: SchedulingConfig, schedule: ModeSchedule
    ) -> str:
        """Store ``schedule`` for ``(mode, config)``; returns the key."""
        key = self.key(mode, config)
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": key,
            "mode_name": mode.name,
            "schedule": schedule_to_dict(schedule),
        }
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        # Write-then-rename so concurrent readers never see a torn file.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(path)
        self.stats.stores += 1
        return key

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for entry in self.cache_dir.glob("*.json"):
                entry.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def __repr__(self) -> str:
        return f"ScheduleCache({str(self.cache_dir)!r}, {self.stats})"
