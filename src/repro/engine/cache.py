"""Persistent schedule cache keyed by problem content.

Synthesizing a schedule means solving a sequence of ILPs — seconds to
minutes of solver time — yet the result is a pure function of the
``(Mode, SchedulingConfig)`` pair.  :class:`ScheduleCache` memoizes that
function on disk: entries are addressed by the canonical content hash
from :func:`repro.io.serialize.synthesis_fingerprint`, so repeated
syntheses across parameter sweeps, mode graphs, and CLI invocations cost
one JSON read instead of a solver run.

Any change to the problem inputs — an application's period, a WCET, the
round length, the backend — changes the fingerprint and therefore misses
the cache; stale entries are never returned.  Corrupt or
version-incompatible files are treated as misses and removed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..core.modes import Mode
from ..core.schedule import ModeSchedule, SchedulingConfig
from ..obs.events import emit
from ..io.serialize import (
    SCHEMA_VERSION,
    SerializationError,
    schedule_from_dict,
    schedule_to_dict,
    synthesis_fingerprint,
)


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ScheduleCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def __str__(self) -> str:
        text = f"{self.hits} hit(s), {self.misses} miss(es), {self.stores} store(s)"
        if self.evictions:
            text += f", {self.evictions} eviction(s)"
        return text


class ScheduleCache:
    """Content-addressed store of synthesized schedules.

    Args:
        cache_dir: Directory holding one ``<fingerprint>.json`` file per
            cached schedule; created on first use.

    Entries round-trip through :func:`repro.io.serialize.schedule_to_dict`,
    so a cached schedule verifies exactly like a freshly synthesized one.
    Per-run solver statistics (``solve_stats``) are not part of the
    schedule image and are absent on cached copies.

    Size policy: a long-lived cache (the ``repro serve`` daemon keeps
    one resident across every request) must not grow without bound, so
    ``max_entries`` / ``max_bytes`` cap it with LRU eviction — every
    hit refreshes an entry's file mtime, and :meth:`put` evicts the
    stalest entries until both limits hold again (the entry just
    written is never evicted).  Eviction is safe by construction:
    entries are pure content-addressed functions of their problem, so
    an evicted-then-recomputed schedule is bit-identical to the one
    that was dropped.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 (or None), got {max_entries!r}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(
                f"max_bytes must be >= 1 (or None), got {max_bytes!r}"
            )
        self.cache_dir = Path(cache_dir)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    def key(self, mode: Mode, config: SchedulingConfig) -> str:
        """The content hash addressing ``(mode, config)``."""
        return synthesis_fingerprint(mode, config)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, mode: Mode, config: SchedulingConfig) -> Optional[ModeSchedule]:
        """Return the cached schedule, or ``None`` on a miss."""
        key = self.key(mode, config)
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != SCHEMA_VERSION:
                raise SerializationError(f"schema {payload.get('schema')!r}")
            schedule = schedule_from_dict(payload["schedule"])
        except FileNotFoundError:
            self.stats.misses += 1
            emit("cache.miss", key=key, mode=mode.name)
            return None
        except (SerializationError, json.JSONDecodeError, KeyError, TypeError):
            # Unreadable entry: drop it and treat as a miss.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            emit("cache.miss", key=key, mode=mode.name, corrupt=True)
            return None
        self.stats.hits += 1
        emit("cache.hit", key=key, mode=mode.name)
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass  # entry raced an eviction/clear; the hit still stands
        return schedule

    def put(
        self, mode: Mode, config: SchedulingConfig, schedule: ModeSchedule
    ) -> str:
        """Store ``schedule`` for ``(mode, config)``; returns the key."""
        key = self.key(mode, config)
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": key,
            "mode_name": mode.name,
            "schedule": schedule_to_dict(schedule),
        }
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        # Write-then-rename so concurrent readers never see a torn file.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        tmp.replace(path)
        self.stats.stores += 1
        emit("cache.store", key=key, mode=mode.name)
        if self.max_entries is not None or self.max_bytes is not None:
            self._evict(keep=path.name)
        return key

    def _evict(self, keep: str) -> None:
        """Drop least-recently-used entries until the limits hold."""
        entries = []
        for entry in self.cache_dir.glob("*.json"):
            try:
                stat = entry.stat()
            except OSError:
                continue  # concurrently removed
            entries.append((stat.st_mtime_ns, entry.name, entry, stat.st_size))
        entries.sort()  # oldest mtime first; name breaks ties deterministically
        count = len(entries)
        total = sum(size for _, _, _, size in entries)
        for _, name, entry, size in entries:
            over_entries = (
                self.max_entries is not None and count > self.max_entries
            )
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_entries or over_bytes):
                break
            if name == keep:
                continue  # never evict the entry this put just wrote
            try:
                entry.unlink()
            except OSError:
                continue
            count -= 1
            total -= size
            self.stats.evictions += 1
            emit("cache.evict", key=name[: -len(".json")], bytes=size)

    def usage(self) -> dict:
        """Current size and traffic counters, as one JSON-ready dict.

        The ``cache stats`` accessor for dashboards and the serve
        daemon's ``/stats`` endpoint: entry/byte usage against the
        configured limits plus the hit/miss/store/eviction counters.
        """
        entries = 0
        total = 0
        if self.cache_dir.is_dir():
            for entry in self.cache_dir.glob("*.json"):
                try:
                    total += entry.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "entries": entries,
            "bytes": total,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "stores": self.stats.stores,
            "evictions": self.stats.evictions,
        }

    def clear(self) -> int:
        """Delete all entries; returns how many were removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for entry in self.cache_dir.glob("*.json"):
                entry.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def __repr__(self) -> str:
        return f"ScheduleCache({str(self.cache_dir)!r}, {self.stats})"
