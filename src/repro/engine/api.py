"""The synthesis engine facade: cache in front, pool behind.

:class:`SynthesisEngine` is the one-stop entry point for schedule
synthesis at scale.  It composes the two throughput mechanisms of this
package around the paper's Algorithm 1:

1. every request first consults the persistent
   :class:`~repro.engine.cache.ScheduleCache` (when configured) — a hit
   skips the solver entirely;
2. misses are solved with speculative parallel iteration
   (:mod:`repro.engine.parallel`) over a process pool, batching whole
   mode sets onto shared workers.

The engine never changes *what* is synthesized — results are equal to
the sequential :func:`repro.core.synthesis.synthesize` — only how fast
the answer arrives and whether it must be recomputed at all.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.modes import Mode
from ..core.schedule import ModeSchedule, SchedulingConfig
from ..io.serialize import synthesis_fingerprint
from .cache import ScheduleCache
from .parallel import synthesize_batch, synthesize_parallel


@dataclass
class EngineStats:
    """What one engine did: cache traffic and solver work."""

    cache_hits: int = 0
    cache_misses: int = 0
    modes_synthesized: int = 0
    solver_runs: int = 0
    total_time: float = 0.0

    def __str__(self) -> str:
        return (
            f"cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es); "
            f"solver runs: {self.solver_runs}; "
            f"synthesized {self.modes_synthesized} mode(s) "
            f"in {self.total_time:.3f}s"
        )


def run_cached_batch(
    problems: Sequence[tuple],
    jobs: int = 1,
    cache: Optional[ScheduleCache] = None,
    warm_start: bool = True,
    stats: Optional[EngineStats] = None,
    backend: Optional[str] = None,
) -> List[ModeSchedule]:
    """Cache-aware batch synthesis of ``(mode, config)`` problems.

    The full engine pipeline as one function: consult the cache, dedupe
    identical problems (by content fingerprint) so each distinct ILP
    sequence is solved once, solve the misses over one shared pool, and
    store the results back.  Both :meth:`SynthesisEngine.synthesize_many`
    and the CLI ``batch`` command are thin wrappers over this.

    Args:
        problems: ``(mode, config)`` pairs; configs may differ.
        jobs: Worker processes for the miss pool.
        cache: Optional persistent cache consulted/updated per problem.
        warm_start: Seed searches at the demand lower bound.
        stats: Counters to update in place (a fresh object by default).
        backend: Solver backend name overriding every problem's
            ``config.backend``.  The effective backend is part of every
            cache fingerprint, so schedules from different backends
            never share cache entries.

    Returns:
        Schedules aligned with ``problems``.  Duplicate problems share
        one schedule object.
    """
    stats = stats if stats is not None else EngineStats()
    started = time.monotonic()
    if backend is not None:
        problems = [
            (mode, dataclasses.replace(config, backend=backend)
             if config.backend != backend else config)
            for mode, config in problems
        ]
    results: List[Optional[ModeSchedule]] = [None] * len(problems)
    occurrences: Dict[str, List[int]] = {}
    to_solve: List[tuple] = []  # (fingerprint, mode, config), first seen
    for index, (mode, config) in enumerate(problems):
        cached = cache.get(mode, config) if cache is not None else None
        if cached is not None:
            stats.cache_hits += 1
            results[index] = cached
            continue
        if cache is not None:
            stats.cache_misses += 1
        key = synthesis_fingerprint(mode, config)
        if key in occurrences:
            occurrences[key].append(index)
        else:
            occurrences[key] = [index]
            to_solve.append((key, mode, config))

    solved = synthesize_batch(
        [(mode, config) for _, mode, config in to_solve],
        jobs=jobs,
        warm_start=warm_start,
    )
    for (key, mode, config), schedule in zip(to_solve, solved):
        stats.solver_runs += len(
            schedule.solve_stats.iterations if schedule.solve_stats else ()
        )
        if cache is not None:
            cache.put(mode, config, schedule)
        for index in occurrences[key]:
            results[index] = schedule

    stats.modes_synthesized += len(to_solve)
    stats.total_time += time.monotonic() - started
    return results


class SynthesisEngine:
    """Cached, parallel schedule synthesis for modes and mode sets.

    Args:
        config: Scheduling parameters shared by all requests.
        jobs: Worker processes for speculative/batch solving; ``1``
            keeps everything in-process and sequential.
        cache: An existing :class:`ScheduleCache` to share (e.g. across
            engines with different configs in one sweep).
        cache_dir: Convenience: build a :class:`ScheduleCache` at this
            directory.  Ignored when ``cache`` is given; ``None`` (and
            no ``cache``) disables caching.
        warm_start: Seed each search at the demand lower bound
            (preserves round-minimality; see
            :func:`repro.core.synthesis.demand_round_bound`).
        backend: Solver backend name overriding ``config.backend`` for
            every request (see :func:`repro.milp.available_backends`).
    """

    def __init__(
        self,
        config: Optional[SchedulingConfig] = None,
        jobs: int = 1,
        cache: Optional[ScheduleCache] = None,
        cache_dir: Optional[str | Path] = None,
        warm_start: bool = True,
        backend: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.config = config or SchedulingConfig()
        if backend is not None and backend != self.config.backend:
            self.config = dataclasses.replace(self.config, backend=backend)
        self.jobs = jobs
        self.cache = cache if cache is not None else (
            ScheduleCache(cache_dir) if cache_dir is not None else None
        )
        self.warm_start = warm_start
        self.stats = EngineStats()

    # -- single mode -----------------------------------------------------
    def synthesize(self, mode: Mode) -> ModeSchedule:
        """Round-minimal schedule for one mode (cache, then solve)."""
        return self.synthesize_many([mode])[mode.name]

    # -- batches ---------------------------------------------------------
    def synthesize_many(self, modes: Sequence[Mode]) -> Dict[str, ModeSchedule]:
        """Schedule a whole mode set; cache hits never touch the pool.

        Returns:
            Mapping from mode name to schedule, covering every input
            mode.

        Raises:
            repro.core.synthesis.InfeasibleError: if any uncached mode
                is unschedulable.
        """
        names = [mode.name for mode in modes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate mode names in batch: {names}")
        results = run_cached_batch(
            [(mode, self.config) for mode in modes],
            jobs=self.jobs,
            cache=self.cache,
            warm_start=self.warm_start,
            stats=self.stats,
        )
        return {mode.name: schedule for mode, schedule in zip(modes, results)}


__all__ = [
    "EngineStats",
    "SynthesisEngine",
    "run_cached_batch",
    "synthesize_parallel",
]
