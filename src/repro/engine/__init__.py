"""Synthesis engine: parallel speculative Algorithm 1 + schedule cache.

This package scales the paper's offline synthesis to sweep-sized
workloads without changing its results:

* :func:`synthesize_parallel` — speculative parallel iteration over the
  candidate round counts of one mode;
* :func:`synthesize_many` / :func:`synthesize_batch` — batch synthesis
  of whole mode sets (or heterogeneous ``(mode, config)`` problems)
  over a shared process pool with shared warm-start bounds;
* :class:`ScheduleCache` — persistent, content-addressed memoization of
  ``(Mode, SchedulingConfig) -> ModeSchedule``;
* :class:`SynthesisEngine` — the facade composing cache and pool;
* :class:`TrialPool` — batched execution of context-sharing evaluation
  tasks (Monte-Carlo trials) over the same process-pool machinery.
"""

from .api import EngineStats, SynthesisEngine, run_cached_batch
from .cache import CacheStats, ScheduleCache
from .parallel import synthesize_batch, synthesize_many, synthesize_parallel
from .trials import TrialPool

__all__ = [
    "CacheStats",
    "EngineStats",
    "ScheduleCache",
    "SynthesisEngine",
    "TrialPool",
    "run_cached_batch",
    "synthesize_batch",
    "synthesize_many",
    "synthesize_parallel",
]
