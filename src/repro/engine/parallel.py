"""Speculative parallel execution of Algorithm 1.

The paper's Algorithm 1 probes round counts ``R_M = 0, 1, 2, ...``
sequentially until the first feasible ILP.  The iterations are
independent solver runs, so this module launches several candidate round
counts concurrently in a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns the *smallest* feasible one:

* Round-minimality is preserved **by construction** — a feasible result
  at ``r`` is only accepted once every speculated ``r' < r`` has come
  back infeasible, exactly the evidence the sequential loop gathers.
* Superseded speculation (pending round counts above an accepted
  feasible one) is cancelled so the pool moves on to other work — in
  batch runs, to the next mode's iterations.
* The demand lower bound (:func:`repro.core.synthesis.demand_round_bound`)
  seeds every search, skipping provably-infeasible iterations; in batch
  mode the bounds are computed up-front for the whole mode set so every
  worker starts warm.

Workers receive the JSON image of the problem (via
:mod:`repro.io.serialize`) rather than pickled objects, rebuild the ILP
locally, and ship the schedule back as a JSON dict — the same stable
representation used on disk, so results are identical across process
boundaries.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.modes import Mode
from ..core.schedule import (
    IterationStats,
    ModeSchedule,
    SchedulingConfig,
    SynthesisStats,
)
from ..core.synthesis import (
    InfeasibleError,
    demand_round_bound,
    extract_schedule,
    max_rounds,
    solve_fixed_rounds,
)
from ..io.serialize import (
    config_from_dict,
    config_to_dict,
    mode_from_dict,
    mode_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)


def _solve_round_task(
    mode_data: dict, config_data: dict, num_rounds: int
) -> Tuple[int, IterationStats, Optional[dict]]:
    """Worker entry point: solve one fixed-round ILP in a subprocess.

    Must stay a module-level function so it is picklable by the
    executor.  Returns the schedule as a JSON dict (``None`` when
    infeasible); the parent reassembles the :class:`ModeSchedule`.
    """
    mode = mode_from_dict(mode_data)
    config = config_from_dict(config_data)
    iteration, handles, solution = solve_fixed_rounds(mode, config, num_rounds)
    schedule_data: Optional[dict] = None
    if iteration.feasible:
        schedule = extract_schedule(
            mode, config, handles, solution, SynthesisStats(mode_name=mode.name)
        )
        schedule_data = schedule_to_dict(schedule)
    return num_rounds, iteration, schedule_data


class _SpeculativeSearch:
    """State of Algorithm 1 for one mode under speculative execution.

    Tracks which round counts are in flight, which verdicts arrived, and
    the smallest feasible round count found so far.  ``done`` becomes
    true only when that round count is *proven* minimal: every smaller
    speculated count has reported infeasible.
    """

    def __init__(
        self,
        mode: Mode,
        config: SchedulingConfig,
        min_rounds: int = 0,
        warm_start: bool = True,
    ) -> None:
        mode.validate()
        self.mode = mode
        self.config = config
        if warm_start:
            min_rounds = max(min_rounds, demand_round_bound(mode, config))
        self.next_round = min_rounds
        self.r_max = max_rounds(mode, config)
        self.best_feasible: Optional[int] = None
        self._schedule_data: Optional[dict] = None
        self._iterations: Dict[int, IterationStats] = {}
        self._outstanding: set = set()
        self._started = time.monotonic()
        # Serialize once; every worker submission reuses the payload.
        self.mode_data = mode_to_dict(mode)
        self.config_data = config_to_dict(config)

    # -- submission ------------------------------------------------------
    def next_submission(self) -> Optional[int]:
        """Claim the next round count to speculate on, or ``None``."""
        if self.best_feasible is not None and self.next_round >= self.best_feasible:
            return None
        if self.next_round > self.r_max:
            return None
        num_rounds = self.next_round
        self.next_round += 1
        self._outstanding.add(num_rounds)
        return num_rounds

    # -- result handling -------------------------------------------------
    def record(
        self, num_rounds: int, iteration: IterationStats, schedule_data: Optional[dict]
    ) -> None:
        self._outstanding.discard(num_rounds)
        self._iterations[num_rounds] = iteration
        if iteration.feasible and schedule_data is not None:
            if self.best_feasible is None or num_rounds < self.best_feasible:
                self.best_feasible = num_rounds
                self._schedule_data = schedule_data

    def drop(self, num_rounds: int) -> None:
        """A submission was cancelled before running."""
        self._outstanding.discard(num_rounds)

    def superseded(self) -> List[int]:
        """Outstanding round counts made redundant by the incumbent."""
        if self.best_feasible is None:
            return []
        return [r for r in self._outstanding if r > self.best_feasible]

    @property
    def done(self) -> bool:
        if self.best_feasible is not None:
            # Minimal once all smaller speculations have reported.
            return not any(r < self.best_feasible for r in self._outstanding)
        return self.next_round > self.r_max and not self._outstanding

    # -- results ---------------------------------------------------------
    def stats(self) -> SynthesisStats:
        stats = SynthesisStats(mode_name=self.mode.name)
        stats.iterations = [
            self._iterations[r] for r in sorted(self._iterations)
        ]
        stats.total_time = time.monotonic() - self._started
        return stats

    def result(self) -> ModeSchedule:
        """The round-minimal schedule; raises if the mode is infeasible."""
        if self.best_feasible is None or self._schedule_data is None:
            raise InfeasibleError(self.mode, self.stats())
        schedule = schedule_from_dict(self._schedule_data)
        schedule.solve_stats = self.stats()
        return schedule


def _run_searches(
    searches: Sequence[_SpeculativeSearch], jobs: int
) -> None:
    """Drive every search to completion over one shared process pool.

    Keeps up to ``jobs`` ILPs in flight, topping up round-robin across
    the still-running searches so batch workloads interleave fairly
    instead of finishing mode by mode.
    """
    if not searches:
        return
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures: Dict[object, Tuple[int, int]] = {}
        rr = 0  # round-robin cursor over searches

        def top_up() -> None:
            nonlocal rr
            idle = 0
            while len(futures) < jobs and idle < len(searches):
                idx = rr % len(searches)
                search = searches[idx]
                rr += 1
                num_rounds = search.next_submission()
                if num_rounds is None:
                    idle += 1
                    continue
                idle = 0
                fut = pool.submit(
                    _solve_round_task,
                    search.mode_data,
                    search.config_data,
                    num_rounds,
                )
                futures[fut] = (idx, num_rounds)

        top_up()
        while futures:
            completed, _ = wait(futures, return_when=FIRST_COMPLETED)
            for fut in completed:
                idx, num_rounds = futures.pop(fut)
                search = searches[idx]
                if fut.cancelled():
                    search.drop(num_rounds)
                    continue
                got_rounds, iteration, schedule_data = fut.result()
                search.record(got_rounds, iteration, schedule_data)
                # Cancel speculation above a newly-found incumbent.
                redundant = set(search.superseded())
                if redundant:
                    for other, (oidx, orounds) in list(futures.items()):
                        if oidx == idx and orounds in redundant and other.cancel():
                            del futures[other]
                            search.drop(orounds)
            if all(s.done for s in searches):
                for fut in futures:
                    fut.cancel()
                break
            top_up()


def synthesize_parallel(
    mode: Mode,
    config: Optional[SchedulingConfig] = None,
    jobs: int = 2,
    min_rounds: int = 0,
    warm_start: bool = True,
    backend: Optional[str] = None,
) -> ModeSchedule:
    """Algorithm 1 with speculative parallel iterations for one mode.

    Semantically identical to :func:`repro.core.synthesis.synthesize`
    (same round count, same objective); wall-clock improves whenever the
    infeasible prefix of round counts can be disproved concurrently.

    Args:
        mode: The mode to schedule.
        config: Scheduling parameters.
        jobs: Worker processes (also the speculation window).  ``1``
            falls back to the in-process sequential loop.
        min_rounds: Start the search here (0 = the paper's Algorithm 1).
        warm_start: Additionally start at the demand lower bound.
        backend: Solver backend name overriding ``config.backend``; the
            name travels to the workers inside the serialized config.

    Raises:
        InfeasibleError: if no round count up to ``Rmax`` is feasible.
    """
    config = config or SchedulingConfig()
    if backend is not None and backend != config.backend:
        config = dataclasses.replace(config, backend=backend)
    if jobs <= 1:
        from ..core.synthesis import synthesize

        return synthesize(
            mode, config, min_rounds=min_rounds, warm_start=warm_start
        )
    search = _SpeculativeSearch(
        mode, config, min_rounds=min_rounds, warm_start=warm_start
    )
    _run_searches([search], jobs)
    return search.result()


def synthesize_batch(
    problems: Sequence[Tuple[Mode, SchedulingConfig]],
    jobs: int = 2,
    warm_start: bool = True,
    backend: Optional[str] = None,
) -> List[ModeSchedule]:
    """Schedule heterogeneous ``(mode, config)`` problems over one pool.

    The most general batch entry point: every problem may carry its own
    :class:`SchedulingConfig` (e.g. the CLI's ``batch`` over several
    workload files), and all of them share a single
    :class:`ProcessPoolExecutor` so speculative iterations interleave
    across problems and the pool never idles between files.

    Args:
        problems: ``(mode, config)`` pairs to schedule.
        jobs: Worker processes shared by the whole batch.  ``1`` runs
            the sequential loop per problem.
        warm_start: Seed each search at its demand lower bound.
        backend: Solver backend name overriding every problem's
            ``config.backend``.

    Returns:
        Round-minimal schedules, aligned with ``problems`` — equal to
        running :func:`repro.core.synthesis.synthesize` per pair.

    Raises:
        InfeasibleError: for the first (in input order) infeasible mode.
    """
    if not problems:
        return []
    if backend is not None:
        problems = [
            (mode, dataclasses.replace(config, backend=backend)
             if config.backend != backend else config)
            for mode, config in problems
        ]
    if jobs <= 1:
        from ..core.synthesis import synthesize

        return [
            synthesize(mode, config, warm_start=warm_start)
            for mode, config in problems
        ]
    searches = [
        _SpeculativeSearch(mode, config, warm_start=warm_start)
        for mode, config in problems
    ]
    _run_searches(searches, jobs)
    return [search.result() for search in searches]


def synthesize_many(
    modes: Sequence[Mode],
    config: Optional[SchedulingConfig] = None,
    jobs: int = 2,
    warm_start: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, ModeSchedule]:
    """Batch Algorithm 1: schedule a whole mode set over one pool.

    All modes share one :class:`ProcessPoolExecutor`; their speculative
    iterations interleave, so the pool stays busy even while one mode
    waits on the verdict for a small round count.  Warm-start bounds
    (:func:`demand_round_bound`) are computed up-front for the whole set.

    Args:
        modes: Modes to schedule (names must be unique).
        config: Scheduling parameters shared by all modes.
        jobs: Worker processes shared by the whole batch.  ``1`` runs
            the sequential loop per mode.
        warm_start: Seed each search at its demand lower bound.

    Returns:
        Mapping from mode name to its round-minimal schedule — equal to
        running :func:`repro.core.synthesis.synthesize` per mode.

    Raises:
        InfeasibleError: for the first (in input order) infeasible mode.
        ValueError: on duplicate mode names.
    """
    config = config or SchedulingConfig()
    names = [m.name for m in modes]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate mode names in batch: {names}")
    schedules = synthesize_batch(
        [(mode, config) for mode in modes],
        jobs=jobs,
        warm_start=warm_start,
        backend=backend,
    )
    return {mode.name: schedule for mode, schedule in zip(modes, schedules)}
