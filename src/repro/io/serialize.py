"""JSON (de)serialization of workloads and schedules.

TTW distributes schedules to nodes at deployment time; this module
provides the stable on-disk image for that step, plus round-tripping of
the problem inputs so workloads can be versioned next to the code:

* :func:`application_to_dict` / :func:`application_from_dict`
* :func:`mode_to_dict` / :func:`mode_from_dict`
* :func:`schedule_to_dict` / :func:`schedule_from_dict`
* :func:`save_system` / :func:`load_system` /
  :func:`load_system_image` — a whole multi-mode system (modes +
  synthesized schedules + allowed transitions) in one file;
* :func:`scenario_to_dict` / :func:`scenario_from_dict` and
  :func:`save_scenario` / :func:`load_scenario` — the declarative
  :class:`repro.api.Scenario` experiment description.

All dictionaries are plain JSON-compatible types.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Tuple

from ..core.app_model import Application
from ..core.modes import Mode
from ..core.schedule import ModeSchedule, RoundSchedule, SchedulingConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.scenario import Scenario

#: Schema version stamped into every file for forward compatibility.
SCHEMA_VERSION = 1


class SerializationError(ValueError):
    """Raised on malformed or version-incompatible input."""


# -- applications -----------------------------------------------------------


def application_to_dict(app: Application) -> dict:
    """Serialize an application, including its precedence edges."""
    edges: List[Tuple[str, str]] = []
    for msg, producers in app.msg_producers.items():
        for task in producers:
            edges.append((task, msg))
    for task, preds in app.task_preds.items():
        for msg in preds:
            edges.append((msg, task))
    return {
        "name": app.name,
        "period": app.period,
        "deadline": app.deadline,
        "tasks": [
            {"name": t.name, "node": t.node, "wcet": t.wcet}
            for t in app.tasks.values()
        ],
        "messages": sorted(app.messages),
        "edges": edges,
    }


def application_from_dict(data: dict) -> Application:
    """Rebuild an application; validates structure on the way."""
    try:
        app = Application(
            data["name"], period=data["period"], deadline=data["deadline"]
        )
        for task in data["tasks"]:
            app.add_task(task["name"], node=task["node"], wcet=task["wcet"])
        for msg in data["messages"]:
            app.add_message(msg)
        for source, target in data["edges"]:
            app.connect(source, target)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed application record: {exc}") from exc
    app.validate()
    return app


# -- modes -------------------------------------------------------------------


def mode_to_dict(mode: Mode) -> dict:
    return {
        "name": mode.name,
        "mode_id": mode.mode_id,
        "applications": [application_to_dict(a) for a in mode.applications],
    }


def mode_from_dict(data: dict) -> Mode:
    try:
        apps = [application_from_dict(a) for a in data["applications"]]
        return Mode(data["name"], apps, mode_id=data.get("mode_id"))
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed mode record: {exc}") from exc


# -- schedules ----------------------------------------------------------------


def config_to_dict(config: SchedulingConfig) -> dict:
    return {
        "round_length": config.round_length,
        "slots_per_round": config.slots_per_round,
        "max_round_gap": config.max_round_gap,
        "mm": config.mm,
        "big_m": config.big_m,
        "backend": config.backend,
        "time_limit": config.time_limit,
        "minimize_latency": config.minimize_latency,
    }


def config_from_dict(data: dict) -> SchedulingConfig:
    return SchedulingConfig(
        round_length=data["round_length"],
        slots_per_round=data["slots_per_round"],
        max_round_gap=data.get("max_round_gap"),
        mm=data.get("mm", 1e-4),
        big_m=data.get("big_m"),
        backend=data.get("backend", "highs"),
        time_limit=data.get("time_limit"),
        minimize_latency=data.get("minimize_latency", True),
    )


def schedule_to_dict(schedule: ModeSchedule) -> dict:
    return {
        "mode_name": schedule.mode_name,
        "hyperperiod": schedule.hyperperiod,
        "config": config_to_dict(schedule.config),
        "task_offsets": dict(schedule.task_offsets),
        "message_offsets": dict(schedule.message_offsets),
        "message_deadlines": dict(schedule.message_deadlines),
        "rounds": [
            {"start": r.start, "messages": list(r.messages)}
            for r in schedule.rounds
        ],
        # JSON keys must be strings: encode the edge tuple as "src->dst".
        "sigma": {f"{s}->{t}": v for (s, t), v in schedule.sigma.items()},
        "leftover": dict(schedule.leftover),
        "app_latencies": dict(schedule.app_latencies),
    }


def schedule_from_dict(data: dict) -> ModeSchedule:
    try:
        sigma: Dict[Tuple[str, str], int] = {}
        for key, value in data.get("sigma", {}).items():
            source, _, target = key.partition("->")
            if not target:
                raise SerializationError(f"bad sigma key {key!r}")
            sigma[(source, target)] = int(value)
        schedule = ModeSchedule(
            mode_name=data["mode_name"],
            hyperperiod=data["hyperperiod"],
            config=config_from_dict(data["config"]),
            task_offsets=dict(data["task_offsets"]),
            message_offsets=dict(data["message_offsets"]),
            message_deadlines=dict(data["message_deadlines"]),
            rounds=[
                RoundSchedule(start=r["start"], messages=list(r["messages"]))
                for r in data["rounds"]
            ],
            sigma=sigma,
            leftover={k: int(v) for k, v in data.get("leftover", {}).items()},
            app_latencies=dict(data.get("app_latencies", {})),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed schedule record: {exc}") from exc
    schedule.total_latency = sum(schedule.app_latencies.values())
    return schedule


# -- canonical hashing ---------------------------------------------------------


def canonical_dumps(data: dict) -> str:
    """Serialize ``data`` to a canonical JSON string.

    Key order and whitespace are normalized so equal inputs always
    produce byte-identical text — the property the schedule cache needs
    for stable content addressing.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def synthesis_fingerprint(mode: Mode, config: SchedulingConfig) -> str:
    """Stable content hash of a synthesis problem ``(mode, config)``.

    Hashes agree whenever the problem inputs agree, independent of
    object identity, process, platform, or construction order:
    applications, tasks, and precedence edges are sorted before hashing,
    and ``mode_id`` is excluded (it labels the mode inside a mode graph
    but does not influence the synthesized schedule).  Note the solver
    may break ties between equally-optimal schedules differently for
    differently-ordered inputs; the cache still returns *a* verified
    round-minimal schedule for the problem.
    """
    mode_data = mode_to_dict(mode)
    mode_data.pop("mode_id", None)
    mode_data["applications"] = sorted(
        mode_data["applications"], key=lambda app: app["name"]
    )
    for app in mode_data["applications"]:
        app["tasks"] = sorted(app["tasks"], key=lambda task: task["name"])
        app["edges"] = sorted(tuple(edge) for edge in app["edges"])
    payload = {
        "schema": SCHEMA_VERSION,
        "mode": mode_data,
        "config": config_to_dict(config),
    }
    return hashlib.sha256(canonical_dumps(payload).encode("utf-8")).hexdigest()


# -- whole systems -------------------------------------------------------------


@dataclass
class SystemImage:
    """Everything a system file stores: modes, schedules, transitions."""

    modes: List[Mode] = field(default_factory=list)
    schedules: Dict[str, ModeSchedule] = field(default_factory=dict)
    transitions: List[Tuple[str, str]] = field(default_factory=list)


def save_system(
    path: str | Path,
    modes: List[Mode],
    schedules: Dict[str, ModeSchedule],
    transitions: List[Tuple[str, str]] = (),
) -> None:
    """Write modes and their synthesized schedules to one JSON file.

    Args:
        path: Output file.
        modes: System modes.
        schedules: Schedule per mode name (all modes must be covered).
        transitions: Allowed runtime mode switches as ``(source,
            target)`` name pairs.

    Raises:
        SerializationError: if a mode has no schedule.
    """
    missing = [m.name for m in modes if m.name not in schedules]
    if missing:
        raise SerializationError(f"modes without schedules: {missing}")
    payload = {
        "schema": SCHEMA_VERSION,
        "modes": [mode_to_dict(m) for m in modes],
        "schedules": {
            name: schedule_to_dict(sched) for name, sched in schedules.items()
        },
        "transitions": sorted([source, target] for source, target in transitions),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def _read_payload(path: str | Path) -> dict:
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not valid JSON: {exc}") from exc
    if payload.get("schema") != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema {payload.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return payload


def load_system_image(path: str | Path) -> SystemImage:
    """Read a system file into a :class:`SystemImage`.

    ``transitions`` is optional in the file (older images omit it).
    """
    payload = _read_payload(path)
    return SystemImage(
        modes=[mode_from_dict(m) for m in payload["modes"]],
        schedules={
            name: schedule_from_dict(s)
            for name, s in payload["schedules"].items()
        },
        transitions=[
            (source, target) for source, target in payload.get("transitions", [])
        ],
    )


def load_system(path: str | Path) -> Tuple[List[Mode], Dict[str, ModeSchedule]]:
    """Read a system file written by :func:`save_system`.

    Returns only ``(modes, schedules)``; use :func:`load_system_image`
    for the transitions as well.
    """
    image = load_system_image(path)
    return image.modes, image.schedules


# -- scenarios -----------------------------------------------------------------


def scenario_to_dict(scenario: "Scenario") -> dict:
    """Serialize a :class:`repro.api.Scenario` to plain JSON types."""
    from ..api.scenario import spec_to_dict

    return {
        "schema": SCHEMA_VERSION,
        "kind": "scenario",
        "name": scenario.name,
        "config": config_to_dict(scenario.config),
        "backend": scenario.backend,
        "modes": [mode_to_dict(m) for m in scenario.modes],
        "transitions": [list(pair) for pair in scenario.transitions],
        "topology": spec_to_dict(scenario.topology),
        "loss": spec_to_dict(scenario.loss),
        "radio": spec_to_dict(scenario.radio),
        "simulation": spec_to_dict(scenario.simulation),
    }


def scenario_from_dict(data: dict) -> "Scenario":
    """Rebuild a :class:`repro.api.Scenario`; validates structure."""
    from ..api.scenario import (
        LossSpec,
        RadioSpec,
        Scenario,
        SimulationSpec,
        TopologySpec,
    )

    if data.get("kind") != "scenario":
        raise SerializationError(
            f"not a scenario record (kind={data.get('kind')!r})"
        )
    schema = data.get("schema")
    if schema is not None and schema != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema {schema!r} (expected {SCHEMA_VERSION})"
        )
    try:
        return Scenario(
            name=data["name"],
            modes=[mode_from_dict(m) for m in data["modes"]],
            config=config_from_dict(data["config"]),
            backend=data.get("backend"),
            transitions=[
                (source, target) for source, target in data.get("transitions", [])
            ],
            topology=TopologySpec.from_dict(data.get("topology")),
            loss=LossSpec.from_dict(data.get("loss")),
            radio=RadioSpec.from_dict(data.get("radio")),
            simulation=SimulationSpec.from_dict(data.get("simulation")),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed scenario record: {exc}") from exc


def save_scenario(path: str | Path, scenario: "Scenario") -> None:
    """Write one scenario to a JSON file."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2, sort_keys=True)
    )


def load_scenario(path: str | Path) -> "Scenario":
    """Read a scenario file written by :func:`save_scenario`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"not valid JSON: {exc}") from exc
    return scenario_from_dict(payload)
