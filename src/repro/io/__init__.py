"""Persistence: JSON round-tripping of workloads and schedules (the
deployment-time image TTW distributes to nodes)."""

from .serialize import (
    SCHEMA_VERSION,
    SerializationError,
    application_from_dict,
    application_to_dict,
    canonical_dumps,
    config_from_dict,
    config_to_dict,
    load_system,
    mode_from_dict,
    mode_to_dict,
    save_system,
    schedule_from_dict,
    schedule_to_dict,
    synthesis_fingerprint,
)

__all__ = [
    "SCHEMA_VERSION",
    "SerializationError",
    "application_from_dict",
    "application_to_dict",
    "canonical_dumps",
    "config_from_dict",
    "config_to_dict",
    "load_system",
    "mode_from_dict",
    "mode_to_dict",
    "save_system",
    "schedule_from_dict",
    "schedule_to_dict",
    "synthesis_fingerprint",
]
