"""Typed run-log events and the ``RunLog`` JSONL writer.

One run of any long-lived subsystem — a Monte-Carlo campaign, a
sharded exploration, the ``repro serve`` daemon — can record what
happened to a **run log**: a JSONL file of :class:`Event` records
(schema :data:`LOG_SCHEMA`).  The design follows the dse store, the
repository's proven crash-tolerant append format:

* every event is one ``json.dumps(..., sort_keys=True)`` line,
  flushed immediately, so a SIGKILLed process leaves at worst one
  *torn* final line;
* :func:`read_log` tolerates exactly that torn final line (and
  nothing else — mid-file corruption is a hard error);
* concurrent processes never share a file: each worker writes its own
  *segment* (``<run>.part-<n>.jsonl``, the ``dse.store.part_path``
  convention) and :func:`merge_run_log` folds segments into the main
  log afterwards.  Merging appends verbatim — every event keeps its
  writer's ``src`` and monotonic ``seq``, so readers can always
  re-derive a global order with :func:`sort_events`.

Logging is **off by default**.  Instrumented call sites go through
:func:`emit`, which is a no-op (one global read, one ``None`` check)
until someone installs a log with :func:`set_run_log` — typically the
CLI's ``--log-dir`` flag or a service's ``ObsConfig``.
"""

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

#: Format tag written into every event line.
LOG_SCHEMA = "repro-log/1"


class LogError(ValueError):
    """A run log file is damaged beyond the tolerated torn tail."""


@dataclass(frozen=True)
class Event:
    """One structured run-log record.

    ``seq`` is monotonic *per writer* (``src``), never globally —
    concurrent segments each count from zero.  ``time`` is wall-clock
    (``time.time()``), so events from different processes interleave
    on a shared axis.  ``data`` is the event's structured payload,
    nested so payload keys can never collide with the envelope.
    """

    kind: str
    seq: int
    time: float
    src: str = "main"
    run: str = ""
    data: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": LOG_SCHEMA,
            "kind": self.kind,
            "seq": self.seq,
            "time": self.time,
            "src": self.src,
            "run": self.run,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "Event":
        schema = record.get("schema")
        if schema != LOG_SCHEMA:
            raise LogError(
                f"unsupported log schema {schema!r} (expected {LOG_SCHEMA!r})"
            )
        return cls(
            kind=str(record["kind"]),
            seq=int(record["seq"]),
            time=float(record["time"]),
            src=str(record.get("src", "main")),
            run=str(record.get("run", "")),
            data=dict(record.get("data", {})),
        )


def new_run_id() -> str:
    """A filesystem-safe identifier for one run."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"run-{stamp}-{os.getpid()}"


def log_part_path(path: Path, worker: Union[int, str]) -> Path:
    """The segment file a worker writes next to the main log
    (``run.jsonl`` -> ``run.part-3.jsonl``, the dse store convention).
    """
    path = Path(path)
    return path.with_name(f"{path.stem}.part-{worker}{path.suffix}")


def discover_log_parts(path: Path) -> List[Path]:
    """All worker segments lying next to the main log file."""
    path = Path(path)
    pattern = f"{path.stem}.part-*{path.suffix}"
    parts = []
    for candidate in path.parent.glob(pattern):
        tag = candidate.name[len(path.stem) + len(".part-"):]
        if path.suffix:
            tag = tag[: -len(path.suffix)]
        if tag:
            parts.append((tag, candidate))
    return [candidate for _tag, candidate in sorted(parts)]


class RunLog:
    """Appending writer for one run's JSONL event log.

    Every :meth:`emit` writes one line and flushes, so the log
    survives a SIGKILL with at most a torn final line (which
    :func:`read_log` skips).  Thread-safe; **not** shared across
    processes — workers open their own segment via ``worker=``.
    """

    def __init__(
        self,
        log_dir: Union[str, Path],
        run_id: Optional[str] = None,
        worker: Optional[Union[int, str]] = None,
    ) -> None:
        self.log_dir = Path(log_dir)
        self.log_dir.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or new_run_id()
        base = self.log_dir / f"{self.run_id}.jsonl"
        self.path = base if worker is None else log_part_path(base, worker)
        self.src = "main" if worker is None else f"worker-{worker}"
        self._seq = 0
        self._lock = threading.Lock()
        self._file = open(self.path, "a", encoding="utf-8")

    def emit(self, kind: str, **data: object) -> Event:
        """Append one event; returns the record as written."""
        with self._lock:
            event = Event(
                kind=kind,
                seq=self._seq,
                time=time.time(),
                src=self.src,
                run=self.run_id,
                data=data,
            )
            self._seq += 1
            if not self._file.closed:
                self._file.write(
                    json.dumps(event.to_dict(), sort_keys=True) + "\n"
                )
                self._file.flush()
        return event

    def merge_parts(self, delete_parts: bool = True) -> List[Path]:
        """Fold worker segments into this (still open) log file."""
        return merge_run_log(self.path, delete_parts=delete_parts)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_log(path: Union[str, Path]) -> List[Event]:
    """Events of one log file, in file order.

    Tolerates a torn final line (the signature a killed writer
    leaves); any other damage raises :class:`LogError` — silently
    dropping mid-file events would corrupt post-hoc analysis.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    events: List[Event] = []
    lines = text.splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines) and not text.endswith("\n"):
                continue  # torn final append from a killed run
            raise LogError(
                f"{path}:{number}: invalid JSON in run log"
            ) from None
        events.append(Event.from_dict(record))
    return events


def sort_events(events: Iterable[Event]) -> List[Event]:
    """A global order over events from any number of writers.

    Wall time first, then writer, then the writer's monotonic ``seq``
    — so each writer's own order is always preserved even when clocks
    collide at the timestamp granularity.
    """
    return sorted(events, key=lambda e: (e.time, e.src, e.seq))


def merge_run_log(
    target: Union[str, Path],
    parts: Optional[Iterable[Path]] = None,
    delete_parts: bool = False,
) -> List[Path]:
    """Append every worker segment's events to the main log.

    Events are copied verbatim (their ``src``/``seq``/``time`` fields
    already tell the full story), so the merge is a pure append — safe
    to run while the main log is still open elsewhere, because both
    writers use ``O_APPEND``.  Returns the segment paths merged.
    """
    target = Path(target)
    part_paths = (
        list(parts) if parts is not None else discover_log_parts(target)
    )
    if not part_paths:
        return []
    with open(target, "a", encoding="utf-8") as sink:
        for part in part_paths:
            for event in read_log(part):
                sink.write(
                    json.dumps(event.to_dict(), sort_keys=True) + "\n"
                )
        sink.flush()
    if delete_parts:
        for part in part_paths:
            Path(part).unlink(missing_ok=True)
    return [Path(part) for part in part_paths]


# -- the process-wide active log ---------------------------------------------

#: The log instrumented call sites write to; ``None`` means logging is
#: off and :func:`emit` is a cheap no-op.
_ACTIVE_LOG: Optional[RunLog] = None


def set_run_log(log: Optional[RunLog]) -> Optional[RunLog]:
    """Install ``log`` as the process-wide event sink.

    Returns the previously active log so callers can restore it
    (services that scope logging to their own lifetime do).
    """
    global _ACTIVE_LOG
    previous = _ACTIVE_LOG
    _ACTIVE_LOG = log
    return previous


def get_run_log() -> Optional[RunLog]:
    """The currently active run log, if any."""
    return _ACTIVE_LOG


def emit(kind: str, **data: object) -> Optional[Event]:
    """Emit an event to the active run log — a no-op when logging is
    off, which is the default and the hot-path guarantee."""
    log = _ACTIVE_LOG
    if log is None:
        return None
    return log.emit(kind, **data)
