"""A process-local registry of counters, gauges, and timers.

The shape is the dask/distributed scheduler-state idiom already used
by ``serve.jobs``: cheap redundant dict-record state behind one lock,
no clever abstractions.  Three families:

* **counters** — monotonically increasing integers (``incr``);
* **gauges** — last-write-wins floats (``gauge``);
* **timers** — duration summaries (count/total/min/max) fed by
  ``observe`` or the :func:`timed_span` context manager.

Pool workers run in separate processes, so their registries are
invisible to the parent; :meth:`MetricsRegistry.flush_delta` packages
everything accumulated since the last flush into a plain dict that
rides back with the chunk result, and the parent folds it in with
:meth:`MetricsRegistry.merge`.  Both directions are plain
JSON-serializable dicts — nothing to pickle but builtins.

:data:`REGISTRY` is the default process-wide registry; phase spans
(synthesize → verify → simulate → aggregate) land there and surface
through ``repro logs rollup`` and the daemon's ``GET /metrics``.
"""

import threading
import time
from typing import Dict, Optional

from .events import emit


class MetricsRegistry:
    """Thread-safe counters/gauges/timers with snapshot/merge/delta."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, Dict[str, float]] = {}
        # Baselines of the last flush_delta(), so workers ship only
        # what the parent has not yet seen.
        self._counter_base: Dict[str, int] = {}
        self._timer_base: Dict[str, Dict[str, float]] = {}

    def incr(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            self._observe_locked(name, seconds)

    def _observe_locked(self, name: str, seconds: float) -> None:
        timer = self.timers.get(name)
        if timer is None:
            self.timers[name] = {
                "count": 1,
                "total": seconds,
                "min": seconds,
                "max": seconds,
            }
        else:
            timer["count"] += 1
            timer["total"] += seconds
            timer["min"] = min(timer["min"], seconds)
            timer["max"] = max(timer["max"], seconds)

    def snapshot(self) -> dict:
        """The full current state as a JSON-serializable dict."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "timers": {
                    name: dict(timer) for name, timer in self.timers.items()
                },
            }

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold another registry's snapshot (or delta) into this one."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            self.gauges.update(snapshot.get("gauges", {}))
            for name, other in snapshot.get("timers", {}).items():
                timer = self.timers.get(name)
                if timer is None:
                    self.timers[name] = dict(other)
                else:
                    timer["count"] += other["count"]
                    timer["total"] += other["total"]
                    timer["min"] = min(timer["min"], other["min"])
                    timer["max"] = max(timer["max"], other["max"])

    def flush_delta(self) -> dict:
        """Everything accumulated since the previous flush.

        Counters and timer count/total are exact deltas; a delta
        period's timer min/max are the registry's current extrema
        (summaries, not invariants — good enough for telemetry).
        """
        with self._lock:
            counters = {}
            for name, value in self.counters.items():
                delta = value - self._counter_base.get(name, 0)
                if delta:
                    counters[name] = delta
            self._counter_base = dict(self.counters)
            timers = {}
            for name, timer in self.timers.items():
                base = self._timer_base.get(name, {"count": 0, "total": 0.0})
                count = timer["count"] - base["count"]
                if count:
                    timers[name] = {
                        "count": count,
                        "total": timer["total"] - base["total"],
                        "min": timer["min"],
                        "max": timer["max"],
                    }
            self._timer_base = {
                name: {"count": timer["count"], "total": timer["total"]}
                for name, timer in self.timers.items()
            }
            return {
                "counters": counters,
                "gauges": dict(self.gauges),
                "timers": timers,
            }

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.timers.clear()
            self._counter_base.clear()
            self._timer_base.clear()


#: The default process-wide registry.
REGISTRY = MetricsRegistry()


class _Span:
    """One timed phase; records a timer and emits a ``span`` event."""

    def __init__(self, name: str, registry: MetricsRegistry) -> None:
        self.name = name
        self.seconds = 0.0
        self._registry = registry
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._started
        self._registry.observe(f"span.{self.name}", self.seconds)
        emit("span", name=self.name, seconds=self.seconds)


def timed_span(name: str, registry: Optional[MetricsRegistry] = None) -> _Span:
    """Time a phase: records ``span.<name>`` in the registry and, when
    a run log is active, emits a ``span`` event on exit.  The span's
    measured ``seconds`` attribute is readable after the block."""
    return _Span(name, registry if registry is not None else REGISTRY)
