"""``repro.obs`` — structured run logs, metrics, and phase spans.

The observability layer of the repository: typed JSONL event logs
(:mod:`repro.obs.events`), a counters/gauges/timers registry with
snapshot/merge semantics (:mod:`repro.obs.metrics`), and
:class:`ObsConfig`, the one switch that turns logging on.  Everything
is off by default; instrumented call sites cost a single ``None``
check until a run log is installed.

See ``docs/OBSERVABILITY.md`` for the event schema and a walkthrough
of the ``repro logs`` analyzers.
"""

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .events import (
    LOG_SCHEMA,
    Event,
    LogError,
    RunLog,
    discover_log_parts,
    emit,
    get_run_log,
    log_part_path,
    merge_run_log,
    new_run_id,
    read_log,
    set_run_log,
    sort_events,
)
from .metrics import REGISTRY, MetricsRegistry, timed_span


@dataclass
class ObsConfig:
    """Where (and whether) a run writes its event log.

    ``log_dir=None`` — the default — means observability is off.  The
    CLI's ``--log-dir`` flag and the service's ``ServiceConfig`` both
    reduce to one of these.
    """

    log_dir: Optional[Union[str, Path]] = None
    run_id: Optional[str] = None

    @property
    def enabled(self) -> bool:
        return self.log_dir is not None

    def open(
        self, worker: Optional[Union[int, str]] = None
    ) -> Optional[RunLog]:
        """A :class:`RunLog` under ``log_dir``, or ``None`` when off."""
        if self.log_dir is None:
            return None
        return RunLog(self.log_dir, run_id=self.run_id, worker=worker)


__all__ = [
    "LOG_SCHEMA",
    "Event",
    "LogError",
    "MetricsRegistry",
    "ObsConfig",
    "REGISTRY",
    "RunLog",
    "discover_log_parts",
    "emit",
    "get_run_log",
    "log_part_path",
    "merge_run_log",
    "new_run_id",
    "read_log",
    "set_run_log",
    "sort_events",
    "timed_span",
]
