"""Reading and formatting the ``BENCH_*.json`` benchmark trajectories.

``benchmarks/conftest.py`` writes one JSON document per benchmark run
(schema ``repro-bench/1``): the headline numbers of a performance
claim — trials/sec, speedups — plus the environment they were measured
on.  CI uploads them as artifacts, so collecting the documents of many
commits yields the repository's performance curve over time.  This
module is the reader half: load a directory (or an explicit file list)
and render the same aligned tables the rest of the analysis layer
produces.

Example::

    from repro.analysis import bench_table, load_bench_documents

    documents = load_bench_documents(".")     # BENCH_*.json in cwd
    print(bench_table(documents))
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from .format import format_rows

#: The schema tag benchmarks/conftest.py writes.
BENCH_SCHEMA = "repro-bench/1"

#: Fields every document carries (written by the session hook).
COMMON_FIELDS = ("schema", "benchmark", "python", "machine", "cpu_count")


def load_bench_documents(
    source: Union[str, Path, Sequence[Union[str, Path]]] = ".",
) -> List[Dict[str, object]]:
    """Load ``BENCH_*.json`` documents from a directory or file list.

    Args:
        source: A directory to glob for ``BENCH_*.json``, or an
            explicit sequence of file paths (e.g. the same file
            collected from many CI runs).

    Returns:
        One dict per document, sorted by benchmark name then input
        order — so trajectories of the same benchmark stay adjacent
        and chronological.

    Raises:
        ValueError: on documents that do not carry the expected
            schema tag (naming the file, in the repository's boundary
            style).
    """
    if isinstance(source, (str, Path)):
        paths: Iterable[Path] = sorted(Path(source).glob("BENCH_*.json"))
    else:
        paths = [Path(p) for p in source]
    documents: List[Dict[str, object]] = []
    for order, path in enumerate(paths):
        document = json.loads(path.read_text())
        if document.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{path}: expected schema {BENCH_SCHEMA!r}, got "
                f"{document.get('schema')!r}"
            )
        document["_path"] = str(path)
        document["_order"] = order
        documents.append(document)
    documents.sort(key=lambda d: (str(d.get("benchmark")), d["_order"]))
    return documents


def bench_table(documents: Sequence[Dict[str, object]]) -> str:
    """The trajectory documents as one aligned ASCII table.

    Columns are the union of all benchmark-specific fields (the
    bookkeeping fields come first); optional fields a document omits or
    nulls out — e.g. the PR 4 ``speedup`` numbers, which third-party or
    explorer-timing documents do not carry — print as ``-`` so
    heterogeneous benchmarks share one table.
    """
    rows = []
    for document in documents:
        rows.append({
            key: round(value, 3) if isinstance(value, float) else value
            for key, value in document.items()
            if key == "benchmark"
            or (not key.startswith("_") and key not in COMMON_FIELDS)
        })
    return format_rows(rows, headers=["benchmark"],
                       empty="(no benchmark documents)")
