"""Data generators for every figure of the paper's evaluation.

Each ``fig*`` function returns the exact series the corresponding paper
figure plots, as plain data structures; the benchmark harness prints
them and asserts the paper's headline properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..baselines.drp import application_guarantee
from ..core.app_model import Application
from ..core.latency import drp_latency_bound, latency_lower_bound
from ..timing import DEFAULT_CONSTANTS, GlossyConstants, energy_saving, round_length_ms

#: Parameter grids of the paper's figures.
FIG6_DIAMETERS = (1, 2, 3, 4, 5, 6, 7, 8)
FIG6_SLOTS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
FIG6_PAYLOAD = 10  # bytes, "Payload is l = 10 B and N = 2"

FIG7_DIAMETER = 4
FIG7_SLOTS = tuple(range(1, 31))
FIG7_PAYLOADS = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class Fig6Data:
    """Round length ``Tr`` [ms] as a function of ``H`` and ``B``."""

    payload_bytes: int
    diameters: Tuple[int, ...]
    slots: Tuple[int, ...]
    #: ``grid[h][b]`` -> Tr in ms, keyed by actual H and B values.
    grid: Dict[int, Dict[int, float]]

    def series(self, diameter: int) -> List[float]:
        return [self.grid[diameter][b] for b in self.slots]


def fig6_round_length(
    payload_bytes: int = FIG6_PAYLOAD,
    diameters: Sequence[int] = FIG6_DIAMETERS,
    slots: Sequence[int] = FIG6_SLOTS,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> Fig6Data:
    """Fig. 6: sample values of ``Tr`` for network diameters and slots."""
    grid: Dict[int, Dict[int, float]] = {}
    for h in diameters:
        grid[h] = {
            b: round_length_ms(payload_bytes, h, b, constants) for b in slots
        }
    return Fig6Data(
        payload_bytes=payload_bytes,
        diameters=tuple(diameters),
        slots=tuple(slots),
        grid=grid,
    )


@dataclass(frozen=True)
class Fig7Data:
    """Relative radio-on saving ``E`` vs. slots per round and payload."""

    diameter: int
    slots: Tuple[int, ...]
    payloads: Tuple[int, ...]
    #: ``series[l]`` -> saving per B, keyed by payload size.
    series: Dict[int, List[float]]


def fig7_energy_savings(
    diameter: int = FIG7_DIAMETER,
    slots: Sequence[int] = FIG7_SLOTS,
    payloads: Sequence[int] = FIG7_PAYLOADS,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> Fig7Data:
    """Fig. 7: energy benefit of rounds vs. the no-rounds design."""
    series = {
        l: [energy_saving(l, diameter, b, constants) for b in slots]
        for l in payloads
    }
    return Fig7Data(
        diameter=diameter,
        slots=tuple(slots),
        payloads=tuple(payloads),
        series=series,
    )


@dataclass(frozen=True)
class LatencyComparison:
    """TTW vs. DRP latency for one application (the 2x claim)."""

    app_name: str
    round_length: float
    ttw_bound: float
    drp_bound: float
    drp_guarantee: float

    @property
    def speedup(self) -> float:
        return self.drp_bound / self.ttw_bound


def latency_vs_drp(
    app: Application, round_length: float
) -> LatencyComparison:
    """The paper's headline comparison: eq. (13) vs. the 2*Tr baseline."""
    return LatencyComparison(
        app_name=app.name,
        round_length=round_length,
        ttw_bound=latency_lower_bound(app, round_length),
        drp_bound=drp_latency_bound(app, round_length),
        drp_guarantee=application_guarantee(app, round_length),
    )
