"""Formatting of Monte-Carlo campaign statistics as tables and series.

The campaign layer (:mod:`repro.mc`) produces numbers; this module
renders them the way the rest of the evaluation output looks — the
aligned ASCII tables of :mod:`repro.analysis.format` and the
``label: (x, y) ...`` figure series the benchmarks print.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..mc.stats import CampaignStats, DistSummary, RateEstimate
from .format import format_series, format_table


def format_rate(estimate: RateEstimate, digits: int = 4) -> str:
    """``rate [low, high]`` with the 95 % Wilson interval."""
    low, high = estimate.ci
    return (
        f"{estimate.rate:.{digits}f} "
        f"[{low:.{digits}f}, {high:.{digits}f}]"
    )


def format_tail(summary: Optional[DistSummary], digits: int = 2) -> str:
    """``p50/p95/p99`` of a distribution summary (``-`` when absent)."""
    if summary is None:
        return "-"
    return (
        f"{summary.p50:.{digits}f}/{summary.p95:.{digits}f}"
        f"/{summary.p99:.{digits}f}"
    )


def campaign_rows(result) -> List[Dict[str, object]]:
    """One flat metrics dict per grid point of a campaign result."""
    rows: List[Dict[str, object]] = []
    for point in result.points:
        row: Dict[str, object] = {"scenario": point.scenario}
        for name, value in point.point.items():
            row[name] = value
        stats: CampaignStats = point.stats
        row["trials"] = stats.n_trials
        row["miss"] = format_rate(stats.miss)
        row["delivery"] = format_rate(stats.delivery)
        row["beacon"] = f"{stats.beacon.rate:.4f}"
        row["radio p50/p95/p99"] = format_tail(stats.radio_on)
        row["switch p50/p95/p99"] = format_tail(stats.switch_delay)
        row["collisions"] = stats.collisions
        rows.append(row)
    return rows


def campaign_table(result, verbose: bool = False) -> str:
    """Render a campaign result as an aligned ASCII table.

    With ``verbose=True`` and a result that carries phase timings
    (``wall_seconds``), a per-phase duration line follows the table.
    """
    rows = campaign_rows(result)
    if not rows:
        return "(no campaign points)"
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    body = [[row.get(header, "-") for header in headers] for row in rows]
    table = format_table(headers, body, float_fmt="{:.4f}")
    wall = getattr(result, "wall_seconds", None)
    if verbose and wall:
        phases = "  ".join(
            f"{phase}={seconds:.3f}s" for phase, seconds in wall.items()
        )
        table += f"\nphases: {phases}  total={sum(wall.values()):.3f}s"
    return table


def flow_table(stats: CampaignStats) -> str:
    """Per-flow deadline-miss table of one grid point."""
    if not stats.flows:
        return "(no flows)"
    rows = [
        [flow, estimate.total, format_rate(estimate)]
        for flow, estimate in stats.flows.items()
    ]
    return format_table(["flow", "instances", "miss rate [95% CI]"], rows)


def campaign_series(
    result, x_param: str, metric: str = "miss", label: Optional[str] = None
) -> str:
    """One sweep axis as a printable figure series.

    Args:
        result: A :class:`repro.mc.CampaignResult`.
        x_param: Sweep parameter to use as the x axis.
        metric: ``miss``, ``delivery``, or ``beacon`` (the rate is
            plotted; intervals belong in the table).
        label: Series label (default ``metric vs x_param``).
    """
    xs: List[object] = []
    ys: List[float] = []
    for point in result.points:
        if x_param not in point.point:
            continue
        xs.append(point.point[x_param])
        ys.append(getattr(point.stats, metric).rate)
    return format_series(label or f"{metric} vs {x_param}", xs, ys)
