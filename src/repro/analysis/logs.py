"""Post-hoc analysis of structured run logs (``repro.obs``).

A run log is a JSONL file of :class:`~repro.obs.events.Event` records
— possibly still accompanied by unmerged worker segments.  This module
turns one into the tables the ``repro logs`` CLI prints:

* :func:`summarize_rows` — one row per event kind (count, writers,
  time span), the "what happened at all" view;
* :func:`timeline_rows` — the globally ordered event sequence with
  offsets from the first event, the "what happened when" view;
* :func:`phase_rows` — per-phase duration rollup from the ``span``
  events the :func:`~repro.obs.metrics.timed_span` instrumentation
  emits (synthesize / verify / simulate / aggregate);
* :func:`exploration_story` — reconstructs a sharded exploration
  (rounds published, blocks claimed/stolen, requeues after shard
  deaths, respawns, merges) from its events alone — the post-mortem
  for a run whose process is long gone.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..obs.events import Event, discover_log_parts, read_log, sort_events
from .format import format_rows


def load_events(
    source: Union[str, Path],
    run: Optional[str] = None,
    kinds: Optional[Sequence[str]] = None,
) -> List[Event]:
    """Events from a log file or a log directory, globally ordered.

    A file source also picks up its unmerged ``.part-*`` segments —
    analysis must see a killed run's worker events even when nobody
    lived to merge them.  A directory source reads every ``*.jsonl``
    in it.  ``run``/``kinds`` filter by run id / event kind.
    """
    source = Path(source)
    if source.is_dir():
        paths = sorted(source.glob("*.jsonl"))
    else:
        paths = [source] + [
            part for part in discover_log_parts(source) if part.exists()
        ]
    events: List[Event] = []
    for path in paths:
        events.extend(read_log(path))
    if run is not None:
        events = [event for event in events if event.run == run]
    if kinds is not None:
        wanted = set(kinds)
        events = [event for event in events if event.kind in wanted]
    return sort_events(events)


def _compact(data: Dict[str, object], limit: int = 56) -> str:
    text = " ".join(f"{key}={value!r}" for key, value in sorted(data.items()))
    return text if len(text) <= limit else text[: limit - 1] + "…"


def summarize_rows(events: Sequence[Event]) -> List[Dict[str, object]]:
    """One row per event kind: count, distinct writers, first/last."""
    if not events:
        return []
    start = events[0].time
    by_kind: Dict[str, List[Event]] = {}
    for event in events:
        by_kind.setdefault(event.kind, []).append(event)
    rows = []
    for kind in sorted(by_kind):
        group = by_kind[kind]
        rows.append({
            "kind": kind,
            "count": len(group),
            "writers": len({event.src for event in group}),
            "first": group[0].time - start,
            "last": group[-1].time - start,
        })
    return rows


def summarize_table(events: Sequence[Event]) -> str:
    """The per-kind summary as an aligned ASCII table."""
    return format_rows(
        summarize_rows(events),
        headers=("kind", "count", "writers", "first", "last"),
        empty="(no events)",
        float_fmt="{:.3f}",
    )


def timeline_rows(
    events: Sequence[Event], limit: Optional[int] = None
) -> List[Dict[str, object]]:
    """Globally ordered event rows with offsets from the first event."""
    if not events:
        return []
    start = events[0].time
    shown = events if limit is None else events[:limit]
    return [
        {
            "t": event.time - start,
            "src": event.src,
            "kind": event.kind,
            "data": _compact(dict(event.data)),
        }
        for event in shown
    ]


def timeline_table(events: Sequence[Event], limit: Optional[int] = None) -> str:
    """The event timeline as an aligned ASCII table."""
    table = format_rows(
        timeline_rows(events, limit=limit),
        headers=("t", "src", "kind", "data"),
        empty="(no events)",
        float_fmt="{:.3f}",
    )
    if limit is not None and len(events) > limit:
        table += f"\n({len(events) - limit} more event(s) not shown)"
    return table


def phase_rows(events: Sequence[Event]) -> List[Dict[str, object]]:
    """Per-phase duration rollup from ``span`` events.

    One row per span name (synthesize, verify, simulate, aggregate,
    ...): how many spans ran, total/min/max seconds.
    """
    by_name: Dict[str, List[float]] = {}
    for event in events:
        if event.kind != "span":
            continue
        name = str(event.data.get("name"))
        seconds = float(event.data.get("seconds", 0.0))
        by_name.setdefault(name, []).append(seconds)
    rows = []
    for name in sorted(by_name):
        seconds = by_name[name]
        rows.append({
            "phase": name,
            "spans": len(seconds),
            "total_s": sum(seconds),
            "min_s": min(seconds),
            "max_s": max(seconds),
        })
    return rows


def phase_table(events: Sequence[Event]) -> str:
    """The phase rollup as an aligned ASCII table."""
    return format_rows(
        phase_rows(events),
        headers=("phase", "spans", "total_s", "min_s", "max_s"),
        empty="(no span events)",
        float_fmt="{:.4f}",
    )


def exploration_story(events: Sequence[Event]) -> Dict[str, object]:
    """Reconstruct a sharded exploration from its run log.

    Works from events alone — including the segments a SIGKILLed
    shard left behind — so the full story (what was proposed, who
    claimed what, which blocks were stolen from a dead shard, whether
    a replacement was spawned, what the merges recovered) is
    available post-mortem.
    """
    rounds: List[Dict[str, object]] = []
    claims: List[Dict[str, object]] = []
    requeues: List[Dict[str, object]] = []
    respawns: List[Dict[str, object]] = []
    merges: List[Dict[str, object]] = []
    shards_started: List[int] = []
    errors: List[Dict[str, object]] = []
    for event in events:
        data = dict(event.data)
        if event.kind == "dse.publish":
            rounds.append(data)
        elif event.kind == "shard.start":
            shards_started.append(int(data.get("shard", -1)))
        elif event.kind == "shard.claim":
            claims.append(data)
        elif event.kind == "dse.requeue":
            requeues.append(data)
        elif event.kind == "dse.respawn":
            respawns.append(data)
        elif event.kind == "dse.merge":
            merges.append(data)
        elif event.kind == "shard.error":
            errors.append(data)
    return {
        "rounds": rounds,
        "shards_started": sorted(set(shards_started)),
        "claims": claims,
        "stolen": [claim for claim in claims if claim.get("stolen")],
        "requeues": requeues,
        "respawns": respawns,
        "merges": merges,
        "errors": errors,
        "blocks_published": sum(int(r.get("blocks", 0)) for r in rounds),
        "blocks_requeued": sum(int(r.get("blocks", 0)) for r in requeues),
        "executed": sum(int(m.get("executed", 0)) for m in merges),
    }
