"""Formatting of design-space exploration results — tables and series.

The explorer (:mod:`repro.dse`) produces scored candidates; this module
renders them the way the rest of the evaluation output looks: aligned
ASCII tables (one row per candidate / per front point) and the
``label: (x, y) ...`` figure series the benchmarks print.
:func:`axis_series` is the figures hook — it regroups an exploration
along one axis, which reproduces the paper's Fig. 6/7 shape (one
series per payload, slots on the x axis) directly from measured
exploration data.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .format import format_rows, format_series


def exploration_rows(result) -> List[Dict[str, object]]:
    """One flat dict per explored candidate, in selection order.

    Columns: the axis assignment, the measured objective values,
    dominance ``rank``, a ``front`` marker, whether the evaluation was
    restored from the store, and the error of failed candidates.
    """
    rows: List[Dict[str, object]] = []
    for candidate in result.candidates:
        row: Dict[str, object] = {}
        for name, value in candidate.assignment.items():
            row[name] = value
        for objective in result.objectives:
            row[objective.name] = (
                candidate.values[objective.name]
                if candidate.values is not None else "-"
            )
        row["rank"] = candidate.rank if candidate.rank is not None else "-"
        row["front"] = "*" if candidate.on_front else ""
        row["cached"] = "yes" if candidate.cached else ""
        if candidate.error is not None:
            row["error"] = candidate.error
        rows.append(row)
    return rows


def exploration_table(result) -> str:
    """Every explored candidate as one aligned ASCII table."""
    return format_rows(exploration_rows(result), empty="(no candidates)",
                       float_fmt="{:.4f}")


def front_rows(result) -> List[Dict[str, object]]:
    """One dict per Pareto-front point, sorted by the first objective.

    Besides the assignment and the objective values, each row records
    the evaluation's provenance: ``campaigns`` (MC campaigns spent on
    the candidate — 0 means the result came for free from an analytic
    bound or a failed synthesis) and ``source_shard`` (the distributed
    shard that executed it, ``-`` for single-process runs), so
    saved-campaign claims are auditable straight from the report.
    """
    first = result.objectives[0]
    rows = []
    for candidate in sorted(
        result.front, key=lambda c: first.sign * c.values[first.name]
    ):
        row: Dict[str, object] = dict(candidate.assignment)
        for objective in result.objectives:
            row[objective.name] = candidate.values[objective.name]
        row["campaigns"] = candidate.evaluation.campaigns
        shard = candidate.evaluation.shard
        row["source_shard"] = shard if shard is not None else "-"
        rows.append(row)
    return rows


def front_table(result) -> str:
    """The Pareto front as an aligned ASCII table."""
    return format_rows(front_rows(result), empty="(empty front)",
                       float_fmt="{:.4f}")


def front_series(result, x: str, y: str, label: Optional[str] = None) -> str:
    """The front as a printable ``(x, y)`` series of two objectives.

    Points are sorted by the ``x`` objective, so the series traces the
    trade-off curve a designer reads off the frontier.
    """
    names = {obj.name for obj in result.objectives}
    for objective in (x, y):
        if objective not in names:
            raise ValueError(
                f"objective {objective!r} was not explored; available: "
                f"{', '.join(sorted(names))}"
            )
    points = sorted(
        ((c.values[x], c.values[y]) for c in result.front),
        key=lambda pair: pair[0],
    )
    return format_series(
        label or f"front: {y} vs {x}",
        [p[0] for p in points],
        [p[1] for p in points],
    )


def axis_series(
    result,
    series_axis: str,
    x_axis: str,
    objective: str,
) -> List[str]:
    """Figure series per value of one axis — the Fig. 6/7 hook.

    Groups the exploration's healthy candidates by ``series_axis``,
    plots ``objective`` against ``x_axis`` within each group, and
    returns one formatted series per group (e.g. one energy-saving
    curve per payload size over the slots axis, which is exactly the
    paper's Fig. 7 layout).
    """
    if not any(obj.name == objective for obj in result.objectives):
        raise ValueError(
            f"objective {objective!r} was not explored; available: "
            f"{', '.join(obj.name for obj in result.objectives)}"
        )
    if result.candidates:
        known = result.candidates[0].assignment
        for axis in (series_axis, x_axis):
            if axis not in known:
                raise ValueError(
                    f"axis {axis!r} not in the exploration's assignment "
                    f"(axes: {', '.join(known)})"
                )
    groups: Dict[object, List] = {}
    for candidate in result.candidates:
        if candidate.values is None:
            continue
        groups.setdefault(candidate.assignment[series_axis], []).append(
            candidate
        )

    def _ordering(values, key=lambda value: value):
        # Numeric values order numerically, everything else as text.
        try:
            return sorted(values, key=lambda v: float(key(v)))
        except (TypeError, ValueError):
            return sorted(values, key=lambda v: str(key(v)))

    series = []
    for value in _ordering(groups):
        ordered = _ordering(groups[value], key=lambda c: c.assignment[x_axis])
        series.append(format_series(
            f"{series_axis}={value}",
            [c.assignment[x_axis] for c in ordered],
            [c.values[objective] for c in ordered],
        ))
    return series
