"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
this module renders them as aligned ASCII tables so the bench output is
directly comparable to the figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned ASCII table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(rendered[0]))
    ]
    lines = []
    for idx, cells in enumerate(rendered):
        line = "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
        lines.append(line)
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_rows(
    rows: Sequence[dict],
    headers: Sequence[str] = (),
    empty: str = "(no rows)",
    float_fmt: str = "{:.2f}",
    missing: str = "-",
) -> str:
    """Render dict rows as one table over the union of their keys.

    Headers are the given prefix plus every further key in
    first-appearance order; cells a row misses — or carries as ``None``
    — render as ``missing``, so heterogeneous rows share one table.
    """
    if not rows:
        return empty
    headers = list(headers)
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    body = []
    for row in rows:
        body.append([
            missing if row.get(header) is None else row[header]
            for header in headers
        ])
    return format_table(headers, body, float_fmt=float_fmt)


def format_series(label: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Render one figure series as ``label: (x, y) ...`` pairs."""
    pairs = ", ".join(f"({x}, {y:.3g})" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"
