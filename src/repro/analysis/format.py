"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
this module renders them as aligned ASCII tables so the bench output is
directly comparable to the figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned ASCII table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_fmt.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(rendered[0]))
    ]
    lines = []
    for idx, cells in enumerate(rendered):
        line = "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
        lines.append(line)
        if idx == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series(label: str, xs: Sequence[object], ys: Sequence[float]) -> str:
    """Render one figure series as ``label: (x, y) ...`` pairs."""
    pairs = ", ".join(f"({x}, {y:.3g})" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"
