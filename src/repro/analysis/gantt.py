"""ASCII Gantt rendering of synthesized schedules.

Renders one hyperperiod of a :class:`~repro.core.schedule.ModeSchedule`
as a per-node timeline: task executions as ``#`` blocks on their node's
lane, communication rounds as ``R`` blocks on a shared network lane.
Useful for eyeballing schedules in examples and docs::

    net   |.R.....R........|
    n1    |#.......        |
    n2    |........#.      |
"""

from __future__ import annotations

from typing import Dict, List

from ..core.modes import Mode
from ..core.schedule import ModeSchedule


def render_gantt(
    mode: Mode,
    schedule: ModeSchedule,
    width: int = 72,
) -> str:
    """Render one hyperperiod as an ASCII chart.

    Args:
        mode: The scheduled mode (for task mappings and WCETs).
        schedule: Its synthesized schedule.
        width: Characters used for the hyperperiod timeline.

    Returns:
        A multi-line string: a time ruler, one ``net`` lane showing
        rounds, and one lane per node showing task instances.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    lcm = schedule.hyperperiod
    scale = width / lcm

    def span(start: float, length: float) -> range:
        begin = int(round(start * scale))
        end = max(begin + 1, int(round((start + length) * scale)))
        return range(min(begin, width - 1), min(end, width))

    # Network lane.
    net = ["."] * width
    for rnd in schedule.rounds:
        for i in span(rnd.start, schedule.config.round_length):
            net[i] = "R"

    # Node lanes with periodic task instances.
    lanes: Dict[str, List[str]] = {}
    for app in mode.applications:
        count = round(lcm / app.period)
        for name, task in app.tasks.items():
            lane = lanes.setdefault(task.node, ["."] * width)
            offset = schedule.task_offsets.get(name)
            if offset is None:
                continue
            marker = name[-1] if name else "#"
            for k in range(count):
                for i in span(offset + k * app.period, task.wcet):
                    lane[i] = marker if lane[i] == "." else "X"

    label_width = max([len("net")] + [len(n) for n in lanes]) + 2
    lines = []
    ruler = _ruler(lcm, width)
    lines.append(" " * label_width + ruler)
    lines.append(f"{'net':<{label_width}}|{''.join(net)}|")
    for node in sorted(lanes):
        lines.append(f"{node:<{label_width}}|{''.join(lanes[node])}|")
    return "\n".join(lines)


def _ruler(lcm: float, width: int) -> str:
    """A sparse time ruler: 0 at the left, the hyperperiod at the right."""
    left = "0"
    right = f"{lcm:g}"
    middle = f"{lcm / 2:g}"
    ruler = [" "] * (width + 2)
    ruler[1 : 1 + len(left)] = left
    mid_pos = 1 + width // 2 - len(middle) // 2
    ruler[mid_pos : mid_pos + len(middle)] = middle
    start_right = max(0, width + 1 - len(right))
    ruler[start_right : start_right + len(right)] = right
    return "".join(ruler)


def render_round_table(schedule: ModeSchedule) -> str:
    """Compact textual round table (start time and slot contents)."""
    lines = ["round  start      slots"]
    for index, rnd in enumerate(schedule.rounds):
        slots = ", ".join(rnd.messages) if rnd.messages else "(empty)"
        lines.append(f"{index:>5}  {rnd.start:>9.3f}  {slots}")
    return "\n".join(lines)
