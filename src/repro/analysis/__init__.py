"""Evaluation analysis: figure/table data generators and formatting."""

from .figures import (
    FIG6_DIAMETERS,
    FIG6_PAYLOAD,
    FIG6_SLOTS,
    FIG7_DIAMETER,
    FIG7_PAYLOADS,
    FIG7_SLOTS,
    Fig6Data,
    Fig7Data,
    LatencyComparison,
    fig6_round_length,
    fig7_energy_savings,
    latency_vs_drp,
)
from .bench import bench_table, load_bench_documents
from .exploration import (
    axis_series,
    exploration_rows,
    exploration_table,
    front_rows,
    front_series,
    front_table,
)
from .campaign import (
    campaign_rows,
    campaign_series,
    campaign_table,
    flow_table,
    format_rate,
    format_tail,
)
from .format import format_series, format_table
from .gantt import render_gantt, render_round_table
from .logs import (
    exploration_story,
    load_events,
    phase_rows,
    phase_table,
    summarize_rows,
    summarize_table,
    timeline_rows,
    timeline_table,
)
from .tables import table1_rows, table2_rows

__all__ = [
    "FIG6_DIAMETERS",
    "FIG6_PAYLOAD",
    "FIG6_SLOTS",
    "FIG7_DIAMETER",
    "FIG7_PAYLOADS",
    "FIG7_SLOTS",
    "Fig6Data",
    "Fig7Data",
    "LatencyComparison",
    "axis_series",
    "bench_table",
    "campaign_rows",
    "campaign_series",
    "campaign_table",
    "exploration_rows",
    "exploration_story",
    "exploration_table",
    "fig6_round_length",
    "fig7_energy_savings",
    "flow_table",
    "front_rows",
    "front_series",
    "front_table",
    "format_rate",
    "format_series",
    "format_table",
    "format_tail",
    "latency_vs_drp",
    "load_bench_documents",
    "load_events",
    "phase_rows",
    "phase_table",
    "render_gantt",
    "render_round_table",
    "summarize_rows",
    "summarize_table",
    "table1_rows",
    "table2_rows",
    "timeline_rows",
    "timeline_table",
]
