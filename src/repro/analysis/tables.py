"""Data generators for the paper's tables.

Table I lists the Glossy implementation constants; Table II lists the
ILP variables and the constants used by the scheduler.  Both are
regenerated here so the benchmark output can be compared line-by-line
with the paper.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.schedule import SchedulingConfig
from ..timing import DEFAULT_CONSTANTS, GlossyConstants


def table1_rows(
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> List[Tuple[str, str]]:
    """Table I: constants of the public Glossy implementation [17]."""
    return [
        ("T_wake-up", f"{constants.t_wakeup * 1e6:.0f} us"),
        ("T_start", f"{constants.t_start * 1e6:.0f} us"),
        ("T_d", f"{constants.t_d * 1e6:.0f} us"),
        ("L_cal", f"{constants.l_cal} B"),
        ("L_header", f"{constants.l_header} B"),
        ("T_gap", f"{constants.t_gap * 1e3:.0f} ms"),
        ("R_bit", f"{constants.bitrate / 1e3:.0f} kbps"),
    ]


def table2_rows(config: SchedulingConfig, hyperperiod: float) -> List[Tuple[str, str, str]]:
    """Table II (appendix): ILP variable domains and constants."""
    big_m = config.big_m if config.big_m is not None else 10.0 * hyperperiod
    return [
        ("tau.o", "Continuous", "0 <= tau.o < tau.p"),
        ("m.o", "Continuous", "0 <= m.o < m.p"),
        ("m.d", "Continuous", "0 <= m.d <= m.p"),
        ("sigma", "Binary", "0 or 1"),
        ("lambda", "Binary", "0 or 1"),
        ("r.t", "Continuous", f"0 <= r.t <= {hyperperiod:g} - Tr"),
        ("r.[B]", "Integer", "0 <= r.Bs <= 1"),
        ("r0.Bi", "Integer", "0 <= r0.Bi <= 1"),
        ("ka", "Integer", "0 <= ka <= LCM/m.p"),
        ("kd", "Integer", "-1 <= kd <= LCM/m.p"),
        ("Tr", "Constant", f"{config.round_length:g}"),
        ("B", "Constant", f"{config.slots_per_round}"),
        ("Tmax", "Constant", f"{config.max_round_gap}"),
        ("MM", "Constant", f"{big_m:g}"),
        ("mm", "Constant", f"{config.mm:g}"),
    ]
