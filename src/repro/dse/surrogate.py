"""Model-guided sampling: a cheap surrogate spends campaigns near the front.

Exhaustive exploration wastes most of its Monte-Carlo budget on
candidates far from the Pareto front.  The :class:`SurrogateSampler`
closes that gap with a classic model-guided loop:

1. **Seed from analytic bounds.**  The first proposal round is the
   non-dominated set of the objectives' closed-form bounds (paper
   eq. 13 for latency, the Sec. V radio-on model for energy) — the
   same cheap model the adaptive sampler prunes with.  Every
   analytic-bound-front candidate is *always* proposed, so the model
   can never starve the region the cheap physics already knows is
   optimal.
2. **Fit a ridge regressor per objective** on the measured
   evaluations, over typed axis feature vectors (numeric axes
   standardized, categorical axes one-hot) — numpy least squares on an
   L2-augmented system, nothing beyond the stdlib + numpy.
3. **Acquire by expected improvement vs. the measured front**: each
   unmeasured candidate's predicted objective vector is scored with
   the additive-epsilon indicator against the current front
   (:func:`expected_improvement`) and the most-improving candidates
   are proposed next, up to a campaign ``budget`` (default: half the
   grid).

The sampler is **iterative** — it implements ``propose(space,
objectives, measured)`` and the explorer drives it in rounds, feeding
measured objective vectors back after every round (non-iterative
samplers keep the one-shot ``select`` protocol).  Everything is
deterministic under a fixed seed: ties break on grid index, the ridge
solve is exact, and the proposal order is reproducible across runs and
platforms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .pareto import dominance_rank
from .samplers import Sampler, SamplerError, _halton, _PRIMES
from .objectives import Objective, resolve_objectives
from .space import Axis, Space

Assignment = Dict[str, object]

#: A measured candidate as the explorer reports it back: the axis
#: assignment plus the *normalized-to-minimization* objective vector
#: (``None`` for failed evaluations, which the model skips).
Measured = Dict[str, object]


def expected_improvement(
    point: Sequence[float],
    front: Sequence[Sequence[float]],
) -> float:
    """Predicted improvement of ``point`` over ``front`` (minimization).

    The additive-epsilon indicator: ``eps(p, F) = min over f in F of
    max_j (p_j - f_j)`` is the smallest amount ``p`` would have to
    improve (uniformly, additively) to weakly dominate some front
    point; the acquisition is its negation, so **larger is better**:

    * ``> 0`` — ``p`` already dominates part of the front (every
      coordinate at least matches some front point, at least one
      improves);
    * ``= 0`` — ``p`` ties a front point;
    * ``< 0`` — ``p`` is predicted dominated by ``eps`` in its worst
      coordinate.

    Monotone by construction: decreasing any coordinate of ``point``
    (improving it, in minimization) never decreases the acquisition.
    An empty front scores ``+inf`` (anything improves on nothing).
    """
    if not front:
        return float("inf")
    eps = min(
        max(p - f for p, f in zip(point, reference))
        for reference in front
    )
    return -eps


# -- typed axis features ------------------------------------------------------


def _numeric(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


class _FeatureMap:
    """Typed axis values -> a fixed-width design vector.

    Numeric axes contribute one standardized column (over the axis'
    declared values, so the scale is known before any measurement);
    non-numeric axes contribute one indicator column per declared
    value.  A constant intercept column is appended by the fit.
    """

    def __init__(self, space: Space) -> None:
        self.columns: List[Tuple[str, object]] = []
        self._numeric_stats: Dict[str, Tuple[float, float]] = {}
        for axis in space.axes:
            values = [_numeric(value) for value in axis.values]
            if all(value is not None for value in values) and values:
                mean = sum(values) / len(values)
                spread = max(values) - min(values)
                self._numeric_stats[axis.name] = (mean, spread or 1.0)
                self.columns.append((axis.name, None))
            else:
                for value in axis.values:
                    self.columns.append((axis.name, repr(value)))

    def vector(self, assignment: Assignment) -> List[float]:
        row: List[float] = []
        for name, tag in self.columns:
            if tag is None:
                mean, spread = self._numeric_stats[name]
                row.append((float(assignment[name]) - mean) / spread)
            else:
                row.append(1.0 if repr(assignment[name]) == tag else 0.0)
        return row


def _ridge_fit(
    rows: Sequence[Sequence[float]],
    targets: Sequence[float],
    alpha: float = 1e-3,
) -> List[float]:
    """Least-squares ridge weights (with intercept) via numpy lstsq."""
    import numpy

    design = numpy.asarray(
        [[*row, 1.0] for row in rows], dtype=numpy.float64
    )
    y = numpy.asarray(targets, dtype=numpy.float64)
    width = design.shape[1]
    augmented = numpy.vstack([
        design, numpy.sqrt(alpha) * numpy.eye(width)
    ])
    padded = numpy.concatenate([y, numpy.zeros(width)])
    weights, *_ = numpy.linalg.lstsq(augmented, padded, rcond=None)
    return [float(w) for w in weights]


def _predict(weights: Sequence[float], row: Sequence[float]) -> float:
    return sum(w * x for w, x in zip(weights, [*row, 1.0]))


# -- the sampler --------------------------------------------------------------


class SurrogateSampler(Sampler):
    """Iterative, model-guided candidate selection.

    Args:
        budget: Total campaign budget — the sampler never proposes
            more than this many candidates across all rounds
            (``None``: half the grid, rounded up — the explorer's
            cheap-front acceptance bar).
        round_size: Candidates proposed per model round after the
            analytic seed round (``None``: an even split of the
            remaining budget over ``rounds`` rounds).
        rounds: Upper bound on model-guided rounds after the seed
            round.
        seed: Reserved for tie-breaking reproducibility; the sampler
            is fully deterministic, and equal seeds give equal
            proposal sequences by construction.
        explore_margin: Keep proposing while the best predicted
            acquisition is above ``-explore_margin`` — a small slack
            so near-ties of the predicted front are still measured
            instead of trusting the model blindly.

    The explorer recognizes the sampler through ``iterative = True``
    and calls :meth:`propose` with everything measured so far;
    :attr:`last_rounds` records how many rounds the last exploration
    took.
    """

    name = "surrogate"
    iterative = True

    def __init__(
        self,
        budget: Optional[int] = None,
        round_size: Optional[int] = None,
        rounds: int = 8,
        seed: int = 0,
        explore_margin: float = 0.05,
    ) -> None:
        for label, value in (("budget", budget), ("round_size", round_size)):
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
                or value < 1
            ):
                raise SamplerError(
                    f"{label} must be an integer >= 1 or None, got {value!r}"
                )
        if not isinstance(rounds, int) or isinstance(rounds, bool) \
                or rounds < 1:
            raise SamplerError(
                f"rounds must be an integer >= 1, got {rounds!r}"
            )
        self.budget = budget
        self.round_size = round_size
        self.rounds = rounds
        self.seed = seed
        self.explore_margin = explore_margin
        #: Rounds the last exploration took (seed round included).
        self.last_rounds = 0

    # One-shot protocol: behave like the analytic seed round so the
    # sampler still works where only ``select`` is driven.
    def select(
        self, space: Space, objectives: Sequence[Objective]
    ) -> List[Assignment]:
        return self.propose(space, objectives, [])

    # -- iterative protocol ---------------------------------------------------

    def propose(
        self,
        space: Space,
        objectives: Sequence[Objective],
        measured: Sequence[Measured],
    ) -> List[Assignment]:
        """The next round of assignments (empty list: exploration done).

        ``measured`` carries one ``{"assignment": ..., "vector":
        [...] | None}`` entry per already-evaluated candidate, vectors
        normalized to minimization in objective order.
        """
        objectives = resolve_objectives(objectives)
        assignments = list(space.assignments())
        budget = self.budget if self.budget is not None else max(
            1, -(-space.size // 2)
        )

        seen = {self._key(space, m["assignment"]) for m in measured}
        unmeasured = [
            (index, assignment)
            for index, assignment in enumerate(assignments)
            if self._key(space, assignment) not in seen
        ]
        remaining = budget - len(measured)
        if remaining <= 0 or not unmeasured:
            return []

        if not measured:
            self.last_rounds = 1
            return self._seed_round(
                space, objectives, assignments, unmeasured, budget
            )

        if self.last_rounds >= self.rounds + 1:
            return []
        self.last_rounds += 1

        front = [
            list(m["vector"]) for m in measured
            if m.get("vector") is not None
        ]
        if front:
            ranks = dominance_rank([tuple(v) for v in front])
            front = [v for v, rank in zip(front, ranks) if rank == 0]

        predictions = self._predict_all(
            space, objectives, measured, unmeasured
        )
        scored = sorted(
            (
                (-expected_improvement(vector, front), index, assignment)
                for (index, assignment), vector in zip(
                    unmeasured, predictions
                )
            ),
        )
        per_round = self.round_size if self.round_size is not None else max(
            1, -(-max(remaining, 1) // self.rounds)
        )
        chosen = [
            assignment
            for negative, _index, assignment in scored[
                : min(per_round, remaining)
            ]
            if -negative > -self.explore_margin
        ]
        return chosen

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _key(space: Space, assignment: Assignment) -> Tuple[str, ...]:
        return tuple(repr(assignment[axis.name]) for axis in space.axes)

    def _seed_round(
        self,
        space: Space,
        objectives: Sequence[Objective],
        assignments: List[Assignment],
        unmeasured: List[Tuple[int, Assignment]],
        budget: int,
    ) -> List[Assignment]:
        """Round 0: the full analytic-bound front, plus low-discrepancy
        space-fillers up to the round budget.

        The bound front is proposed **unconditionally** — even beyond
        ``budget`` — because the cheap model's non-dominated set is
        exactly where the measured front lives when the bounds are
        faithful; starving it would let a misfit regressor hide the
        true front forever.
        """
        front_indices = analytic_front(space, objectives, assignments)
        chosen = list(front_indices)
        chosen_set = set(chosen)

        # Fill the remaining seed budget with a Halton walk over the
        # grid indices, so the first model fit sees off-front data too.
        fill_target = min(
            max(len(chosen), min(budget, len(chosen) + len(space.axes))),
            len(assignments),
        )
        index = 1
        limit = 100 * max(fill_target, 1) + 100
        while len(chosen) < fill_target and index <= limit:
            candidate = min(
                int(_halton(index, _PRIMES[0]) * len(assignments)),
                len(assignments) - 1,
            )
            if candidate not in chosen_set:
                chosen_set.add(candidate)
                chosen.append(candidate)
            index += 1
        chosen.sort()
        return [assignments[i] for i in chosen]

    def _predict_all(
        self,
        space: Space,
        objectives: Sequence[Objective],
        measured: Sequence[Measured],
        unmeasured: List[Tuple[int, Assignment]],
    ) -> List[List[float]]:
        """One predicted (normalized) objective vector per unmeasured
        candidate: ridge on the measured data, falling back to the
        analytic bound (then 0.0) for objectives with too few samples.
        """
        features = _FeatureMap(space)
        healthy = [m for m in measured if m.get("vector") is not None]
        rows = [features.vector(m["assignment"]) for m in healthy]
        unmeasured_rows = [
            features.vector(assignment) for _index, assignment in unmeasured
        ]
        width = len(features.columns) + 1

        vectors = [
            [0.0] * len(objectives) for _ in unmeasured
        ]
        for j, objective in enumerate(objectives):
            targets = [m["vector"][j] for m in healthy]
            if len(targets) >= max(2, width // 2):
                weights = _ridge_fit(rows, targets)
                for i, row in enumerate(unmeasured_rows):
                    vectors[i][j] = _predict(weights, row)
            elif objective.bound is not None:
                for i, (_index, assignment) in enumerate(unmeasured):
                    vectors[i][j] = objective.normalized(
                        objective.bound(space.candidate(assignment))
                    )
            elif targets:
                fallback = sum(targets) / len(targets)
                for i in range(len(unmeasured)):
                    vectors[i][j] = fallback
        return vectors


def analytic_front(
    space: Space,
    objectives: Sequence[Objective],
    assignments: Optional[List[Assignment]] = None,
) -> List[int]:
    """Grid indices of the analytic-bound non-dominated set.

    Scores every assignment with the ``bound`` of each bounded
    objective (normalized to minimization) and returns the rank-0
    indices, sorted.  With no bounded objective every index is
    returned — there is nothing cheap to discriminate by, and the
    seed round degrades to the exhaustive grid (matching the adaptive
    sampler's conservatism).
    """
    objectives = resolve_objectives(objectives)
    if assignments is None:
        assignments = list(space.assignments())
    bounded = [obj for obj in objectives if obj.bound is not None]
    if not bounded:
        return list(range(len(assignments)))
    vectors = []
    for assignment in assignments:
        candidate = space.candidate(assignment)
        vectors.append(tuple(
            obj.normalized(obj.bound(candidate)) for obj in bounded
        ))
    ranks = dominance_rank(vectors)
    return [index for index, rank in enumerate(ranks) if rank == 0]
