"""Sharded exploration: a work-stealing pool of evaluation processes.

:func:`explore` runs one process; on a multi-core box the design-space
study is embarrassingly parallel across *candidates*, so this module
partitions sampler batches over ``N`` shard processes:

* the parent selects candidates (any sampler, including the iterative
  surrogate, whose propose/measure rounds it drives), filters the ones
  the main store already holds, and publishes the rest as **candidate
  blocks** in a shared SQLite **claim table** (dict-record task state
  in the dask-scheduler style, like ``repro.serve.jobs``);
* each shard process claims blocks — preferring the ones hinted at it,
  then **stealing** anyone else's unclaimed blocks, so stragglers
  never idle — and evaluates them through the ordinary
  ``synthesize_scenarios`` -> ``run_campaigns`` path over one
  long-lived :class:`~repro.engine.trials.ResidentPool` whose workers
  cache built trial contexts across blocks;
* every shard appends to its own **partitioned store segment**
  (``store.part-<shard>``, same backend as the main store), so shard
  writes never contend; the parent merges segments into the main store
  (newest ``written_at`` wins) at every round barrier;
* the parent watches shard liveness: a shard that dies (crash,
  SIGKILL) has its claimed blocks reset to ``todo`` for survivors to
  steal, and a replacement shard is spawned if none survive — the
  exploration completes as long as *any* process can make progress.

Durability is the store's, not the claim table's: the claim table is
per-run coordination state, recreated on every call, while evaluated
records live in the segments/main store.  Kill anything — a shard, or
the whole exploration — and ``repro store merge`` + a re-run resumes
from the main store with **zero** re-executed campaigns.

Objectives must be registry-resolvable **names** (shards re-resolve
them in their own process) and axis values JSON-representable (blocks
travel as JSON; a persistent store requires this anyway).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..mc.campaign import _resolve_seeds
from ..obs.events import (
    RunLog,
    emit,
    get_run_log,
    merge_run_log,
    set_run_log,
)
from .explore import (
    DEFAULT_BATCH_SIZE,
    CandidateResult,
    ExplorationError,
    ExplorationResult,
    _candidate_key,
    _evaluation_from_record,
    _measured_vector,
    _score_result,
    explore,
)
from .objectives import DEFAULT_OBJECTIVES, Objective, resolve_objectives
from .samplers import Sampler, get_sampler
from .space import Space
from .store import ResultStore, merge_stores, open_store, part_path

#: Environment knob for tests/CI: a shard whose id matches this value
#: SIGKILLs itself after evaluating (but before releasing) its first
#: block — the reproducible "shard died mid-run" scenario.
KILL_SHARD_ENV = "REPRO_DSE_KILL_SHARD"

#: How long claim-table writers wait on a competing lock (ms).
_BUSY_TIMEOUT_MS = 30_000

#: Parent liveness-poll interval (seconds).
_POLL_SECONDS = 0.05


# -- claim table --------------------------------------------------------------


def claims_path(store_path: "str | Path") -> Path:
    """The claim-table database coordinating shards of ``store_path``."""
    path = Path(store_path)
    return path.with_name(path.name + ".claims.sqlite")


def _connect(path: "str | Path") -> sqlite3.Connection:
    # isolation_level=None -> autocommit; transactions are explicit
    # (BEGIN IMMEDIATE), which is what a cross-process claim needs.
    conn = sqlite3.connect(
        str(path), timeout=_BUSY_TIMEOUT_MS / 1000.0, isolation_level=None
    )
    conn.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
    conn.execute("PRAGMA journal_mode = WAL")
    return conn


def create_claims(path: "str | Path") -> sqlite3.Connection:
    """Create a fresh claim table (any previous one is discarded)."""
    path = Path(path)
    for side in ("", "-wal", "-shm"):
        Path(str(path) + side).unlink(missing_ok=True)
    conn = _connect(path)
    conn.execute(
        "CREATE TABLE blocks ("
        "  id INTEGER PRIMARY KEY,"
        "  round INTEGER NOT NULL,"
        "  payload TEXT NOT NULL,"          # JSON list of assignments
        "  shard_hint INTEGER NOT NULL,"    # preferred owner
        "  state TEXT NOT NULL DEFAULT 'todo',"  # todo|claimed|done|error
        "  owner INTEGER,"
        "  owner_pid INTEGER,"
        "  executed INTEGER NOT NULL DEFAULT 0,"
        "  error TEXT"
        ")"
    )
    return conn


def publish_blocks(
    conn: sqlite3.Connection,
    round_index: int,
    assignments: Sequence[Dict[str, object]],
    batch_size: int,
    shards: int,
) -> int:
    """Cut ``assignments`` into blocks of ``batch_size`` and publish
    them, hinting shard ``i % shards`` at block ``i`` (round-robin)."""
    blocks = 0
    for start in range(0, len(assignments), batch_size):
        chunk = list(assignments[start:start + batch_size])
        conn.execute(
            "INSERT INTO blocks (round, payload, shard_hint) "
            "VALUES (?, ?, ?)",
            (round_index, json.dumps(chunk), blocks % shards),
        )
        blocks += 1
    return blocks


def claim_block(
    conn: sqlite3.Connection, shard: int
) -> Optional[Tuple[int, List[Dict[str, object]]]]:
    """Atomically claim one block for ``shard`` (or ``None`` if drained).

    Preference order: blocks hinted at this shard first, then — work
    stealing — anyone else's unclaimed blocks, lowest id first.
    """
    conn.execute("BEGIN IMMEDIATE")
    try:
        row = conn.execute(
            "SELECT id, payload FROM blocks WHERE state = 'todo' "
            "ORDER BY (shard_hint != ?), id LIMIT 1",
            (shard,),
        ).fetchone()
        if row is None:
            conn.execute("COMMIT")
            return None
        conn.execute(
            "UPDATE blocks SET state = 'claimed', owner = ?, owner_pid = ? "
            "WHERE id = ?",
            (shard, os.getpid(), row[0]),
        )
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise
    return row[0], json.loads(row[1])


def release_block(
    conn: sqlite3.Connection,
    block_id: int,
    state: str,
    executed: int = 0,
    error: Optional[str] = None,
) -> None:
    conn.execute(
        "UPDATE blocks SET state = ?, executed = ?, error = ? WHERE id = ?",
        (state, executed, error, block_id),
    )


def reset_dead_claims(conn: sqlite3.Connection, owner: int) -> int:
    """Requeue the claimed blocks of a dead shard; returns how many."""
    cursor = conn.execute(
        "UPDATE blocks SET state = 'todo', owner = NULL, owner_pid = NULL "
        "WHERE state = 'claimed' AND owner = ?",
        (owner,),
    )
    return cursor.rowcount


# -- shard worker -------------------------------------------------------------


class _BlockSampler(Sampler):
    """A fixed assignment list — how shards feed blocks to explore()."""

    name = "block"

    def __init__(self, assignments: Sequence[Dict[str, object]]) -> None:
        self.assignments = [dict(a) for a in assignments]

    def select(self, space, objectives):
        return [dict(a) for a in self.assignments]


def _shard_main(shard: int, config: dict) -> None:
    """Shard process entry point: claim, evaluate, release, repeat."""
    from ..engine.trials import ResidentPool
    from ..runtime.trial import build_context, execute_trial_task

    space = Space.from_dict(config["space"])
    kill_self = os.environ.get(KILL_SHARD_ENV) == str(shard)
    conn = _connect(config["claims"])
    part = open_store(part_path(config["store"], shard))
    pool = ResidentPool(build_context, execute_trial_task, jobs=config["jobs"])
    # Each shard logs to its own segment file (never the parent's log):
    # segment appends are flushed per event, so even a SIGKILLed shard
    # leaves a readable record of the blocks it claimed.
    log: Optional[RunLog] = None
    if config.get("log_dir"):
        log = RunLog(
            config["log_dir"], run_id=config.get("run_id"), worker=shard
        )
        set_run_log(log)
        emit("shard.start", shard=shard, pid=os.getpid())
    try:
        while True:
            claimed = claim_block(conn, shard)
            if claimed is None:
                return
            block_id, assignments = claimed
            if log is not None:
                hint = conn.execute(
                    "SELECT shard_hint FROM blocks WHERE id = ?",
                    (block_id,),
                ).fetchone()[0]
                emit(
                    "shard.claim", shard=shard, block=block_id,
                    candidates=len(assignments), stolen=hint != shard,
                )
            try:
                result = explore(
                    space,
                    sampler=_BlockSampler(assignments),
                    objectives=config["objectives"],
                    trials=config["trials"],
                    seeds=config["seeds"],
                    jobs=config["jobs"],
                    cache_dir=config["cache_dir"],
                    warm_start=config["warm_start"],
                    store=part,
                    engine=config["engine"],
                    batch_size=config["batch_size"],
                    pool=pool,
                    shard=shard,
                )
            except Exception as exc:
                emit(
                    "shard.error", shard=shard, block=block_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
                release_block(
                    conn, block_id, "error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                raise
            if kill_self:
                # Records are durably in the part segment, but the
                # block is still 'claimed': the parent must notice the
                # death, requeue it, and a survivor must steal it.
                os.kill(os.getpid(), signal.SIGKILL)
            emit(
                "shard.block", shard=shard, block=block_id,
                executed=result.executed,
            )
            release_block(conn, block_id, "done", executed=result.executed)
    finally:
        pool.close()
        part.close()
        conn.close()
        if log is not None:
            set_run_log(None)
            log.close()


# -- parent driver ------------------------------------------------------------


def _spawn(shard: int, config: dict) -> multiprocessing.Process:
    process = multiprocessing.Process(
        target=_shard_main, args=(shard, config), name=f"repro-shard-{shard}"
    )
    process.start()
    return process


def _drive_round(
    conn: sqlite3.Connection,
    round_index: int,
    config: dict,
    shards: int,
    next_shard: int,
) -> Tuple[int, int]:
    """Run shard processes until every block of ``round_index`` is done.

    Returns ``(executed, next_shard)`` — campaigns the shards report
    for this round, and the next fresh shard id (replacements for dead
    shards get new ids, so a kill knob aimed at one id fires once).
    """
    workers: Dict[int, multiprocessing.Process] = {}
    respawns = 0
    try:
        for _ in range(shards):
            workers[next_shard] = _spawn(next_shard, config)
            next_shard += 1
        while True:
            for shard, process in list(workers.items()):
                if not process.is_alive():
                    process.join()
                    requeued = reset_dead_claims(conn, shard)
                    if requeued:
                        emit(
                            "dse.requeue", shard=shard, blocks=requeued,
                            round=round_index,
                        )
                    del workers[shard]
            failures = conn.execute(
                "SELECT error FROM blocks WHERE round = ? AND "
                "state = 'error'", (round_index,),
            ).fetchall()
            if failures:
                raise ExplorationError(
                    f"shard evaluation failed: {failures[0][0]}"
                )
            remaining = conn.execute(
                "SELECT COUNT(*) FROM blocks WHERE round = ? AND "
                "state IN ('todo', 'claimed')", (round_index,),
            ).fetchone()[0]
            if remaining == 0:
                break
            if not workers:
                # Every shard died with work left.  Spawn replacements
                # (fresh ids) — bounded, so a deterministic crash still
                # surfaces instead of respawning forever.
                if respawns >= shards:
                    raise ExplorationError(
                        f"all {shards} shard(s) died with {remaining} "
                        f"block(s) unfinished; see the part segments for "
                        f"completed work (`repro store merge` recovers it)"
                    )
                emit(
                    "dse.respawn", shard=next_shard, round=round_index,
                    remaining=remaining,
                )
                workers[next_shard] = _spawn(next_shard, config)
                next_shard += 1
                respawns += 1
            time.sleep(_POLL_SECONDS)
        for process in workers.values():
            process.join()
    finally:
        for process in workers.values():
            if process.is_alive():
                process.terminate()
                process.join()
    executed = conn.execute(
        "SELECT COALESCE(SUM(executed), 0) FROM blocks WHERE round = ?",
        (round_index,),
    ).fetchone()[0]
    return executed, next_shard


def explore_sharded(
    space: Space,
    shards: int = 2,
    sampler: "Union[str, Sampler]" = "grid",
    objectives: "Sequence[str | Objective]" = DEFAULT_OBJECTIVES,
    trials: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    samples: Optional[int] = None,
    jobs: int = 1,
    cache_dir: "Optional[str | Path]" = None,
    warm_start: bool = True,
    store: "Union[ResultStore, str, Path, None]" = None,
    engine: str = "fast",
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> ExplorationResult:
    """Explore a design space over a pool of shard processes.

    The drop-in distributed sibling of :func:`repro.dse.explore`:
    same samplers (iterative ones are driven in rounds), same stores,
    same scoring — but candidate evaluation fans out over ``shards``
    worker processes with work stealing (see the module docstring for
    the mechanics).  Requires a **persistent** store: the segments,
    the claim table, and crash recovery all hang off its path.

    Args:
        space: The parameter space (base scenario + axes); axis values
            must be JSON-representable.
        shards: Shard processes to run (>= 1).
        sampler: Selection strategy (name or instance).
        objectives: Objective *names* (or registered instances) —
            shards re-resolve them from the registry by name.
        trials/seeds/samples/warm_start: As in :func:`explore`.
        jobs: Worker processes *per shard* (synthesis + trials).
        cache_dir: Persistent schedule-cache directory shared by all
            shards.
        store: Path of the main result store (or an open persistent
            store).  Leftover ``.part-<n>`` segments from a previous
            crashed run are merged in before anything executes.
        engine: Trial engine, as in :func:`explore`.
        batch_size: Candidates per claim block — the work-stealing
            granularity *and* the durability unit.

    Returns:
        An :class:`ExplorationResult` scored exactly like a
        single-process exploration; ``result.shards`` records the pool
        width and every executed record carries its shard id.
    """
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ExplorationError(
            f"shards must be an integer >= 1, got {shards!r}"
        )
    objectives = resolve_objectives(objectives)
    if isinstance(sampler, str):
        sampler = get_sampler(sampler, samples=samples)
    if not isinstance(batch_size, int) or isinstance(batch_size, bool) \
            or batch_size < 1:
        raise ExplorationError(
            f"batch_size must be an integer >= 1, got {batch_size!r}"
        )
    if space.base.simulation is None:
        raise ExplorationError(
            "exploration evaluates candidates through Monte-Carlo "
            "campaigns; give the base scenario a SimulationSpec"
        )

    own_store = not isinstance(store, ResultStore)
    main = store if isinstance(store, ResultStore) else open_store(store)
    if main.path is None:
        if own_store:
            main.close()
        raise ExplorationError(
            "distributed exploration needs a persistent store (a path); "
            "segments and the claim table are derived from it"
        )
    store_path = Path(main.path)

    # Shards inherit the parent's run log (when one is active) as
    # per-shard segment files, merged back at every round barrier —
    # the exact protocol the store segments use.
    parent_log = get_run_log()
    config = {
        "space": space.to_dict(),
        "objectives": [obj.name for obj in objectives],
        "trials": trials,
        "seeds": list(seeds) if seeds is not None else None,
        "jobs": jobs,
        "cache_dir": str(cache_dir) if cache_dir is not None else None,
        "warm_start": warm_start,
        "store": str(store_path),
        "claims": str(claims_path(store_path)),
        "engine": engine,
        "batch_size": batch_size,
        "log_dir": str(parent_log.log_dir) if parent_log else None,
        "run_id": parent_log.run_id if parent_log else None,
    }

    def merge_shard_logs() -> None:
        if parent_log is not None:
            merge_run_log(parent_log.path, delete_parts=True)

    result = ExplorationResult(
        objectives=objectives,
        sampler=sampler.name,
        space_size=space.size,
        store_path=str(store_path),
        shards=shards,
    )
    started = time.perf_counter()
    conn = create_claims(config["claims"])
    next_shard = 0
    round_index = 0
    try:
        # Recover whatever a previously killed run's shards persisted.
        merge_stores(main, delete_parts=True)

        def run_round(selected) -> List[CandidateResult]:
            nonlocal next_shard, round_index
            keyed: List[Tuple[str, object, Dict[str, object]]] = []
            fresh: List[Dict[str, object]] = []
            fresh_keys = set()
            for assignment in selected:
                scenario = space.candidate(assignment)
                if scenario.simulation is None:
                    raise ExplorationError(
                        f"candidate {scenario.name!r} has no SimulationSpec; "
                        f"exploration evaluates through Monte-Carlo campaigns"
                    )
                for objective in objectives:
                    if objective.requires is not None:
                        objective.requires(scenario)
                try:
                    seed_list = _resolve_seeds(scenario, trials, seeds)
                except ValueError as exc:
                    raise ExplorationError(str(exc)) from None
                key = _candidate_key(main, scenario, assignment, seed_list)
                keyed.append((key, scenario, dict(assignment)))
                if main.get(key) is None:
                    fresh.append(dict(assignment))
                    fresh_keys.add(key)
                else:
                    result.reused += 1
            if fresh:
                blocks = publish_blocks(
                    conn, round_index, fresh, batch_size, shards
                )
                assert blocks > 0
                emit(
                    "dse.publish", round=round_index, blocks=blocks,
                    candidates=len(fresh), shards=shards,
                )
                executed, next_shard = _drive_round(
                    conn, round_index, config, shards, next_shard
                )
                result.executed += executed
                round_index += 1
                # Segments write through the open main store, so the
                # merged records are immediately visible below.
                report = merge_stores(main, delete_parts=True)
                merge_shard_logs()
                emit(
                    "dse.merge", round=round_index - 1, executed=executed,
                    segments=len(report.parts),
                    merged=report.merged, updated=report.updated,
                )
            round_results: List[CandidateResult] = []
            for key, scenario, assignment in keyed:
                record = main.get(key)
                if record is None:
                    raise ExplorationError(
                        f"candidate {scenario.name!r} has no record after "
                        f"its round completed (store {store_path})"
                    )
                evaluation = _evaluation_from_record(
                    record, scenario, assignment
                )
                # Records the shards just produced are executions of
                # *this* call, not store reuse.
                evaluation.cached = key not in fresh_keys
                round_results.append(CandidateResult(
                    assignment=assignment,
                    name=scenario.name,
                    key=key,
                    evaluation=evaluation,
                ))
            return round_results

        if getattr(sampler, "iterative", False):
            measured: List[dict] = []
            while True:
                proposals = sampler.propose(space, objectives, measured)
                if not proposals:
                    break
                round_results = run_round(proposals)
                result.candidates.extend(round_results)
                for candidate in round_results:
                    measured.append({
                        "assignment": dict(candidate.assignment),
                        "vector": _measured_vector(candidate, objectives),
                    })
        else:
            result.candidates = run_round(sampler.select(space, objectives))
    finally:
        result.elapsed = time.perf_counter() - started
        conn.close()
        for side in ("", "-wal", "-shm"):
            Path(config["claims"] + side).unlink(missing_ok=True)
        if own_store:
            main.close()
        # A round that died mid-flight (ExplorationError, ^C) may have
        # left shard log segments behind; fold them in regardless.
        merge_shard_logs()

    _score_result(result)
    return result
