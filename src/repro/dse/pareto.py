"""Exact multi-objective Pareto dominance — the core of the explorer.

Design-space exploration produces one objective vector per candidate
(energy, latency, deadline-miss upper bound, ...); the designer reads
the *Pareto front* — the candidates no other candidate beats on every
objective at once.  This module is the exact, deterministic dominance
arithmetic everything else builds on:

* :func:`dominates` — the strict Pareto relation between two vectors;
* :func:`pareto_front` — indices of the non-dominated points;
* :func:`dominance_rank` — non-dominated sorting (rank 0 is the front,
  rank 1 the front of the rest, ...), the ordering the adaptive
  sampler prunes by.

All vectors are **minimization** vectors — :mod:`repro.dse.objectives`
normalizes maximization objectives (e.g. energy saving) by negation
before they reach this module.  Points with equal vectors do not
dominate each other, so exact duplicates all stay on the front; the
O(n^2) pairwise sweep is exact (no epsilon, no approximation) and
plenty fast for the candidate counts a design space produces.
"""

from __future__ import annotations

import math
from typing import List, Sequence

Vector = Sequence[float]


def _check_points(points: Sequence[Vector]) -> int:
    """Validate a point set; returns the common dimension."""
    if not points:
        return 0
    width = len(points[0])
    if width == 0:
        raise ValueError("objective vectors must have at least one component")
    for index, point in enumerate(points):
        if len(point) != width:
            raise ValueError(
                f"point {index} has {len(point)} objectives, expected {width}"
            )
        for value in point:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"point {index} carries a non-numeric objective {value!r}"
                )
            if math.isnan(value):
                raise ValueError(
                    f"point {index} carries NaN; dominance is undefined"
                )
    return width


def dominates(a: Vector, b: Vector) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (minimization).

    ``a`` dominates ``b`` iff it is no worse on every objective and
    strictly better on at least one.  Equal vectors dominate neither
    way.
    """
    if len(a) != len(b):
        raise ValueError(
            f"vectors of different dimension: {len(a)} vs {len(b)}"
        )
    strictly_better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strictly_better = True
    return strictly_better


def pareto_front(points: Sequence[Vector]) -> List[int]:
    """Indices of the non-dominated points, in input order.

    Exact pairwise dominance; duplicates of a front point are all kept
    (neither dominates the other).  Raises :class:`ValueError` on NaN
    components or ragged dimensions.
    """
    _check_points(points)
    front: List[int] = []
    for i, candidate in enumerate(points):
        if not any(
            dominates(other, candidate)
            for j, other in enumerate(points)
            if j != i
        ):
            front.append(i)
    return front


def dominance_rank(points: Sequence[Vector]) -> List[int]:
    """Non-dominated sorting rank per point (0 = Pareto front).

    Rank ``k`` points are on the front once every point of rank
    ``< k`` is removed — the classic NSGA-style layering the adaptive
    sampler uses to drop the most-dominated half first.
    """
    _check_points(points)
    ranks = [-1] * len(points)
    remaining = list(range(len(points)))
    rank = 0
    while remaining:
        layer = [
            i
            for i in remaining
            if not any(
                dominates(points[j], points[i]) for j in remaining if j != i
            )
        ]
        if not layer:  # pragma: no cover - impossible for a strict order
            raise RuntimeError("dominance produced an empty layer")
        for i in layer:
            ranks[i] = rank
        remaining = [i for i in remaining if ranks[i] == -1]
        rank += 1
    return ranks


def crowding_spread(points: Sequence[Vector], indices: Sequence[int]) -> List[float]:
    """Objective-range spread of ``indices`` within ``points``.

    A light-weight diversity measure (sum of per-objective normalized
    gaps to the nearest neighbours) used only for reporting — front
    membership itself is exact and never filtered by crowding.
    Boundary points get ``inf``.
    """
    width = _check_points(points)
    chosen = list(indices)
    if not chosen:
        return []
    spread = {i: 0.0 for i in chosen}
    for axis in range(width):
        ordered = sorted(chosen, key=lambda i: points[i][axis])
        low = points[ordered[0]][axis]
        high = points[ordered[-1]][axis]
        span = high - low
        spread[ordered[0]] = float("inf")
        spread[ordered[-1]] = float("inf")
        if span <= 0:
            continue
        for position in range(1, len(ordered) - 1):
            gap = (
                points[ordered[position + 1]][axis]
                - points[ordered[position - 1]][axis]
            ) / span
            if spread[ordered[position]] != float("inf"):
                spread[ordered[position]] += gap
    return [spread[i] for i in chosen]
