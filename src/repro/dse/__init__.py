"""``repro.dse`` — design-space exploration with Pareto search.

The paper's headline contribution is a *trade-off*: slots per round
``B`` and payload size buy energy (Fig. 7) at the cost of end-to-end
latency (eq. 13, Fig. 6), and a designer picks a deployment point from
that frontier.  This subsystem turns picking that point into a
first-class, resumable workflow:

* :class:`Space` / :class:`Axis` — a base :class:`repro.api.Scenario`
  plus typed axes over its fields (slots, payload, loss grids,
  backends, ...), JSON round-trippable;
* samplers — exhaustive :class:`GridSampler`, seeded
  :class:`RandomSampler`, low-discrepancy :class:`HaltonSampler`, the
  adaptive :class:`SuccessiveHalvingSampler` that prunes analytically
  dominated configurations before spending MC trials, and the
  model-guided :class:`SurrogateSampler` (ridge regression over the
  axis grid, expected-improvement acquisition vs. the measured front);
* :class:`Objective` registry + exact Pareto machinery
  (:func:`pareto_front`, :func:`dominance_rank`);
* :func:`open_store` — persistent JSONL/SQLite result stores keyed by
  content hash, making every exploration incremental and resumable;
* :func:`explore` — the driver; also reachable as
  ``Experiment.explore()`` and ``python -m repro.cli scenario
  explore``;
* :func:`explore_sharded` — the same exploration fanned out over a
  work-stealing pool of shard processes, each appending to its own
  partitioned store segment (``--shards`` on the CLI); segments merge
  with :func:`merge_stores` / ``repro store merge``.

Quickstart::

    from repro.dse import Axis, Space, explore

    space = Space(base=scenario, axes=[
        Axis("B", "slots", [1, 2, 5, 10]),
        Axis("payload", "payload", [8, 32, 64]),
    ], derive="glossy_timing")
    result = explore(space, sampler="adaptive",
                     objectives=("energy_saving", "latency"),
                     store="explore.jsonl")
    print(result.front_table())
"""

from .distributed import explore_sharded
from .explore import (
    DEFAULT_BATCH_SIZE,
    CandidateResult,
    ExplorationError,
    ExplorationResult,
    explore,
    explore_scenario,
)
from .objectives import (
    DEFAULT_OBJECTIVES,
    Evaluation,
    Objective,
    ObjectiveError,
    available_objectives,
    get_objective,
    register_objective,
    resolve_objectives,
)
from .pareto import crowding_spread, dominance_rank, dominates, pareto_front
from .samplers import (
    GridSampler,
    HaltonSampler,
    RandomSampler,
    Sampler,
    SamplerError,
    SuccessiveHalvingSampler,
    available_samplers,
    get_sampler,
)
from .space import (
    Axis,
    Space,
    SpaceError,
    apply_target,
    available_derivers,
    available_transforms,
    register_deriver,
    register_transform,
)
from .store import (
    STORE_SCHEMA,
    JsonlStore,
    MemoryStore,
    MergeReport,
    ResultStore,
    SqliteStore,
    StoreError,
    candidate_key,
    discover_parts,
    merge_stores,
    open_store,
    part_path,
)
from .surrogate import SurrogateSampler, analytic_front, expected_improvement

__all__ = [
    "Axis",
    "CandidateResult",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_OBJECTIVES",
    "Evaluation",
    "ExplorationError",
    "ExplorationResult",
    "GridSampler",
    "HaltonSampler",
    "JsonlStore",
    "MemoryStore",
    "MergeReport",
    "Objective",
    "ObjectiveError",
    "RandomSampler",
    "ResultStore",
    "STORE_SCHEMA",
    "Sampler",
    "SamplerError",
    "Space",
    "SpaceError",
    "SqliteStore",
    "StoreError",
    "SuccessiveHalvingSampler",
    "SurrogateSampler",
    "analytic_front",
    "apply_target",
    "available_derivers",
    "available_objectives",
    "available_samplers",
    "available_transforms",
    "candidate_key",
    "crowding_spread",
    "discover_parts",
    "dominance_rank",
    "dominates",
    "expected_improvement",
    "explore",
    "explore_scenario",
    "explore_sharded",
    "get_objective",
    "get_sampler",
    "merge_stores",
    "open_store",
    "pareto_front",
    "part_path",
    "register_deriver",
    "register_objective",
    "register_transform",
]
