"""Objectives: what a design-space candidate is scored on.

An :class:`Objective` turns one evaluated candidate (its synthesized
schedules plus the Monte-Carlo campaign statistics) into one number
with a direction.  The explorer collects one vector per candidate and
hands them, normalized to minimization, to :mod:`repro.dse.pareto`.

Objectives may also carry a **cheap analytic bound** — a closed-form
proxy computable from the candidate scenario alone (paper eq. 13 for
latency, the Sec. V radio-on model for energy).  The adaptive sampler
ranks candidates by these bounds to prune dominated configurations
*before* any MC trial is spent; objectives without a bound (e.g. the
deadline-miss interval, which depends on the loss realization) simply
do not constrain the pruning.

Built-ins (see :func:`available_objectives`):

``energy``         mean radio duty cycle (radio-on / duration), min
``energy_per_round``  mean radio-on per executed round [ms], min
``energy_saving``  analytic saving vs. a no-rounds design (Fig. 7), max
``latency``        summed end-to-end application latency (eq. 47/48), min
``miss``           Wilson 95 % *upper* bound of deadline-miss rate, min
``delivery``       Wilson 95 % *lower* bound of delivery rate, max
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..api.scenario import Scenario
from ..core.latency import latency_lower_bound
from ..mc.stats import CampaignStats


class ObjectiveError(ValueError):
    """Raised when an objective cannot be computed for a candidate."""


@dataclass
class Evaluation:
    """One evaluated candidate — everything objectives may read.

    Attributes:
        scenario: The materialized candidate scenario.
        assignment: The axis values that produced it.
        stats: Aggregated Monte-Carlo statistics of the candidate's
            campaign (``None`` only for records restored from stores
            written by evaluation failures).
        total_latency: Sum of synthesized per-application latencies
            over all modes (exact, eq. 47/48).
        rounds: Synthesized rounds summed over all modes.
        seeds: The trial seeds the campaign ran with.
        cached: True when the evaluation was restored from a result
            store instead of executed.
        elapsed: Wall-clock seconds the evaluation batch took (0.0 for
            restored records).
        error: Failure description for candidates that could not be
            evaluated (infeasible synthesis, failed verification);
            ``None`` for healthy records.
        campaigns: Monte-Carlo campaigns spent on this candidate — 1
            for an executed evaluation, 0 when synthesis failed before
            any trial ran.  Restored records keep the count of the run
            that produced them, so saved-campaign claims stay auditable
            across resumes.
        shard: Id of the exploration shard that executed the
            evaluation (``None`` for single-process runs).
    """

    scenario: Scenario
    assignment: Dict[str, object]
    stats: Optional[CampaignStats] = None
    total_latency: float = 0.0
    rounds: int = 0
    seeds: Tuple[Optional[int], ...] = ()
    cached: bool = False
    elapsed: float = 0.0
    error: Optional[str] = None
    campaigns: int = 0
    shard: Optional[int] = None

    def require_stats(self, objective: str) -> CampaignStats:
        if self.stats is None:
            raise ObjectiveError(
                f"objective {objective!r} needs campaign statistics, but "
                f"candidate {self.scenario.name!r} has none"
                + (f" (evaluation failed: {self.error})" if self.error else "")
            )
        return self.stats


@dataclass(frozen=True)
class Objective:
    """One scoring dimension with a direction and an optional bound.

    Attributes:
        name: Identifier (CLI ``--objectives``, table headers).
        direction: ``"min"`` or ``"max"``.
        description: One-line human description.
        value: ``Evaluation -> float`` — the measured objective.
        bound: Optional ``Scenario -> float`` analytic proxy in the
            same direction, computable without running anything; used
            by the adaptive sampler's pruning.
        requires: Optional ``Scenario -> None`` pre-check raising
            :class:`ObjectiveError` when the scenario cannot support
            this objective — the explorer runs it per candidate
            *before* spending any synthesis/MC budget.
    """

    name: str
    direction: str
    description: str
    value: Callable[[Evaluation], float] = field(compare=False)
    bound: Optional[Callable[[Scenario], float]] = field(
        default=None, compare=False
    )
    requires: Optional[Callable[[Scenario], None]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.direction not in ("min", "max"):
            raise ValueError(
                f"objective {self.name!r}: direction must be 'min' or "
                f"'max', got {self.direction!r}"
            )

    @property
    def sign(self) -> float:
        """Multiplier normalizing this objective to minimization."""
        return 1.0 if self.direction == "min" else -1.0

    def normalized(self, value: float) -> float:
        return self.sign * value


# -- analytic helpers ---------------------------------------------------------


def _radio_dimensions(scenario: Scenario, objective: str) -> Tuple[int, int]:
    """Shared payload/diameter resolution, with objective-flavored errors."""
    from .space import SpaceError, radio_dimensions

    try:
        return radio_dimensions(scenario, f"objective {objective!r}")
    except SpaceError as exc:
        raise ObjectiveError(str(exc)) from None


def _needs_radio(objective: str) -> Callable[[Scenario], None]:
    """A ``requires`` pre-check: the scenario must resolve radio dims."""

    def check(scenario: Scenario) -> None:
        _radio_dimensions(scenario, objective)

    return check


def analytic_energy_saving(scenario: Scenario) -> float:
    """Paper Fig. 7: relative radio-on saving of rounds, from the
    scenario's (payload, diameter, slots-per-round) alone."""
    from ..timing import energy_saving

    payload, diameter = _radio_dimensions(scenario, "energy_saving")
    return energy_saving(
        payload, diameter, scenario.effective_config.slots_per_round
    )


def analytic_energy_per_round_ms(scenario: Scenario) -> float:
    """Radio-on time of one full round [ms] (paper Sec. V model)."""
    from ..timing import rounds_on_time

    payload, diameter = _radio_dimensions(scenario, "energy_per_round")
    return 1000.0 * rounds_on_time(
        payload, diameter, scenario.effective_config.slots_per_round
    )


def analytic_latency_bound(scenario: Scenario) -> float:
    """Summed eq.-13 lower bounds over every application of every mode."""
    round_length = scenario.effective_config.round_length
    return sum(
        latency_lower_bound(app, round_length)
        for mode in scenario.modes
        for app in mode.applications
    )


# -- built-in objective values ------------------------------------------------


def _value_energy(evaluation: Evaluation) -> float:
    stats = evaluation.require_stats("energy")
    if stats.radio_on is None:
        raise ObjectiveError(
            "objective 'energy' needs radio-on accounting; give the "
            "scenario a radio spec"
        )
    duration = evaluation.scenario.simulation.duration
    return stats.radio_on.mean / duration


def _value_energy_per_round(evaluation: Evaluation) -> float:
    stats = evaluation.require_stats("energy_per_round")
    if stats.radio_on_per_round is None:
        raise ObjectiveError(
            "objective 'energy_per_round' needs radio-on accounting; give "
            "the scenario a radio spec"
        )
    return stats.radio_on_per_round.mean


def _value_energy_saving(evaluation: Evaluation) -> float:
    return analytic_energy_saving(evaluation.scenario)


def _value_latency(evaluation: Evaluation) -> float:
    return evaluation.total_latency


def _value_miss(evaluation: Evaluation) -> float:
    stats = evaluation.require_stats("miss")
    return stats.miss.ci[1]


def _value_delivery(evaluation: Evaluation) -> float:
    stats = evaluation.require_stats("delivery")
    return stats.delivery.ci[0]


_OBJECTIVES: Dict[str, Objective] = {}


def register_objective(objective: Objective) -> Objective:
    """Register an objective under its name (overwrites)."""
    _OBJECTIVES[objective.name] = objective
    return objective


register_objective(Objective(
    "energy", "min",
    "mean radio duty cycle: radio-on time / simulated duration",
    _value_energy,
    requires=_needs_radio("energy"),
))
register_objective(Objective(
    "energy_per_round", "min",
    "mean radio-on time per executed round [ms]",
    _value_energy_per_round,
    bound=analytic_energy_per_round_ms,
    requires=_needs_radio("energy_per_round"),
))
register_objective(Objective(
    "energy_saving", "max",
    "analytic radio-on saving vs. a no-rounds design (paper Fig. 7)",
    _value_energy_saving,
    bound=analytic_energy_saving,
    requires=_needs_radio("energy_saving"),
))
register_objective(Objective(
    "latency", "min",
    "summed synthesized end-to-end application latency (eq. 47/48)",
    _value_latency,
    bound=analytic_latency_bound,
))
register_objective(Objective(
    "miss", "min",
    "Wilson 95% upper bound of the deadline-miss rate",
    _value_miss,
))
register_objective(Objective(
    "delivery", "max",
    "Wilson 95% lower bound of the delivery rate",
    _value_delivery,
))

#: The explorer's default objective triple.
DEFAULT_OBJECTIVES = ("energy", "latency", "miss")


def available_objectives() -> Tuple[str, ...]:
    """Registered objective names, sorted."""
    return tuple(sorted(_OBJECTIVES))


def get_objective(name: str) -> Objective:
    try:
        return _OBJECTIVES[name]
    except KeyError:
        raise ObjectiveError(
            f"unknown objective {name!r}; available: "
            f"{', '.join(available_objectives())}"
        ) from None


def resolve_objectives(
    objectives: "Sequence[str | Objective]",
) -> Tuple[Objective, ...]:
    """Resolve names/instances into a validated, non-empty tuple."""
    if isinstance(objectives, (str, Objective)):
        objectives = [objectives]
    resolved = tuple(
        obj if isinstance(obj, Objective) else get_objective(obj)
        for obj in objectives
    )
    if not resolved:
        raise ObjectiveError("at least one objective is required")
    names = [obj.name for obj in resolved]
    if len(set(names)) != len(names):
        raise ObjectiveError(f"duplicate objectives: {names}")
    return resolved
