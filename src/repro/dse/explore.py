"""The exploration driver: sample -> (store-checked) evaluate -> front.

:func:`explore` ties the subsystem together.  A sampler selects grid
assignments; each candidate is materialized, content-hashed, and looked
up in the result store; only unseen candidates are evaluated — in
batches, through the existing ``synthesize_scenarios`` ->
``run_campaigns`` pipeline, over one shared solver pool and schedule
cache, with the compiled fast engine by default.  Every finished batch
is persisted before the next starts, so a killed exploration loses at
most one batch and a re-run executes zero already-completed campaigns.

The measured objective vectors then go through the exact Pareto
machinery: per-candidate dominance rank, the front, and table/series
renderers in :mod:`repro.analysis.exploration`.

Infeasible corners of a space are findings, not crashes: a batch that
trips :class:`~repro.core.synthesis.InfeasibleError` is re-evaluated
candidate by candidate, and the infeasible ones are recorded (and
stored, so resumes skip them) with their error instead of aborting the
exploration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..api.scenario import Scenario
from ..core.synthesis import InfeasibleError
from ..engine.api import EngineStats
from ..engine.cache import ScheduleCache
from ..mc.campaign import _resolve_seeds, run_campaigns
from ..mc.stats import CampaignStats
from ..obs.events import emit
from .objectives import (
    DEFAULT_OBJECTIVES,
    Evaluation,
    Objective,
    resolve_objectives,
)
from .pareto import dominance_rank
from .samplers import Sampler, get_sampler
from .space import Space
from .store import STORE_SCHEMA, ResultStore, candidate_key, open_store

#: Candidates evaluated per ``run_campaigns`` call — the durability
#: unit: a killed exploration loses at most this many evaluations.
DEFAULT_BATCH_SIZE = 8


class ExplorationError(ValueError):
    """Raised for explorations that cannot be set up or scored."""


@dataclass
class CandidateResult:
    """One explored grid point, scored.

    Attributes:
        assignment: The axis values of this candidate.
        name: The derived candidate scenario name.
        key: Content hash identifying the evaluation in the store.
        evaluation: The underlying evaluation record.
        values: Measured objective values by objective name (``None``
            for failed candidates).
        rank: Dominance rank among the exploration's healthy
            candidates (0 = Pareto front; ``None`` for failed ones).
        on_front: True when the candidate is Pareto-optimal.
    """

    assignment: Dict[str, object]
    name: str
    key: str
    evaluation: Evaluation
    values: Optional[Dict[str, float]] = None
    rank: Optional[int] = None
    on_front: bool = False

    @property
    def cached(self) -> bool:
        return self.evaluation.cached

    @property
    def error(self) -> Optional[str]:
        return self.evaluation.error

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "key": self.key,
            "assignment": dict(self.assignment),
            "values": dict(self.values) if self.values is not None else None,
            "rank": self.rank,
            "on_front": self.on_front,
            "cached": self.cached,
            "error": self.error,
        }


@dataclass
class ExplorationResult:
    """Everything one :func:`explore` call produced.

    Attributes:
        objectives: The resolved objectives, in scoring order.
        candidates: One entry per selected assignment, in selection
            order.
        executed: Campaign evaluations actually run by this call.
        reused: Evaluations restored from the result store.
        failed: Candidates that could not be evaluated (infeasible or
            unverified).
        stats: Engine counters of this call's synthesis work.
        sampler: Name of the sampler that selected the candidates.
        space_size: Full grid size of the explored space.
        store_path: Path of the backing store (``None`` in-memory).
        elapsed: Wall-clock seconds of the evaluation phase.
        shards: Worker processes the evaluation was partitioned over
            (1 for single-process exploration).
    """

    objectives: Tuple[Objective, ...]
    candidates: List[CandidateResult] = field(default_factory=list)
    executed: int = 0
    reused: int = 0
    failed: int = 0
    stats: EngineStats = field(default_factory=EngineStats)
    sampler: str = "grid"
    space_size: int = 0
    store_path: Optional[str] = None
    elapsed: float = 0.0
    shards: int = 1

    def __iter__(self):
        return iter(self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)

    @property
    def front(self) -> List[CandidateResult]:
        """The Pareto-optimal candidates, in selection order."""
        return [c for c in self.candidates if c.on_front]

    def rows(self) -> List[Dict[str, object]]:
        from ..analysis.exploration import exploration_rows

        return exploration_rows(self)

    def table(self) -> str:
        """All explored candidates as an aligned ASCII table."""
        from ..analysis.exploration import exploration_table

        return exploration_table(self)

    def front_rows(self) -> List[Dict[str, object]]:
        from ..analysis.exploration import front_rows

        return front_rows(self)

    def front_table(self) -> str:
        """The Pareto front as an aligned ASCII table."""
        from ..analysis.exploration import front_table

        return front_table(self)

    def to_dict(self) -> dict:
        return {
            "sampler": self.sampler,
            "space_size": self.space_size,
            "shards": self.shards,
            "objectives": [
                {"name": obj.name, "direction": obj.direction}
                for obj in self.objectives
            ],
            "executed": self.executed,
            "reused": self.reused,
            "failed": self.failed,
            "elapsed": self.elapsed,
            "store": self.store_path,
            "candidates": [c.to_dict() for c in self.candidates],
            "front": [c.name for c in self.front],
            "engine": {
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
                "modes_synthesized": self.stats.modes_synthesized,
                "solver_runs": self.stats.solver_runs,
                "total_time": self.stats.total_time,
            },
        }


# -- store record (de)serialization -------------------------------------------


def _record_of(evaluation: Evaluation) -> dict:
    return {
        "schema": STORE_SCHEMA,
        "name": evaluation.scenario.name,
        "assignment": dict(evaluation.assignment),
        "seeds": list(evaluation.seeds),
        "stats": (
            evaluation.stats.to_dict() if evaluation.stats is not None else None
        ),
        "total_latency": evaluation.total_latency,
        "rounds": evaluation.rounds,
        "elapsed": evaluation.elapsed,
        "error": evaluation.error,
        "campaigns": evaluation.campaigns,
        "shard": evaluation.shard,
        # Wall-clock write stamp — the merge tool's "newest wins"
        # tiebreak when partitioned segments disagree on a key.
        "written_at": time.time(),
    }


def _evaluation_from_record(
    record: dict,
    scenario: Scenario,
    assignment: Dict[str, object],
) -> Evaluation:
    if record.get("schema") != STORE_SCHEMA:
        raise ExplorationError(
            f"store record for {scenario.name!r} has schema "
            f"{record.get('schema')!r}, expected {STORE_SCHEMA!r}"
        )
    stats_data = record.get("stats")
    return Evaluation(
        scenario=scenario,
        assignment=dict(assignment),
        stats=(
            CampaignStats.from_dict(stats_data)
            if stats_data is not None else None
        ),
        total_latency=record.get("total_latency", 0.0),
        rounds=record.get("rounds", 0),
        seeds=tuple(record.get("seeds", ())),
        cached=True,
        elapsed=0.0,
        error=record.get("error"),
        # Pre-provenance records (schema unchanged: the fields are
        # additive) default to one spent campaign for healthy results.
        campaigns=record.get(
            "campaigns", 0 if record.get("error") else 1
        ),
        shard=record.get("shard"),
    )


# -- evaluation ---------------------------------------------------------------


def _candidate_key(
    store: ResultStore,
    scenario: Scenario,
    assignment: Dict[str, object],
    seed_list: Sequence[Optional[int]],
) -> str:
    """The store key — with an in-memory fallback for non-JSON axes.

    Axis values that are not JSON-serializable (spec dataclasses, the
    ``sweep()``-style whole-field replacements) cannot be content-
    hashed for a *persistent* store, but a purely in-memory
    exploration still needs a dedup key: fall back to a repr-based
    hash, which is stable within the process — exactly the lifetime of
    a :class:`MemoryStore`.
    """
    from .store import StoreError

    try:
        return candidate_key(scenario, assignment, seed_list)
    except StoreError:
        if store.path is not None:
            raise  # a persistent store genuinely needs JSON identity
        import hashlib

        payload = repr((
            scenario.name,
            sorted((name, repr(value)) for name, value in assignment.items()),
            list(seed_list),
        ))
        return "mem-" + hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _failure_text(reports: Dict[str, object]) -> str:
    lines = []
    for mode_name, report in sorted(reports.items()):
        for violation in report.violations:
            lines.append(f"mode {mode_name!r}: {violation}")
    return "; ".join(lines) or "verification failed"


def _evaluate_batch(
    batch: "List[Tuple[Scenario, Dict[str, object], List[Optional[int]]]]",
    trials: Optional[int],
    seeds: Optional[Sequence[int]],
    jobs: int,
    cache: Optional[ScheduleCache],
    warm_start: bool,
    stats: EngineStats,
    engine: str,
    pool=None,
    shard: Optional[int] = None,
) -> List[Evaluation]:
    """Evaluate one batch of candidates; one Evaluation per input.

    A batch-wide :class:`InfeasibleError` triggers per-candidate
    re-evaluation so only the genuinely infeasible candidates fail.
    ``pool`` (a :class:`~repro.engine.trials.ResidentPool`) lets a
    long-lived caller — the exploration shards — reuse one executor
    and its worker-side context caches across many batches; ``shard``
    labels the produced evaluations for provenance.
    """
    started = time.perf_counter()
    scenarios = [scenario for scenario, _, _ in batch]
    try:
        outcome = run_campaigns(
            scenarios,
            trials=trials,
            seeds=seeds,
            jobs=jobs,
            cache=cache,
            warm_start=warm_start,
            stats=stats,
            engine=engine,
            pool=pool,
        )
    except InfeasibleError as exc:
        if len(batch) == 1:
            scenario, assignment, seed_list = batch[0]
            return [Evaluation(
                scenario=scenario,
                assignment=dict(assignment),
                seeds=tuple(seed_list),
                elapsed=time.perf_counter() - started,
                error=f"infeasible: {exc}",
                campaigns=0,
                shard=shard,
            )]
        evaluations: List[Evaluation] = []
        for item in batch:
            evaluations.extend(_evaluate_batch(
                [item], trials, seeds, jobs, cache, warm_start, stats,
                engine, pool, shard,
            ))
        return evaluations

    elapsed = time.perf_counter() - started
    per_candidate = elapsed / len(batch)
    by_scenario = {point.scenario: point for point in outcome.points}
    evaluations = []
    for scenario, assignment, seed_list in batch:
        schedules = outcome.schedules.get(scenario.name, {})
        total_latency = sum(s.total_latency for s in schedules.values())
        rounds = sum(s.num_rounds for s in schedules.values())
        point = by_scenario.get(scenario.name)
        if point is None:
            evaluations.append(Evaluation(
                scenario=scenario,
                assignment=dict(assignment),
                total_latency=total_latency,
                rounds=rounds,
                seeds=tuple(seed_list),
                elapsed=per_candidate,
                error=_failure_text(outcome.reports.get(scenario.name, {})),
                campaigns=0,
                shard=shard,
            ))
            continue
        evaluations.append(Evaluation(
            scenario=scenario,
            assignment=dict(assignment),
            stats=point.stats,
            total_latency=total_latency,
            rounds=rounds,
            seeds=tuple(seed_list),
            elapsed=per_candidate,
            campaigns=1,
            shard=shard,
        ))
    return evaluations


def _measured_vector(
    candidate: CandidateResult,
    objectives: Sequence[Objective],
) -> Optional[List[float]]:
    """A candidate's normalized objective vector for sampler feedback
    (``None`` for failed candidates — the sampler skips them)."""
    if candidate.error is not None:
        return None
    try:
        return [
            obj.normalized(obj.value(candidate.evaluation))
            for obj in objectives
        ]
    except Exception:
        return None


def explore(
    space: Space,
    sampler: "Union[str, Sampler]" = "grid",
    objectives: "Sequence[str | Objective]" = DEFAULT_OBJECTIVES,
    trials: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    samples: Optional[int] = None,
    jobs: int = 1,
    cache: Optional[ScheduleCache] = None,
    cache_dir: "Optional[str | Path]" = None,
    warm_start: bool = True,
    store: "Union[ResultStore, str, Path, None]" = None,
    engine: str = "fast",
    batch_size: int = DEFAULT_BATCH_SIZE,
    pool=None,
    shard: Optional[int] = None,
) -> ExplorationResult:
    """Explore a design space and compute its Pareto front.

    Args:
        space: The parameter space (base scenario + axes).
        sampler: Selection strategy — a :class:`Sampler` instance or a
            name (``grid``, ``random``, ``halton``, ``adaptive``,
            ``surrogate``).  Iterative samplers (``surrogate``) are
            driven in propose/measure rounds; the rest select all
            candidates up front.
        objectives: Objective names or instances (default
            ``energy, latency, miss``).
        trials: MC trials per candidate (default: the base scenario's
            ``simulation.trials``).
        seeds: Explicit per-trial seeds shared by every candidate
            (common random numbers across the space).
        samples: Candidate budget handed to name-built samplers
            (random/halton draw size, adaptive survivor target).
        jobs: Worker processes shared by synthesis and trials.
        cache: Schedule cache to share (or ``cache_dir`` to build one).
        cache_dir: Persistent schedule-cache directory.
        warm_start: Seed Algorithm 1 at the demand lower bound.
        store: Result store — a :class:`ResultStore`, a path (suffix
            selects JSONL vs. SQLite), or ``None`` for in-memory.
            Stored evaluations are **reused, not re-run**.
        engine: Trial engine (``fast``/``reference`` are bit-identical;
            ``vectorized`` batches trials into tensor programs and is
            distribution-equivalent).
        batch_size: Candidates per evaluation batch — the durability
            granularity of the store.
        pool: Optional :class:`~repro.engine.trials.ResidentPool` to
            execute trials on — a long-lived executor whose workers
            cache built contexts across batches (and across calls);
            the distributed exploration shards pass one so ``jobs``
            only governs synthesis.
        shard: Provenance label written into every produced store
            record (the shard id of a distributed exploration;
            ``None`` for single-process runs).

    Returns:
        An :class:`ExplorationResult`; ``result.front`` is the exact
        Pareto front over the measured objective vectors.
    """
    objectives = resolve_objectives(objectives)
    if isinstance(sampler, str):
        sampler = get_sampler(sampler, samples=samples)
    if not isinstance(batch_size, int) or isinstance(batch_size, bool) \
            or batch_size < 1:
        raise ExplorationError(
            f"batch_size must be an integer >= 1, got {batch_size!r}"
        )
    if space.base.simulation is None:
        raise ExplorationError(
            "exploration evaluates candidates through Monte-Carlo "
            "campaigns; give the base scenario a SimulationSpec "
            "(duration, trials, seed)"
        )

    own_store = not isinstance(store, ResultStore)
    store = store if isinstance(store, ResultStore) else open_store(store)
    cache = cache if cache is not None else (
        ScheduleCache(cache_dir) if cache_dir is not None else None
    )
    stats = EngineStats()
    result = ExplorationResult(
        objectives=objectives,
        stats=stats,
        sampler=sampler.name,
        space_size=space.size,
        store_path=str(store.path) if store.path is not None else None,
    )
    started = time.perf_counter()

    def run_selection(selected) -> List[CandidateResult]:
        """Store-check + batched evaluation of one assignment list."""
        pending: List[Tuple[int, str, Scenario, Dict[str, object], List]] = []
        slots: List[Optional[CandidateResult]] = []
        for assignment in selected:
            scenario = space.candidate(assignment)
            if scenario.simulation is None:
                # An axis may null the simulation out (whole-field
                # replacement); catch it per candidate, cleanly.
                raise ExplorationError(
                    f"candidate {scenario.name!r} has no SimulationSpec; "
                    f"exploration evaluates through Monte-Carlo campaigns"
                )
            # Fail fast on predictable scoring problems (e.g. an energy
            # objective without a radio spec) *before* any synthesis or
            # MC budget is spent on this candidate.
            for objective in objectives:
                if objective.requires is not None:
                    objective.requires(scenario)
            try:
                seed_list = _resolve_seeds(scenario, trials, seeds)
            except ValueError as exc:
                raise ExplorationError(str(exc)) from None
            key = _candidate_key(store, scenario, assignment, seed_list)
            record = store.get(key)
            if record is not None:
                evaluation = _evaluation_from_record(
                    record, scenario, assignment
                )
                slots.append(CandidateResult(
                    assignment=dict(assignment),
                    name=scenario.name,
                    key=key,
                    evaluation=evaluation,
                ))
                result.reused += 1
            else:
                pending.append(
                    (len(slots), key, scenario, assignment, seed_list)
                )
                slots.append(None)

        emit("dse.selection", selected=len(selected),
             reused=len(selected) - len(pending), fresh=len(pending),
             shard=shard)
        for start in range(0, len(pending), batch_size):
            chunk = pending[start:start + batch_size]
            evaluations = _evaluate_batch(
                [(s, a, sl) for _, _, s, a, sl in chunk],
                trials, seeds, jobs, cache, warm_start, stats, engine,
                pool, shard,
            )
            failed = sum(1 for e in evaluations if e.error is not None)
            emit("dse.batch", candidates=len(chunk), failed=failed,
                 shard=shard)
            for (slot, key, scenario, assignment, seed_list), evaluation \
                    in zip(chunk, evaluations):
                store.put(key, _record_of(evaluation))
                slots[slot] = CandidateResult(
                    assignment=dict(assignment),
                    name=scenario.name,
                    key=key,
                    evaluation=evaluation,
                )
                result.executed += 1
        assert all(slot is not None for slot in slots)
        return list(slots)

    candidates: List[CandidateResult] = []
    try:
        if getattr(sampler, "iterative", False):
            # Iterative (model-guided) samplers: propose -> measure ->
            # feed the normalized objective vectors back, until the
            # sampler stops proposing.
            measured: List[dict] = []
            round_index = 0
            while True:
                proposals = sampler.propose(space, objectives, measured)
                if not proposals:
                    break
                emit("dse.round", round=round_index,
                     proposed=len(proposals), shard=shard)
                round_index += 1
                round_results = run_selection(proposals)
                candidates.extend(round_results)
                for candidate in round_results:
                    measured.append({
                        "assignment": dict(candidate.assignment),
                        "vector": _measured_vector(candidate, objectives),
                    })
        else:
            candidates = run_selection(sampler.select(space, objectives))
    finally:
        result.elapsed = time.perf_counter() - started
        if own_store:
            store.close()

    result.candidates = candidates
    _score_result(result)
    return result


def _score_result(result: ExplorationResult) -> None:
    """Score a result in place: measured objective vectors, exact front.

    Shared by :func:`explore` and the distributed driver
    (:func:`repro.dse.distributed.explore_sharded`), so a sharded
    exploration ranks candidates exactly like a single-process one.
    """
    objectives = result.objectives
    healthy: List[CandidateResult] = []
    for candidate in result.candidates:
        if candidate.error is not None:
            result.failed += 1
            continue
        candidate.values = {
            obj.name: obj.value(candidate.evaluation) for obj in objectives
        }
        healthy.append(candidate)
    if healthy:
        vectors = [
            tuple(
                obj.normalized(candidate.values[obj.name])
                for obj in objectives
            )
            for candidate in healthy
        ]
        for candidate, rank in zip(healthy, dominance_rank(vectors)):
            candidate.rank = rank
            candidate.on_front = rank == 0


def explore_scenario(
    base: Scenario,
    axes,
    **kwargs,
) -> ExplorationResult:
    """Convenience: build a :class:`Space` around ``base`` and explore.

    ``axes`` is a list of :class:`~repro.dse.space.Axis` (or
    ``(name, target, values)`` tuples); keyword arguments pass through
    to :func:`explore` (plus ``derive=`` for the space).
    """
    from .space import Axis

    derive = kwargs.pop("derive", None)
    built = [
        axis if isinstance(axis, Axis) else Axis(*axis) for axis in axes
    ]
    return explore(Space(base=base, axes=built, derive=derive), **kwargs)
