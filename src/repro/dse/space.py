"""Declarative parameter spaces over :class:`repro.api.Scenario` fields.

A design space is a base scenario plus a list of :class:`Axis` — each
axis names one knob (slots per round ``B``, payload size, loss
probability, solver backend, ...) and the values it ranges over.  The
space enumerates the cartesian product and materializes any *candidate*
(one assignment of every axis) as a derived, fully validated scenario,
so the rest of the explorer never manipulates scenarios directly.

Axes address their knob through a **typed transform** — either a
registered name (``payload``, ``slots``, ``period_scale``, ...) or a
dotted path into the scenario description (``config.round_length``,
``loss.params.data_loss``, ``simulation.policy``, ...).  Transforms are
applied through ``dataclasses.replace``; the base scenario is never
mutated.

A space is JSON-serializable (``Space.save`` / ``Space.load``) so an
exploration is an artifact that can be versioned and re-run — the
result store keys on the candidate scenarios, not on the file.

Example::

    from repro.dse import Axis, Space

    space = Space(
        base=scenario,
        axes=[
            Axis("B", "slots", [1, 2, 5, 10]),
            Axis("payload", "payload", [8, 32, 64]),
        ],
        derive="glossy_timing",   # Tr follows (payload, H, B), eq. Fig. 6
    )
    for candidate in space.candidates():
        ...
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..api.scenario import Scenario, ScenarioError
from ..io.serialize import (
    SCHEMA_VERSION,
    SerializationError,
    mode_from_dict,
    mode_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)


class SpaceError(ValueError):
    """Raised for inconsistent space descriptions or transforms."""


# -- transforms ---------------------------------------------------------------

#: ``name -> callable(scenario, value) -> scenario`` transform registry.
_TRANSFORMS: Dict[str, Callable[[Scenario, object], Scenario]] = {}

#: ``name -> callable(scenario) -> scenario`` post-assignment derivers.
_DERIVERS: Dict[str, Callable[[Scenario], Scenario]] = {}


def register_transform(
    name: str, fn: Callable[[Scenario, object], Scenario]
) -> None:
    """Register a named axis transform (overwrites an existing name)."""
    _TRANSFORMS[name] = fn


def register_deriver(name: str, fn: Callable[[Scenario], Scenario]) -> None:
    """Register a named post-assignment deriver."""
    _DERIVERS[name] = fn


def available_transforms() -> Tuple[str, ...]:
    """Registered named transforms, sorted (dotted paths always work)."""
    return tuple(sorted(_TRANSFORMS))


def available_derivers() -> Tuple[str, ...]:
    """Registered derivers, sorted."""
    return tuple(sorted(_DERIVERS))


def _replace_spec_field(scenario: Scenario, spec_name: str, field_name: str,
                        value: object) -> Scenario:
    spec = getattr(scenario, spec_name)
    if spec is None:
        raise SpaceError(
            f"axis targets {spec_name}.{field_name} but the base scenario "
            f"has no {spec_name} spec"
        )
    if field_name not in {f.name for f in dataclasses.fields(spec)}:
        raise SpaceError(
            f"unknown field {field_name!r} of {spec_name} spec"
        )
    return dataclasses.replace(
        scenario, **{spec_name: dataclasses.replace(spec, **{field_name: value})}
    )


def _replace_spec_param(scenario: Scenario, spec_name: str, param: str,
                        value: object) -> Scenario:
    spec = getattr(scenario, spec_name)
    if spec is None:
        raise SpaceError(
            f"axis targets {spec_name}.params.{param} but the base scenario "
            f"has no {spec_name} spec"
        )
    params = dict(spec.params)
    params[param] = value
    return dataclasses.replace(
        scenario, **{spec_name: dataclasses.replace(spec, params=params)}
    )


def _scale_periods(scenario: Scenario, factor: object) -> Scenario:
    if isinstance(factor, bool) or not isinstance(factor, (int, float)) \
            or factor <= 0:
        raise SpaceError(
            f"period_scale needs a number > 0, got {factor!r}"
        )
    modes = []
    for mode in scenario.modes:
        record = mode_to_dict(mode)
        for app in record["applications"]:
            app["period"] = app["period"] * factor
            app["deadline"] = app["deadline"] * factor
        modes.append(mode_from_dict(record))
    return dataclasses.replace(scenario, modes=modes)


def _set_mode_requests(scenario: Scenario, value: object) -> Scenario:
    if scenario.simulation is None:
        raise SpaceError(
            "axis targets simulation.mode_requests but the base scenario "
            "has no simulation spec"
        )
    try:
        requests = tuple((float(t), str(mode)) for t, mode in value)
    except (TypeError, ValueError):
        raise SpaceError(
            f"mode_requests axis values must be [[time, mode], ...] lists, "
            f"got {value!r}"
        ) from None
    return dataclasses.replace(
        scenario,
        simulation=dataclasses.replace(
            scenario.simulation, mode_requests=requests
        ),
    )


register_transform(
    "payload", lambda s, v: _replace_spec_field(s, "radio", "payload_bytes", v)
)
register_transform(
    "slots",
    lambda s, v: dataclasses.replace(
        s, config=dataclasses.replace(s.config, slots_per_round=v)
    ),
)
register_transform(
    "round_length",
    lambda s, v: dataclasses.replace(
        s, config=dataclasses.replace(s.config, round_length=v)
    ),
)
register_transform("backend", lambda s, v: dataclasses.replace(s, backend=v))
register_transform(
    "policy", lambda s, v: _replace_spec_field(s, "simulation", "policy", v)
)
register_transform("period_scale", _scale_periods)
register_transform("mode_requests", _set_mode_requests)


def radio_dimensions(scenario: Scenario, needed_by: str) -> Tuple[int, int]:
    """``(payload_bytes, diameter)`` of a scenario, for analytic models.

    The single resolution rule shared by the ``glossy_timing`` deriver
    and the analytic energy objectives: the radio spec's diameter wins,
    falling back to the built topology's.  Raises :class:`SpaceError`
    naming ``needed_by`` when the scenario carries neither.
    """
    if scenario.radio is None:
        raise SpaceError(
            f"{needed_by} needs a radio spec (payload_bytes, diameter) "
            f"on the scenario"
        )
    diameter = scenario.radio.diameter
    if diameter is None:
        if scenario.topology is None:
            raise SpaceError(
                f"{needed_by}: radio spec has no diameter and the "
                f"scenario has no topology to take it from"
            )
        diameter = scenario.build_topology().diameter
    return scenario.radio.payload_bytes, diameter


def _derive_glossy_timing(scenario: Scenario) -> Scenario:
    """Set ``config.round_length`` from (payload, H, B) — paper Fig. 6.

    The round length ``Tr`` is not a free knob: it follows from the
    Glossy timing model once payload size, network diameter, and slots
    per round are fixed.  This deriver recomputes it per candidate so a
    payload or slots axis automatically produces faithful round
    lengths.  ``max_round_gap`` is raised to ``Tr`` when the derived
    round no longer fits under it (the config invariant requires
    ``max_round_gap >= round_length``).
    """
    from ..timing import round_length_ms

    payload, diameter = radio_dimensions(scenario, "deriver 'glossy_timing'")
    tr = round_length_ms(payload, diameter, scenario.config.slots_per_round)
    gap = scenario.config.max_round_gap
    if gap is not None and gap < tr:
        gap = tr
    return dataclasses.replace(
        scenario,
        config=dataclasses.replace(
            scenario.config, round_length=tr, max_round_gap=gap
        ),
    )


register_deriver("glossy_timing", _derive_glossy_timing)


def apply_target(scenario: Scenario, target: str, value: object) -> Scenario:
    """Apply one axis transform to a scenario, returning the copy.

    ``target`` is resolved in order: registered named transform, dotted
    path (``config.*``, ``radio.*``, ``simulation.*``, ``loss.kind``,
    ``loss.params.*``, ``topology.kind``, ``topology.params.*``), then
    a top-level :class:`Scenario` field (whole-value replacement, the
    :func:`repro.api.sweep` compatibility path).
    """
    if target in _TRANSFORMS:
        try:
            return _TRANSFORMS[target](scenario, value)
        except (TypeError, ValueError) as exc:
            if isinstance(exc, SpaceError):
                raise
            raise SpaceError(
                f"transform {target!r} rejected value {value!r}: {exc}"
            ) from None
    head, dot, rest = target.partition(".")
    if dot:
        if head == "config":
            if rest not in {f.name for f in dataclasses.fields(scenario.config)}:
                raise SpaceError(f"unknown config field {rest!r}")
            try:
                return dataclasses.replace(
                    scenario,
                    config=dataclasses.replace(scenario.config, **{rest: value}),
                )
            except ValueError as exc:
                raise SpaceError(
                    f"config.{rest} rejected value {value!r}: {exc}"
                ) from None
        if head in ("loss", "topology") and rest == "kind":
            spec = getattr(scenario, head)
            if spec is None:
                raise SpaceError(
                    f"axis targets {target} but the base scenario has no "
                    f"{head} spec"
                )
            return dataclasses.replace(
                scenario, **{head: dataclasses.replace(spec, kind=value)}
            )
        if head in ("loss", "topology") and rest.startswith("params."):
            return _replace_spec_param(
                scenario, head, rest[len("params."):], value
            )
        if head in ("radio", "simulation"):
            return _replace_spec_field(scenario, head, rest, value)
        raise SpaceError(
            f"unknown axis target {target!r}; expected a registered "
            f"transform ({', '.join(available_transforms())}), a dotted "
            f"path (config.*, radio.*, simulation.*, loss.kind, "
            f"loss.params.*, topology.kind, topology.params.*), or a "
            f"Scenario field"
        )
    if target in {f.name for f in dataclasses.fields(Scenario)}:
        if target == "name":
            raise SpaceError(
                "axes cannot target 'name'; candidate names are derived"
            )
        return dataclasses.replace(scenario, **{target: value})
    raise SpaceError(
        f"unknown axis target {target!r}; registered transforms: "
        f"{', '.join(available_transforms())}"
    )


# -- axes and spaces ----------------------------------------------------------


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class Axis:
    """One explorable dimension: a label, a transform, and its values.

    Attributes:
        name: Axis label — keys assignments, result tables, and store
            records.
        target: Transform applied per value (see :func:`apply_target`).
        values: The values the axis ranges over, in exploration order.
            JSON-serializable values round-trip through ``Space.save``;
            arbitrary objects work in memory (the ``sweep()`` shim
            passes spec dataclasses).
    """

    name: str
    target: str
    values: Tuple[object, ...]

    def __init__(self, name: str, target: str, values: Sequence[object]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "values", tuple(values))
        if not name:
            raise SpaceError("axis name must be non-empty")
        if not self.values:
            raise SpaceError(f"axis {name!r} has no values")
        seen = []
        for value in self.values:
            if value in seen:
                raise SpaceError(
                    f"axis {name!r} lists value {value!r} twice; duplicate "
                    f"candidates would collide"
                )
            seen.append(value)

    def to_dict(self) -> dict:
        try:
            json.dumps(list(self.values))
        except TypeError as exc:
            raise SpaceError(
                f"axis {self.name!r} carries non-JSON values and cannot be "
                f"serialized: {exc}"
            ) from None
        return {
            "name": self.name,
            "target": self.target,
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Axis":
        try:
            return cls(data["name"], data["target"], data["values"])
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"malformed axis record: {exc}") from exc


@dataclass
class Space:
    """A base scenario plus the axes spanning its design space.

    Attributes:
        base: The scenario every candidate derives from.
        axes: Explorable dimensions; the grid is their cartesian
            product, last axis fastest (``itertools.product`` order).
        derive: Optional registered deriver applied to every candidate
            after all axes (e.g. ``"glossy_timing"`` recomputes the
            round length from payload/diameter/slots).
    """

    base: Scenario
    axes: List[Axis] = field(default_factory=list)
    derive: Optional[str] = None

    def __post_init__(self) -> None:
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate axis names: {names}")
        if self.derive is not None and self.derive not in _DERIVERS:
            raise SpaceError(
                f"unknown deriver {self.derive!r}; registered: "
                f"{', '.join(available_derivers()) or '(none)'}"
            )

    # -- enumeration -----------------------------------------------------
    @property
    def size(self) -> int:
        """Number of grid points (product of axis cardinalities)."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def assignments(self) -> Iterator[Dict[str, object]]:
        """Every grid assignment, in deterministic product order."""
        if not self.axes:
            yield {}
            return
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            yield {
                axis.name: value for axis, value in zip(self.axes, combo)
            }

    def assignment_at(self, index: int) -> Dict[str, object]:
        """The grid assignment at flat ``index`` (mixed-radix decode)."""
        if not 0 <= index < self.size:
            raise IndexError(
                f"assignment index {index} out of range [0, {self.size})"
            )
        assignment: Dict[str, object] = {}
        for axis in reversed(self.axes):
            index, digit = divmod(index, len(axis.values))
            assignment[axis.name] = axis.values[digit]
        return {axis.name: assignment[axis.name] for axis in self.axes}

    # -- materialization -------------------------------------------------
    def candidate_name(self, assignment: Dict[str, object]) -> str:
        """Deterministic, human-readable candidate scenario name."""
        parts = ",".join(
            f"{axis.name}={_format_value(assignment[axis.name])}"
            for axis in self.axes
        )
        return f"{self.base.name}[{parts}]" if parts else self.base.name

    def candidate(self, assignment: Dict[str, object]) -> Scenario:
        """Materialize one assignment as a validated scenario."""
        unknown = set(assignment) - {axis.name for axis in self.axes}
        if unknown:
            raise SpaceError(
                f"assignment names unknown axes: {sorted(unknown)}"
            )
        missing = [
            axis.name for axis in self.axes if axis.name not in assignment
        ]
        if missing:
            raise SpaceError(f"assignment misses axes: {missing}")
        scenario = self.base
        for axis in self.axes:
            scenario = apply_target(
                scenario, axis.target, assignment[axis.name]
            )
        if self.derive is not None:
            scenario = _DERIVERS[self.derive](scenario)
        scenario = dataclasses.replace(
            scenario, name=self.candidate_name(assignment)
        )
        try:
            scenario.validate()
        except ScenarioError as exc:
            raise SpaceError(
                f"assignment {assignment!r} produces an invalid scenario: "
                f"{exc}"
            ) from None
        return scenario

    def candidates(self) -> Iterator[Scenario]:
        """Every grid candidate, materialized lazily."""
        for assignment in self.assignments():
            yield self.candidate(assignment)

    def validate(self) -> None:
        """Fail fast: base scenario valid, every axis applies cleanly.

        Applies each axis's values to the base **individually** (not
        the full product), so validation stays O(sum of axis lengths).
        """
        self.base.validate()
        for axis in self.axes:
            for value in axis.values:
                scenario = apply_target(self.base, axis.target, value)
                if self.derive is None:
                    scenario.validate()
        if self.derive is not None and self.axes:
            first = {
                axis.name: axis.values[0] for axis in self.axes
            }
            self.candidate(first)

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "space",
            "scenario": scenario_to_dict(self.base),
            "axes": [axis.to_dict() for axis in self.axes],
            "derive": self.derive,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Space":
        if data.get("kind") != "space":
            raise SerializationError(
                f"not a space record (kind={data.get('kind')!r})"
            )
        schema = data.get("schema")
        if schema is not None and schema != SCHEMA_VERSION:
            raise SerializationError(
                f"unsupported schema {schema!r} (expected {SCHEMA_VERSION})"
            )
        try:
            return cls(
                base=scenario_from_dict(data["scenario"]),
                axes=[Axis.from_dict(a) for a in data.get("axes", [])],
                derive=data.get("derive"),
            )
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"malformed space record: {exc}"
            ) from exc

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True)
        )

    @classmethod
    def load(cls, path: "str | Path") -> "Space":
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise SerializationError(f"not valid JSON: {exc}") from exc
        return cls.from_dict(payload)
