"""Persistent, content-addressed result stores — explorations resume.

Every evaluated candidate is written to the store under a SHA-256 key
of *what was evaluated*: the candidate scenario's canonical JSON image,
the axis assignment, the resolved trial seed list, and the record
schema version.  Looking the key up before evaluating makes every
exploration incremental:

* an interrupted run resumes without re-executing completed campaigns
  (records are flushed per evaluation batch, so at most one batch of
  work is ever lost);
* re-running the same CLI command against the same store executes
  **zero** new campaigns;
* growing an axis re-uses every overlapping grid point.

Two backends share one interface, selected by file suffix in
:func:`open_store`: ``.sqlite`` / ``.db`` / ``.sqlite3`` use stdlib
SQLite (one ``results`` table, key-unique upserts), anything else is
append-only JSONL (one record per line, last write wins — crash-safe
because a torn final line is detected and ignored).

The trial engine is deliberately **not** part of the key: the fast and
reference engines are bit-identical (asserted by ``tests/mc``), so
results transfer between them.  The vectorized engine is only
*distribution-equivalent* (``tests/mc/test_equivalence.py``): reusing a
store across it and the scalar engines mixes statistically compatible
but not bit-equal estimates — fine for exploration, worth knowing for
exact reproduction.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence

from ..api.scenario import Scenario
from ..io.serialize import canonical_dumps, scenario_to_dict

#: Schema tag of store records; bump on incompatible record changes.
STORE_SCHEMA = "repro-dse/1"


class StoreError(ValueError):
    """Raised for unusable store files or malformed records."""


def candidate_key(
    scenario: Scenario,
    assignment: Dict[str, object],
    seeds: Sequence[Optional[int]],
) -> str:
    """Stable content hash of one evaluation's identity.

    Equal inputs hash equally across processes and platforms (the
    scenario image and the assignment are canonicalized); anything
    that changes the campaign's results — workload, config, loss
    parameters, seeds — changes the key.  ``mode_id`` labels are
    excluded: the mode graph assigns them as an execution side effect
    (``Scenario.to_system`` sets them in place), so they would make
    the key depend on whether a campaign already ran in this process.
    """
    scenario_data = scenario_to_dict(scenario)
    for mode_record in scenario_data.get("modes", []):
        mode_record.pop("mode_id", None)
    try:
        payload = canonical_dumps({
            "schema": STORE_SCHEMA,
            "scenario": scenario_data,
            "assignment": dict(assignment),
            "seeds": list(seeds),
        })
    except TypeError as exc:
        raise StoreError(
            f"candidate of scenario {scenario.name!r} is not "
            f"JSON-serializable and cannot be stored: {exc}"
        ) from None
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultStore:
    """Interface of a persistent key -> record evaluation store.

    Stores are **thread-safe**: every backend serializes its writes
    through one lock, so many worker threads (the ``repro.serve``
    daemon's job queue, concurrent explorations sharing one store) can
    append to the same store without torn lines or ``database is
    locked`` failures.
    """

    #: Backend label for tables and logs.
    backend = "memory"

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self._records: Dict[str, dict] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[dict]:
        """The stored record, or ``None`` for unseen keys."""
        return self._records.get(key)

    def put(self, key: str, record: dict) -> None:
        """Persist one record durably (visible to a process crash)."""
        with self._lock:
            self._records[key] = dict(record)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryStore(ResultStore):
    """A store without persistence — dedup within one process only."""


class JsonlStore(ResultStore):
    """Append-only JSONL backend: one ``{"key": ..., ...}`` per line.

    Appends are flushed per record; re-written keys append a new line
    and the *last* occurrence wins on load.  A torn final line (crash
    mid-append) is skipped with all complete records preserved.
    """

    backend = "jsonl"

    def __init__(self, path: "str | Path") -> None:
        super().__init__(Path(path))
        self._load()
        self._file = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            return
        text = self.path.read_text(encoding="utf-8")
        lines = text.splitlines()
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines) and not text.endswith("\n"):
                    continue  # torn final append from a killed run
                raise StoreError(
                    f"{self.path}:{number}: not valid JSON"
                ) from None
            if not isinstance(record, dict) or "key" not in record:
                raise StoreError(
                    f"{self.path}:{number}: record without a 'key'"
                )
            key = record.pop("key")
            self._records[key] = record

    def put(self, key: str, record: dict) -> None:
        line = json.dumps({"key": key, **record}, sort_keys=True)
        with self._lock:
            self._records[key] = dict(record)
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class SqliteStore(ResultStore):
    """SQLite backend: one ``results(key PRIMARY KEY, record)`` table.

    Built for *shared* use — the serve daemon and parallel exploration
    shards append to one store file concurrently:

    * the database runs in **WAL mode** (readers never block the
      writer, and vice versa; WAL needs no exclusive lock per commit),
      falling back silently to the default journal on filesystems that
      cannot memory-map the WAL index;
    * a ``busy_timeout`` makes *cross-process* writers queue behind
      each other instead of failing with ``database is locked``;
    * an instance may be used from any thread (``check_same_thread``
      off, all statement execution behind the store lock).
    """

    backend = "sqlite"

    #: How long a writer waits for a competing process's lock (ms).
    BUSY_TIMEOUT_MS = 30_000

    def __init__(self, path: "str | Path") -> None:
        super().__init__(Path(path))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(
            str(self.path),
            timeout=self.BUSY_TIMEOUT_MS / 1000.0,
            check_same_thread=False,
        )
        try:
            self._connection.execute(
                f"PRAGMA busy_timeout = {self.BUSY_TIMEOUT_MS}"
            )
            # WAL is persistent (a property of the database file); it
            # may be refused on e.g. network filesystems, in which case
            # the journal stays at its default and only cross-process
            # concurrency degrades.
            self.journal_mode = self._connection.execute(
                "PRAGMA journal_mode = WAL"
            ).fetchone()[0]
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "  key TEXT PRIMARY KEY,"
                "  record TEXT NOT NULL"
                ")"
            )
            self._connection.commit()
            rows = self._connection.execute(
                "SELECT key, record FROM results"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            self._connection.close()
            raise StoreError(f"{self.path}: not a result store: {exc}") from None
        for key, text in rows:
            try:
                self._records[key] = json.loads(text)
            except json.JSONDecodeError:
                raise StoreError(
                    f"{self.path}: corrupt record under key {key!r}"
                ) from None

    def put(self, key: str, record: dict) -> None:
        with self._lock:
            self._records[key] = dict(record)
            self._connection.execute(
                "INSERT INTO results (key, record) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET record = excluded.record",
                (key, json.dumps(record, sort_keys=True)),
            )
            self._connection.commit()

    def refresh(self) -> int:
        """Re-read records another process appended since open.

        Returns how many keys were added or changed.  The serve daemon
        calls this on restart-resume sanity checks; explorations that
        share a store across shards call it at merge points.
        """
        with self._lock:
            rows = self._connection.execute(
                "SELECT key, record FROM results"
            ).fetchall()
            changed = 0
            for key, text in rows:
                try:
                    record = json.loads(text)
                except json.JSONDecodeError:
                    raise StoreError(
                        f"{self.path}: corrupt record under key {key!r}"
                    ) from None
                if self._records.get(key) != record:
                    self._records[key] = record
                    changed += 1
            return changed

    def close(self) -> None:
        with self._lock:
            self._connection.close()


#: File suffixes routed to the SQLite backend.
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_store(path: "str | Path | None") -> ResultStore:
    """Open (creating if needed) the result store at ``path``.

    ``None`` returns an in-memory store (no persistence).  The backend
    is chosen by suffix: ``.sqlite`` / ``.sqlite3`` / ``.db`` open
    SQLite, everything else (conventionally ``.jsonl``) the JSONL
    backend.
    """
    if path is None:
        return MemoryStore()
    path = Path(path)
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return SqliteStore(path)
    return JsonlStore(path)


# -- partitioned stores and merging -------------------------------------------


def part_path(path: "str | Path", shard: int) -> Path:
    """The partitioned segment of ``path`` owned by ``shard``.

    The shard tag sits *before* the suffix so the segment keeps the
    parent store's backend: ``explore.jsonl`` -> ``explore.part-3.jsonl``,
    ``results.sqlite`` -> ``results.part-0.sqlite``.
    """
    if not isinstance(shard, int) or isinstance(shard, bool) or shard < 0:
        raise StoreError(f"shard must be an integer >= 0, got {shard!r}")
    path = Path(path)
    return path.with_name(f"{path.stem}.part-{shard}{path.suffix}")


def discover_parts(path: "str | Path") -> "list[Path]":
    """Existing partitioned segments of the store at ``path``, sorted
    by shard id — what a crashed distributed exploration left behind."""
    path = Path(path)
    found = []
    for candidate in path.parent.glob(f"{path.stem}.part-*{path.suffix}"):
        tag = candidate.name[len(path.stem) + len(".part-"):]
        tag = tag[: len(tag) - len(path.suffix)] if path.suffix else tag
        if tag.isdigit():
            found.append((int(tag), candidate))
    return [candidate for _shard, candidate in sorted(found)]


@dataclass
class MergeReport:
    """What one :func:`merge_stores` call did.

    Attributes:
        target: Path of the merged-into store (``None`` in-memory).
        parts: The segment paths that were merged, in order.
        examined: Total records read from the segments.
        merged: Records copied under keys the target did not have.
        updated: Records that replaced an older target record
            (newest ``written_at`` wins).
        ignored: Segment records dropped because the target already
            held the same or a newer record under that key.
    """

    target: Optional[str]
    parts: "list[str]" = field(default_factory=list)
    examined: int = 0
    merged: int = 0
    updated: int = 0
    ignored: int = 0

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "parts": list(self.parts),
            "examined": self.examined,
            "merged": self.merged,
            "updated": self.updated,
            "ignored": self.ignored,
        }


def _written_at(record: dict) -> float:
    """The record's write stamp; pre-provenance records sort oldest."""
    stamp = record.get("written_at")
    return stamp if isinstance(stamp, (int, float)) else 0.0


def merge_stores(
    target: "ResultStore | str | Path",
    parts: "Optional[Sequence[str | Path]]" = None,
    delete_parts: bool = False,
) -> MergeReport:
    """Merge partitioned segments into one store, deduping by key.

    Every record of every segment is copied into ``target`` unless the
    target already holds a record under the same candidate key with an
    equal-or-newer ``written_at`` stamp — **newest wins**, so re-merging
    is idempotent and a stale duplicate (a block re-executed after its
    first owner was killed) never shadows fresher data.  Torn segments
    are safe: the JSONL loader drops a torn final line and SQLite
    recovers from its journal, so a SIGKILLed shard's segment merges
    cleanly minus at most its last in-flight record.

    Args:
        target: The store (or path) to merge into.
        parts: Segment paths; default: every ``<stem>.part-<n><suffix>``
            sibling of the target (:func:`discover_parts`) — which
            requires a target with a path.
        delete_parts: Remove each segment file after a successful
            merge (SQLite WAL side files included).

    Returns:
        A :class:`MergeReport`; ``report.merged + report.updated`` is
        the number of target writes.
    """
    own_target = not isinstance(target, ResultStore)
    target_store = target if isinstance(target, ResultStore) else \
        open_store(target)
    try:
        if parts is None:
            if target_store.path is None:
                raise StoreError(
                    "merge_stores needs explicit parts for an in-memory "
                    "target (there is no path to discover segments from)"
                )
            parts = discover_parts(target_store.path)
        part_paths = [Path(part) for part in parts]
        report = MergeReport(
            target=(
                str(target_store.path)
                if target_store.path is not None else None
            ),
            parts=[str(part) for part in part_paths],
        )
        for part in part_paths:
            if not part.exists():
                raise StoreError(f"store segment {part} does not exist")
            segment = open_store(part)
            try:
                for key in list(segment.keys()):
                    record = segment.get(key)
                    assert record is not None
                    report.examined += 1
                    existing = target_store.get(key)
                    if existing is None:
                        target_store.put(key, record)
                        report.merged += 1
                    elif _written_at(record) > _written_at(existing):
                        target_store.put(key, record)
                        report.updated += 1
                    else:
                        report.ignored += 1
            finally:
                segment.close()
        if delete_parts:
            for part in part_paths:
                part.unlink(missing_ok=True)
                for side in ("-wal", "-shm"):  # SQLite WAL side files
                    Path(str(part) + side).unlink(missing_ok=True)
        return report
    finally:
        if own_target:
            target_store.close()
