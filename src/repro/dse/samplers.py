"""Candidate selection strategies over a :class:`~repro.dse.space.Space`.

A sampler decides *which* grid assignments the explorer evaluates:

* :class:`GridSampler` — the exhaustive cartesian product, in
  deterministic grid order (the reference every other sampler is
  judged against);
* :class:`RandomSampler` — a seeded uniform sample without
  replacement, for cheap first looks at huge spaces;
* :class:`HaltonSampler` — a low-discrepancy (quasi-random) sample:
  deterministic, seedless, and better spread over the grid than
  uniform sampling at the same budget;
* :class:`SuccessiveHalvingSampler` — the adaptive strategy: rank the
  full grid by the objectives' **cheap analytic bounds** (paper
  eq. 13 for latency, the Sec. V radio-on model for energy) and
  successively halve away the most-dominated candidates before a
  single Monte-Carlo trial is spent.  Pruning respects axes the
  analytic model cannot see (loss parameters, simulation knobs):
  candidates are only compared within groups that agree on those
  axes, and an analytically non-dominated candidate is never dropped.

Samplers are pure selection: they return assignments, never results,
so every sampler composes with the same evaluation/store pipeline.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from .objectives import Objective, resolve_objectives
from .pareto import dominance_rank
from .space import Axis, Space

Assignment = Dict[str, object]


class SamplerError(ValueError):
    """Raised for invalid sampler parameters."""


class Sampler:
    """Base class: a named strategy selecting grid assignments.

    Two protocols share this base.  One-shot samplers implement
    :meth:`select` and pick every candidate up front.  *Iterative*
    samplers (``iterative = True``, e.g. the model-guided
    :class:`~repro.dse.surrogate.SurrogateSampler`) implement
    ``propose(space, objectives, measured)`` instead and are driven in
    rounds by the explorer, which feeds the measured objective vectors
    back after every round.
    """

    name = "sampler"

    #: Iterative samplers are driven through ``propose`` in rounds.
    iterative = False

    def select(
        self, space: Space, objectives: Sequence[Objective]
    ) -> List[Assignment]:
        raise NotImplementedError


class GridSampler(Sampler):
    """Every grid point, in deterministic product order."""

    name = "grid"

    def select(
        self, space: Space, objectives: Sequence[Objective]
    ) -> List[Assignment]:
        return list(space.assignments())


class RandomSampler(Sampler):
    """A seeded uniform sample of the grid, without replacement.

    Args:
        samples: Number of assignments to draw (clamped to the grid
            size).
        seed: RNG seed; equal seeds give equal samples on every
            platform.
    """

    name = "random"

    def __init__(self, samples: int, seed: int = 0) -> None:
        if not isinstance(samples, int) or isinstance(samples, bool) \
                or samples < 1:
            raise SamplerError(
                f"samples must be an integer >= 1, got {samples!r}"
            )
        self.samples = samples
        self.seed = seed

    def select(
        self, space: Space, objectives: Sequence[Objective]
    ) -> List[Assignment]:
        count = min(self.samples, space.size)
        rng = random.Random(self.seed)
        indices = sorted(rng.sample(range(space.size), count))
        return [space.assignment_at(index) for index in indices]


def _halton(index: int, base: int) -> float:
    """The ``index``-th element of the base-``base`` Halton sequence."""
    result, fraction = 0.0, 1.0
    while index > 0:
        fraction /= base
        result += fraction * (index % base)
        index //= base
    return result


_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


class HaltonSampler(Sampler):
    """A low-discrepancy sample: axis ``i`` follows the Halton sequence
    in the ``i``-th prime base, quantized onto the axis values.

    Deterministic and seedless; duplicate grid points produced by the
    quantization are skipped, so the result is ``samples`` *distinct*
    assignments (or the whole grid, whichever is smaller).
    """

    name = "halton"

    def __init__(self, samples: int) -> None:
        if not isinstance(samples, int) or isinstance(samples, bool) \
                or samples < 1:
            raise SamplerError(
                f"samples must be an integer >= 1, got {samples!r}"
            )
        self.samples = samples

    def select(
        self, space: Space, objectives: Sequence[Objective]
    ) -> List[Assignment]:
        if len(space.axes) > len(_PRIMES):
            raise SamplerError(
                f"halton supports up to {len(_PRIMES)} axes, space has "
                f"{len(space.axes)}"
            )
        count = min(self.samples, space.size)
        chosen: List[Assignment] = []
        seen = set()
        index = 1
        # The sequence visits every grid cell eventually; the cutoff
        # only guards degenerate quantizations.
        limit = 200 * max(count, 1) + 100
        while len(chosen) < count and index <= limit:
            assignment = {
                axis.name: axis.values[
                    min(
                        int(_halton(index, _PRIMES[i]) * len(axis.values)),
                        len(axis.values) - 1,
                    )
                ]
                for i, axis in enumerate(space.axes)
            }
            key = tuple(repr(assignment[a.name]) for a in space.axes)
            if key not in seen:
                seen.add(key)
                chosen.append(assignment)
            index += 1
        return chosen


#: Axis targets the analytic bounds cannot see: pruning never compares
#: candidates that differ on one of these.
_NON_ANALYTIC_TARGETS = {
    "policy", "mode_requests", "period_scale", "loss", "simulation",
    "transitions", "modes",
}
_NON_ANALYTIC_PREFIXES = ("loss.", "simulation.")


def _axis_is_analytic(axis: Axis) -> bool:
    if axis.target in _NON_ANALYTIC_TARGETS:
        return False
    return not axis.target.startswith(_NON_ANALYTIC_PREFIXES)


class SuccessiveHalvingSampler(Sampler):
    """Adaptive pruning on analytic bounds before any MC trial.

    The full grid is scored with every objective's ``bound`` (skipping
    objectives that have none), normalized to minimization, and ranked
    by non-dominated sorting.  Within each group of candidates that
    agree on the non-analytic axes (loss parameters, simulation
    knobs), the most-dominated half is dropped per rung until the
    group reaches its share of ``budget`` or only analytically
    non-dominated candidates remain — those are **never** dropped, so
    the sampler is conservative exactly where the cheap model stops
    discriminating.

    When no selected objective carries a bound the sampler degrades to
    the exhaustive grid (there is nothing cheap to rank by, and
    guessing would risk the front).

    Args:
        budget: Target number of surviving assignments (``None``:
            half the grid, rounded up).
    """

    name = "adaptive"

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and (
            not isinstance(budget, int) or isinstance(budget, bool)
            or budget < 1
        ):
            raise SamplerError(
                f"budget must be an integer >= 1 or None, got {budget!r}"
            )
        self.budget = budget
        #: Filled by :meth:`select`: (kept, total) of the last run.
        self.last_pruned: Optional[Tuple[int, int]] = None

    def select(
        self, space: Space, objectives: Sequence[Objective]
    ) -> List[Assignment]:
        objectives = resolve_objectives(objectives)
        assignments = list(space.assignments())
        bounded = [obj for obj in objectives if obj.bound is not None]
        if not bounded or len(assignments) <= 1:
            self.last_pruned = (len(assignments), len(assignments))
            return assignments

        grouping = [
            axis for axis in space.axes if not _axis_is_analytic(axis)
        ]
        groups: Dict[Tuple[str, ...], List[int]] = {}
        for index, assignment in enumerate(assignments):
            key = tuple(repr(assignment[axis.name]) for axis in grouping)
            groups.setdefault(key, []).append(index)

        vectors: List[Tuple[float, ...]] = []
        for assignment in assignments:
            candidate = space.candidate(assignment)
            vectors.append(tuple(
                obj.normalized(obj.bound(candidate)) for obj in bounded
            ))

        total = len(assignments)
        target_total = (
            self.budget if self.budget is not None else math.ceil(total / 2)
        )
        survivors: List[int] = []
        for key in groups:
            members = groups[key]
            # Each group gets its proportional share of the budget,
            # never less than one candidate.
            target = max(1, round(target_total * len(members) / total))
            survivors.extend(self._halve(members, vectors, target))
        survivors.sort()
        self.last_pruned = (len(survivors), total)
        return [assignments[index] for index in survivors]

    @staticmethod
    def _halve(
        members: List[int],
        vectors: Sequence[Tuple[float, ...]],
        target: int,
    ) -> List[int]:
        alive = list(members)
        while len(alive) > target:
            ranks = dominance_rank([vectors[i] for i in alive])
            front_size = sum(1 for rank in ranks if rank == 0)
            if front_size == len(alive):
                break  # all mutually non-dominated: nothing safe to drop
            # One rung: drop the most-dominated half, but never below
            # the target and never any rank-0 (front) candidate.  The
            # loop guard gives target < len(alive), and front_size <
            # len(alive) here, so every rung strictly shrinks.
            keep = min(
                max(target, front_size, math.ceil(len(alive) / 2)),
                len(alive) - 1,
            )
            order = sorted(range(len(alive)), key=lambda i: (ranks[i], i))
            alive = sorted(alive[i] for i in order[:keep])
        return alive


def _surrogate_sampler(*args, **kwargs):
    # Deferred import: repro.dse.surrogate imports this module's base
    # class, so the registry resolves it lazily.
    from .surrogate import SurrogateSampler

    return SurrogateSampler(*args, **kwargs)


_SAMPLERS = {
    "grid": GridSampler,
    "random": RandomSampler,
    "halton": HaltonSampler,
    "adaptive": SuccessiveHalvingSampler,
    "surrogate": _surrogate_sampler,
}


def available_samplers() -> Tuple[str, ...]:
    """Known sampler names, sorted."""
    return tuple(sorted(_SAMPLERS))


def get_sampler(
    name: str,
    samples: Optional[int] = None,
    seed: Optional[int] = None,
) -> Sampler:
    """Build a sampler from CLI-ish parameters.

    ``samples`` is the candidate budget (random/halton draw size,
    adaptive survivor target; ignored by grid); ``seed`` only affects
    ``random``.
    """
    if name == "grid":
        return GridSampler()
    if name == "random":
        return RandomSampler(
            samples if samples is not None else 16,
            seed=seed if seed is not None else 0,
        )
    if name == "halton":
        return HaltonSampler(samples if samples is not None else 16)
    if name == "adaptive":
        return SuccessiveHalvingSampler(budget=samples)
    if name == "surrogate":
        return _surrogate_sampler(
            budget=samples, seed=seed if seed is not None else 0
        )
    raise SamplerError(
        f"unknown sampler {name!r}; available: "
        f"{', '.join(available_samplers())}"
    )
