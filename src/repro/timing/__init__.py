"""Time and energy models of TTW rounds (paper Sec. V, Table I).

Closed-form models of slot/flood/round duration and radio-on time, used
both to dimension the scheduler's ``Tr`` input and to regenerate
Figs. 6 and 7.
"""

from .constants import DEFAULT_CONSTANTS, GlossyConstants
from .energy import (
    energy_saving,
    energy_saving_limit,
    no_rounds_on_time,
    rounds_on_time,
)
from .slots import (
    RoundTiming,
    flood_time,
    hop_time,
    round_length,
    round_length_ms,
    round_timing,
    slot_off_time,
    slot_on_time,
    slot_time,
    transmission_time,
)

__all__ = [
    "DEFAULT_CONSTANTS",
    "GlossyConstants",
    "RoundTiming",
    "energy_saving",
    "energy_saving_limit",
    "flood_time",
    "hop_time",
    "no_rounds_on_time",
    "round_length",
    "round_length_ms",
    "round_timing",
    "rounds_on_time",
    "slot_off_time",
    "slot_on_time",
    "slot_time",
    "transmission_time",
]
