"""Energy model: radio-on time and the benefit of rounds — paper Sec. V.

The paper quantifies energy through radio-on time.  Rounds amortize one
beacon over ``B`` message slots, whereas a design without rounds pays a
beacon per message (eq. 20):

    T_wo/r(l) = B * (T_slot(L_beacon) + T_slot(l))            (20)
    E = (T_on_wo/r - T_on_r) / T_on_wo/r                      (Fig. 7)

``E`` only involves the radio-ON portions (Fig. 5: the idle parts are
spent with the radio off in both designs).
"""

from __future__ import annotations

from .constants import DEFAULT_CONSTANTS, GlossyConstants
from .slots import slot_on_time


def rounds_on_time(
    payload_bytes: int,
    diameter: int,
    num_slots: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Radio-on time of one TTW round serving ``B`` messages [s].

    One beacon flood plus ``B`` data floods.
    """
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    return slot_on_time(constants.l_beacon, diameter, constants) + num_slots * (
        slot_on_time(payload_bytes, diameter, constants)
    )


def no_rounds_on_time(
    payload_bytes: int,
    diameter: int,
    num_messages: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Radio-on time to send ``B`` messages without rounds [s].

    Paper eq. (20): each message transmission is preceded by its own
    beacon (beacons are required to prevent collisions, Sec. II).
    """
    if num_messages < 1:
        raise ValueError("num_messages must be >= 1")
    per_message = slot_on_time(
        constants.l_beacon, diameter, constants
    ) + slot_on_time(payload_bytes, diameter, constants)
    return num_messages * per_message


def energy_saving(
    payload_bytes: int,
    diameter: int,
    num_slots: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Relative radio-on-time saving of rounds vs. per-message beacons.

    ``E = (T_on_wo/r - T_on_r) / T_on_wo/r`` — the quantity plotted in
    Fig. 7.  Grows with ``B`` (one beacon amortized over more slots) and
    shrinks with payload size (the beacon overhead matters less).

    Returns:
        A fraction in [0, 1); e.g. 0.33 means 33 % radio-on time saved.
    """
    with_rounds = rounds_on_time(payload_bytes, diameter, num_slots, constants)
    without = no_rounds_on_time(payload_bytes, diameter, num_slots, constants)
    return (without - with_rounds) / without


def energy_saving_limit(
    payload_bytes: int,
    diameter: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Asymptotic saving as ``B -> inf``: the full beacon share.

    ``E_inf = T_on(L_beacon) / (T_on(L_beacon) + T_on(l))`` — rounds
    can at best remove all but one beacon, so the saving approaches the
    beacon's share of the per-message cost.
    """
    beacon = slot_on_time(constants.l_beacon, diameter, constants)
    data = slot_on_time(payload_bytes, diameter, constants)
    return beacon / (beacon + data)
