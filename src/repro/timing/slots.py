"""Slot, flood, and round timing model — paper Sec. V, eqs. (14)-(19).

A communication round consists of a beacon slot followed by ``B`` data
slots.  Each slot runs one Glossy flood across the whole network; the
flood duration depends only on the network diameter ``H``, the
retransmission count ``N``, and the payload size ``l``:

    T_flood = (H + 2N - 1) * T_hop                           (14)
    T_hop   = T_d + (8 * (L_cal + L_header + l)) / R_bit     (15)-(16)
    T_slot  = T_on + T_off                                   (17)-(18)
    T_r(l)  = T_slot(L_beacon) + B * T_slot(l)               (19)

All functions take/return **seconds**; use :func:`round_length_ms` at
the scheduler boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import DEFAULT_CONSTANTS, GlossyConstants


def transmission_time(payload_bytes: float, bitrate: float) -> float:
    """Paper eq. (16): time to transmit ``l`` bytes at ``R_bit``."""
    if payload_bytes < 0:
        raise ValueError("payload must be >= 0 bytes")
    return 8.0 * payload_bytes / bitrate


def hop_time(payload_bytes: int, constants: GlossyConstants = DEFAULT_CONSTANTS) -> float:
    """Paper eq. (15): one protocol step (a one-hop transmission).

    ``T_hop = T_d + T_cal + T_header + T_payload``.
    """
    return constants.t_d + transmission_time(
        constants.l_cal + constants.l_header + payload_bytes, constants.bitrate
    )


def flood_time(
    payload_bytes: int,
    diameter: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Paper eq. (14): total Glossy flood length ``(H + 2N - 1) * T_hop``.

    Args:
        payload_bytes: Application payload ``l``.
        diameter: Network diameter ``H`` (max hop distance), >= 1.
        constants: Radio constants (Table I).
    """
    if diameter < 1:
        raise ValueError("network diameter must be >= 1")
    steps = diameter + 2 * constants.n_tx - 1
    return steps * hop_time(payload_bytes, constants)


def slot_on_time(
    payload_bytes: int,
    diameter: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Paper eq. (18): radio-on time of one slot.

    ``T_on = T_start + (H + 2N - 1) * (T_d + 8(L_cal + L_header + l)/R_bit)``.
    As in the paper's energy evaluation (Fig. 5 caption), the radio is
    assumed on for the whole flood.
    """
    return constants.t_start + flood_time(payload_bytes, diameter, constants)


def slot_off_time(constants: GlossyConstants = DEFAULT_CONSTANTS) -> float:
    """Paper eq. (17): radio-off portion ``T_off = T_wake-up + T_gap``."""
    return constants.t_wakeup + constants.t_gap


def slot_time(
    payload_bytes: int,
    diameter: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Full slot duration ``T_slot(l) = T_off + T_on(l)``."""
    return slot_off_time(constants) + slot_on_time(payload_bytes, diameter, constants)


@dataclass(frozen=True)
class RoundTiming:
    """Breakdown of one round's timing (all in seconds)."""

    beacon_slot: float
    data_slot: float
    num_slots: int
    total: float
    radio_on: float
    radio_off: float


def round_timing(
    payload_bytes: int,
    diameter: int,
    num_slots: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> RoundTiming:
    """Complete timing breakdown of one TTW round (paper eq. 19).

    Args:
        payload_bytes: Data slot payload ``l``.
        diameter: Network diameter ``H``.
        num_slots: Data slots per round ``B``.
        constants: Radio constants.
    """
    if num_slots < 0:
        raise ValueError("num_slots must be >= 0")
    beacon = slot_time(constants.l_beacon, diameter, constants)
    data = slot_time(payload_bytes, diameter, constants)
    on = slot_on_time(constants.l_beacon, diameter, constants) + num_slots * (
        slot_on_time(payload_bytes, diameter, constants)
    )
    off = (1 + num_slots) * slot_off_time(constants)
    return RoundTiming(
        beacon_slot=beacon,
        data_slot=data,
        num_slots=num_slots,
        total=beacon + num_slots * data,
        radio_on=on,
        radio_off=off,
    )


def round_length(
    payload_bytes: int,
    diameter: int,
    num_slots: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Paper eq. (19): ``T_r(l) = T_slot(L_beacon) + B * T_slot(l)`` [s]."""
    return round_timing(payload_bytes, diameter, num_slots, constants).total


def round_length_ms(
    payload_bytes: int,
    diameter: int,
    num_slots: int,
    constants: GlossyConstants = DEFAULT_CONSTANTS,
) -> float:
    """Round length in milliseconds — the scheduler's ``Tr`` input."""
    return 1e3 * round_length(payload_bytes, diameter, num_slots, constants)
