"""Glossy radio constants — paper Table I.

The values are those of the publicly available Glossy/LWB
implementation [17] the paper measures: a CC2420-class 802.15.4 radio
at 250 kbps.  All times are in **seconds** inside this package and
converted explicitly at the boundary to the scheduler's milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GlossyConstants:
    """Radio and protocol constants (paper Table I).

    Attributes:
        t_wakeup: ``T_wake-up`` — MCU wake-up before a slot [s].
        t_start: ``T_start`` — radio start-up time [s].
        t_d: ``T_d`` — per-hop radio delay [s].
        l_cal: ``L_cal`` — clock-calibration message length [bytes].
        l_header: ``L_header`` — protocol header length [bytes].
        t_gap: ``T_gap`` — inter-slot processing gap [s].
        bitrate: ``R_bit`` — radio bit rate [bit/s].
        l_beacon: ``L_beacon`` — TTW beacon payload [bytes]
          (round id + mode id + trigger bit fit in 3 bytes, Sec. V).
        n_tx: ``N`` — retransmissions per node per flood; the paper
          uses N = 2 (>99.9 % flood reliability [11]).
    """

    t_wakeup: float = 750e-6
    t_start: float = 164e-6
    t_d: float = 68e-6
    l_cal: int = 3
    l_header: int = 6
    t_gap: float = 3e-3
    bitrate: float = 250e3
    l_beacon: int = 3
    n_tx: int = 2

    def __post_init__(self) -> None:
        if self.bitrate <= 0:
            raise ValueError("bitrate must be > 0")
        if self.n_tx < 1:
            raise ValueError("n_tx must be >= 1")
        for field_name in ("t_wakeup", "t_start", "t_d", "t_gap"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        for field_name in ("l_cal", "l_header", "l_beacon"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")


#: The paper's Table I values.
DEFAULT_CONSTANTS = GlossyConstants()
